#!/usr/bin/env bash
# End-to-end smoke test of the serving path, and the generator of
# BENCH_serve.json (the serving-performance trajectory):
#
#   1. synthesise a ring+chord graph and a random query-pair list,
#   2. `pll build` a v2 (zero-copy) index,
#   3. start `pll serve` in the background on an ephemeral port,
#   4. fire the serve_load generator over several connections
#      (recording throughput/p50/p99 into the JSON report),
#   5. byte-diff the online answers against the offline
#      `pll query <idx> -` path on the same pairs,
#   6. shut the server down via the SHUTDOWN opcode and require a clean
#      exit.
#
# Usage:
#   scripts/serve_smoke.sh [N] [PAIRS] [OUT] [THREADS]
#     N        graph vertices                (default 2000)
#     PAIRS    query pairs                   (default 2000)
#     OUT      JSON report path              (default BENCH_serve.json)
#     THREADS  build + serve worker threads  (default 2)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-2000}"
PAIRS="${2:-2000}"
OUT="${3:-BENCH_serve.json}"
THREADS="${4:-2}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p pll-cli
cargo build --release -p pll-bench --bin serve_load
PLL=./target/release/pll
LOAD=./target/release/serve_load

# Deterministic ring + chord graph (self-loops are dropped by the lenient
# edge reader) and a deterministic pair list.
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) { print i, (i + 1) % n; print i, (i * 7 + 3) % n }
}' > "$WORK/edges.txt"
awk -v n="$N" -v q="$PAIRS" 'BEGIN {
  seed = 12345
  for (i = 0; i < q; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648; s = seed % n
    seed = (seed * 1103515245 + 12345) % 2147483648; t = seed % n
    print s, t
  }
}' > "$WORK/pairs.txt"

"$PLL" build "$WORK/edges.txt" "$WORK/smoke.idx" --threads "$THREADS" --bp-roots 4

"$PLL" serve --index "$WORK/smoke.idx" --addr 127.0.0.1:0 --threads "$THREADS" \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!

# Wait for the bound address to appear on the server's stdout.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(grep -m1 -oE 'listening on [0-9.:]+' "$WORK/serve.out" 2>/dev/null | awk '{print $3}' || true)"
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server exited early:" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "server never reported its address" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
echo "server listening on $ADDR (pid $SERVER_PID)"

"$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 4 \
  --answers-out "$WORK/online.txt" --out "$OUT" --shutdown

"$PLL" query "$WORK/smoke.idx" - < "$WORK/pairs.txt" > "$WORK/offline.txt"

if ! diff -q "$WORK/online.txt" "$WORK/offline.txt" > /dev/null; then
  echo "FAIL: online answers differ from the offline query path" >&2
  diff "$WORK/online.txt" "$WORK/offline.txt" | head -20 >&2
  exit 1
fi
echo "online answers byte-identical to offline pll query ($PAIRS pairs)"

# The SHUTDOWN opcode must end the process cleanly.
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited with status $SERVER_EXIT" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
echo "server shut down cleanly; summary:"
grep -E 'served|worker' "$WORK/serve.err" || true
echo "report written to $OUT"
