#!/usr/bin/env bash
# End-to-end smoke test of the serving path, and the generator of
# BENCH_serve.json (the serving-performance trajectory). Three phases,
# one workload row each:
#
#   1. distance — build a ring+chord graph and a v2 (zero-copy) index,
#      start `pll serve --graph` on an ephemeral port, fire the
#      serve_load generator over several connections, and byte-diff the
#      online answers against the offline `pll query <idx> -` path;
#   2. update-mix — replay a second chord wave as UPDATE frames
#      *concurrently* with the query load (epoch hot-swap on every
#      applied batch, asserted via the client-visible `epoch 0 -> N`
#      line), then byte-diff the post-swap online answers against the
#      offline `pll update`-flattened index;
#   3. path — build a --store-parents index, serve it, and byte-diff
#      online PATH reconstructions against `pll query --path -`
#      (CONNECTED is byte-diffed in phase 1 alongside distance).
#
# Finally the SHUTDOWN opcode must end each server process cleanly, and
# the three JSON rows are composed into OUT as {"workloads": [...]}.
#
# Phase 1 also exercises the observability substrate: the server runs
# with a Prometheus sidecar (--metrics-addr), and the script scrapes
# GET /metrics between loads, diffing the scraped pll_queries_total
# against both the exact expected count and serve_load's own STATS
# report, and failing on any non-monotonic counter (see
# docs/OBSERVABILITY.md). The final scrape body is saved to METRICS_OUT
# as a CI artifact.
#
# Usage:
#   scripts/serve_smoke.sh [N] [PAIRS] [OUT] [THREADS] [METRICS_OUT]
#     N           graph vertices                (default 2000)
#     PAIRS       query pairs                   (default 2000)
#     OUT         JSON report path              (default BENCH_serve.json)
#     THREADS     build + serve worker threads  (default 2)
#     METRICS_OUT saved /metrics scrape body    (default metrics_scrape.txt)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-2000}"
PAIRS="${2:-2000}"
OUT="${3:-BENCH_serve.json}"
THREADS="${4:-2}"
METRICS_OUT="${5:-metrics_scrape.txt}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p pll-cli
cargo build --release -p pll-bench --bin serve_load
PLL=./target/release/pll
LOAD=./target/release/serve_load

# Deterministic ring + chord graph (self-loops are dropped by the lenient
# edge reader), a second chord wave applied online, and a deterministic
# pair list.
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) { print i, (i + 1) % n; print i, (i * 7 + 3) % n }
}' > "$WORK/edges.txt"
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i += 5) { print i, (i * 13 + 11) % n }
}' > "$WORK/new_edges.txt"
cat "$WORK/edges.txt" "$WORK/new_edges.txt" > "$WORK/full_edges.txt"
awk -v n="$N" -v q="$PAIRS" 'BEGIN {
  seed = 12345
  for (i = 0; i < q; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648; s = seed % n
    seed = (seed * 1103515245 + 12345) % 2147483648; t = seed % n
    print s, t
  }
}' > "$WORK/pairs.txt"

"$PLL" build "$WORK/edges.txt" "$WORK/smoke.idx" --threads "$THREADS" --bp-roots 4

# Starts "$PLL serve $@" in the background, exporting ADDR + SERVER_PID
# (and METRICS_ADDR when the server was given --metrics-addr).
start_server() {
  : > "$WORK/serve.out"
  "$PLL" serve "$@" --addr 127.0.0.1:0 --threads "$THREADS" \
    > "$WORK/serve.out" 2> "$WORK/serve.err" &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(grep -m1 -oE 'listening on [0-9.:]+' "$WORK/serve.out" 2>/dev/null | awk '{print $3}' || true)"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "server exited early:" >&2
      cat "$WORK/serve.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "server never reported its address" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi
  METRICS_ADDR="$(grep -m1 -oE 'metrics on http://[0-9.:]+/metrics' "$WORK/serve.out" 2>/dev/null \
    | sed 's|metrics on http://||; s|/metrics||' || true)"
  echo "server listening on $ADDR (pid $SERVER_PID)"
}

# One GET /metrics scrape of the sidecar, body written to $1. Prefers
# curl; falls back to bash's /dev/tcp so the smoke runs on bare images.
scrape_metrics() {
  if command -v curl > /dev/null 2>&1; then
    curl -sf "http://$METRICS_ADDR/metrics" -o "$1"
  else
    exec 3<> "/dev/tcp/${METRICS_ADDR%:*}/${METRICS_ADDR##*:}"
    printf 'GET /metrics HTTP/1.0\r\nHost: pll\r\n\r\n' >&3
    sed '1,/^\r$/d' <&3 > "$1"
    exec 3<&- 3>&-
  fi
}

# The value of counter/gauge NAME in scrape body $1.
prom_value() {
  awk -v name="$2" '$1 == name { print $2; exit }' "$1"
}

# Waits for the current server to exit cleanly after a SHUTDOWN opcode.
await_clean_shutdown() {
  local exit_code=0
  wait "$SERVER_PID" || exit_code=$?
  SERVER_PID=""
  if [ "$exit_code" -ne 0 ]; then
    echo "FAIL: server exited with status $exit_code" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi
}

# ---- phase 1: distance + connected on the dynamic server --------------
start_server --index "$WORK/smoke.idx" --graph "$WORK/edges.txt" \
  --metrics-addr 127.0.0.1:0
# The sidecar line is printed just after the listening line; re-poll in
# case start_server's grep won the race between the two.
for _ in $(seq 1 50); do
  [ -n "$METRICS_ADDR" ] && break
  sleep 0.1
  METRICS_ADDR="$(grep -m1 -oE 'metrics on http://[0-9.:]+/metrics' "$WORK/serve.out" 2>/dev/null \
    | sed 's|metrics on http://||; s|/metrics||' || true)"
done
if [ -z "$METRICS_ADDR" ]; then
  echo "FAIL: server never reported its metrics sidecar address" >&2
  exit 1
fi
echo "metrics sidecar on $METRICS_ADDR"

"$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 4 \
  --answers-out "$WORK/online.txt" --out "$WORK/row_distance.json" \
  2> "$WORK/distance.log"
cat "$WORK/distance.log" >&2

"$PLL" query "$WORK/smoke.idx" - < "$WORK/pairs.txt" > "$WORK/offline.txt"
if ! diff -q "$WORK/online.txt" "$WORK/offline.txt" > /dev/null; then
  echo "FAIL: online distance answers differ from the offline query path" >&2
  diff "$WORK/online.txt" "$WORK/offline.txt" | head -20 >&2
  exit 1
fi
echo "distance: online answers byte-identical to offline pll query ($PAIRS pairs)"

# ---- scrape 1: the sidecar agrees exactly with the load ---------------
# The distance load has fully quiesced (all its connections closed), so
# the registry's query counter must equal PAIRS exactly — and must agree
# with the server_metrics object serve_load embedded from its own STATS
# scrape of the same registry.
scrape_metrics "$WORK/scrape1.txt"
SCRAPED="$(prom_value "$WORK/scrape1.txt" pll_queries_total)"
if [ "$SCRAPED" != "$PAIRS" ]; then
  echo "FAIL: /metrics pll_queries_total=$SCRAPED, expected exactly $PAIRS" >&2
  exit 1
fi
REPORTED="$(grep -oE '"queries_total": [0-9]+' "$WORK/row_distance.json" | awk '{print $2}')"
if [ "$SCRAPED" != "$REPORTED" ]; then
  echo "FAIL: /metrics pll_queries_total=$SCRAPED but serve_load's STATS scrape saw $REPORTED" >&2
  exit 1
fi
echo "metrics: /metrics pll_queries_total == $PAIRS, agrees with STATS"

"$LOAD" --addr "$ADDR" --op connected --pairs "$WORK/pairs.txt" --connections 2 \
  --answers-out "$WORK/online_conn.txt"
"$PLL" query "$WORK/smoke.idx" --connected - < "$WORK/pairs.txt" > "$WORK/offline_conn.txt"
if ! diff -q "$WORK/online_conn.txt" "$WORK/offline_conn.txt" > /dev/null; then
  echo "FAIL: online CONNECTED answers differ from pll query --connected" >&2
  diff "$WORK/online_conn.txt" "$WORK/offline_conn.txt" | head -20 >&2
  exit 1
fi
echo "connected: online answers byte-identical to offline pll query --connected"

# ---- scrape 2: counters are monotone across scrapes -------------------
# CONNECTED answers count as queries too, so the second scrape must read
# exactly 2·PAIRS — and no counter may ever go backwards between scrapes.
scrape_metrics "$WORK/scrape2.txt"
SCRAPED2="$(prom_value "$WORK/scrape2.txt" pll_queries_total)"
if [ "$SCRAPED2" != "$((2 * PAIRS))" ]; then
  echo "FAIL: /metrics pll_queries_total=$SCRAPED2 after CONNECTED load, expected $((2 * PAIRS))" >&2
  exit 1
fi
NONMONO="$(awk '
  FNR == NR { if ($1 ~ /_total$/ && $1 !~ /^#/) before[$1] = $2; next }
  ($1 in before) && ($2 + 0 < before[$1] + 0) {
    printf "%s: %s -> %s\n", $1, before[$1], $2
  }
' "$WORK/scrape1.txt" "$WORK/scrape2.txt")"
if [ -n "$NONMONO" ]; then
  echo "FAIL: counter(s) went backwards between scrapes:" >&2
  echo "$NONMONO" >&2
  exit 1
fi
cp "$WORK/scrape2.txt" "$METRICS_OUT"
echo "metrics: all counters monotone across scrapes; body saved to $METRICS_OUT"

# ---- phase 2: update-mix (concurrent UPDATE batches + hot-swap) -------
"$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 4 \
  --updates "$WORK/new_edges.txt" --update-batch 16 \
  --out "$WORK/row_update.json" 2> "$WORK/update_mix.log"
cat "$WORK/update_mix.log" >&2
if ! grep -qE 'epoch 0 -> [1-9]' "$WORK/update_mix.log"; then
  echo "FAIL: hot-swap epoch not observable from the client (expected 'epoch 0 -> k')" >&2
  exit 1
fi
echo "update-mix: epoch advanced under concurrent query load"

# Post-swap answers must match the offline `pll update` flatten of the
# same insertions.
"$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 2 \
  --answers-out "$WORK/online_post.txt" --shutdown
"$PLL" update "$WORK/smoke.idx" "$WORK/edges.txt" "$WORK/new_edges.txt" \
  -o "$WORK/updated.idx" --threads "$THREADS"
"$PLL" query "$WORK/updated.idx" - < "$WORK/pairs.txt" > "$WORK/offline_post.txt"
if ! diff -q "$WORK/online_post.txt" "$WORK/offline_post.txt" > /dev/null; then
  echo "FAIL: post-swap online answers differ from the offline pll update flatten" >&2
  diff "$WORK/online_post.txt" "$WORK/offline_post.txt" | head -20 >&2
  exit 1
fi
echo "update-mix: post-swap answers byte-identical to offline pll update"
await_clean_shutdown

# ---- phase 3: PATH on a parents index ---------------------------------
"$PLL" build "$WORK/edges.txt" "$WORK/paths.idx" --store-parents
start_server --index "$WORK/paths.idx"

"$LOAD" --addr "$ADDR" --op path --pairs "$WORK/pairs.txt" --connections 2 \
  --answers-out "$WORK/online_path.txt" --out "$WORK/row_path.json" --shutdown
"$PLL" query "$WORK/paths.idx" --path - < "$WORK/pairs.txt" > "$WORK/offline_path.txt"
if ! diff -q "$WORK/online_path.txt" "$WORK/offline_path.txt" > /dev/null; then
  echo "FAIL: online PATH answers differ from pll query --path" >&2
  diff "$WORK/online_path.txt" "$WORK/offline_path.txt" | head -20 >&2
  exit 1
fi
echo "path: online reconstructions byte-identical to offline pll query --path"
await_clean_shutdown

# ---- compose the trajectory report ------------------------------------
{
  echo '{'
  echo '"workloads": ['
  cat "$WORK/row_distance.json"
  echo ','
  cat "$WORK/row_update.json"
  echo ','
  cat "$WORK/row_path.json"
  echo ']'
  echo '}'
} > "$OUT"
echo "all servers shut down cleanly; report written to $OUT"
