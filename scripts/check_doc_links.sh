#!/usr/bin/env bash
# Dead-link check for the markdown docs: every relative link target in
# README.md, docs/*.md and the other top-level markdown files must exist
# in the repository. External (scheme://) and intra-page (#anchor) links
# are skipped; `path#anchor` links are checked for the path part.
#
# Usage: scripts/check_doc_links.sh
set -euo pipefail

cd "$(dirname "$0")/.."

failures=0
files=$(ls ./*.md docs/*.md 2>/dev/null)

for file in $files; do
  dir=$(dirname "$file")
  # Inline markdown links: capture the (...) target of [...](...).
  targets=$(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/^\[[^]]*\](//; s/)$//' || true)
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      *://*|mailto:*) continue ;;   # external
      '#'*) continue ;;             # same-page anchor
    esac
    path="${target%%#*}"            # strip a trailing anchor
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $file: $target" >&2
      failures=$((failures + 1))
    fi
  done <<< "$targets"
done

if [ "$failures" -gt 0 ]; then
  echo "$failures dead link(s)" >&2
  exit 1
fi
echo "all relative markdown links resolve"
