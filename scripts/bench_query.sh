#!/usr/bin/env bash
# Query-throughput benchmark: measures ns/query for the weighted index
# across storage backends (owned / zero-copy / mmap when available) ×
# merge kernels (scalar / branchless / unrolled) × distance-arena widths
# (u32 / Dist8 u8), and writes BENCH_query.json at the repository root —
# the query-side complement of scripts/bench_construction.sh. Every cell
# answers the same pair sample and the harness asserts all answers
# identical before writing the file.
#
# Usage:
#   scripts/bench_query.sh [N] [ITERS] [OUT] [FEATURES]
#     N        vertex count for the BA base graph (default 50000)
#     ITERS    measured queries per matrix cell (default 200000)
#     OUT      output JSON path (default BENCH_query.json)
#     FEATURES extra cargo features, e.g. "mmap" to add the mmap backend
#              rows (Linux only; default none)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-50000}"
ITERS="${2:-200000}"
OUT="${3:-BENCH_query.json}"
FEATURES="${4:-}"

FEATURE_ARGS=()
if [ -n "$FEATURES" ]; then
  FEATURE_ARGS=(--features "$FEATURES")
fi

cargo build --release -p pll-bench --bin bench_query "${FEATURE_ARGS[@]}"
./target/release/bench_query --n "$N" --iters "$ITERS" --out "$OUT"
echo "benchmark written to $OUT"
