#!/usr/bin/env bash
# Sanitizer lane: run the concurrency-heavy tests — the SwapCell
# hot-swap hammer, the worker pool under concurrent clients, and the WAL
# writer/replay suite — under AddressSanitizer or ThreadSanitizer.
#
#   scripts/sanitizer_lane.sh asan     # heap errors, use-after-free
#   scripts/sanitizer_lane.sh tsan     # data races
#
# ASan instruments our code only and works against the prebuilt std.
# TSan MUST also instrument std (`-Zbuild-std`): std's futex-based
# Mutex/RwLock are otherwise uninstrumented and every lock acquisition
# reports as a false-positive race. build-std needs the rust-src
# component; when it is missing, the tsan lane fails fast with the
# install hint instead of drowning CI in bogus reports.
#
# Requires: nightly toolchain; rust-src for tsan
#           (rustup component add --toolchain nightly rust-src).
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${1:-}"
case "$SAN" in
    asan) FLAG=address ;;
    tsan) FLAG=thread ;;
    *) echo "usage: scripts/sanitizer_lane.sh <asan|tsan>" >&2; exit 2 ;;
esac

HOST_TARGET="$(rustc +nightly -vV | sed -n 's/^host: //p')"
BUILD_STD=()
if [ "$SAN" = tsan ]; then
    SRC_DIR="$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library"
    if [ ! -d "$SRC_DIR" ]; then
        echo "sanitizer_lane: tsan needs an instrumented std (-Zbuild-std)" >&2
        echo "  rustup component add --toolchain nightly rust-src" >&2
        exit 2
    fi
    BUILD_STD=(-Zbuild-std)
fi

export RUSTFLAGS="-Zsanitizer=${FLAG} ${RUSTFLAGS:-}"
# Suppress the known allocator-odometer noise: the counting allocator in
# tests/zero_copy_alloc.rs is exercised separately, not under sanitizers.
run() {
    echo "== ${SAN}: $* =="
    cargo +nightly test "${BUILD_STD[@]}" --target "$HOST_TARGET" "$@"
}

# SwapCell + worker pool: every in-crate server test, including the
# concurrent-clients and update-hot-swap hammers.
run -p pll-server --lib
# WAL: writer, atomic_write, recovery replay.
run -p pll-core --lib wal::tests
# Cross-crate crash/recovery and dynamic-update integration tests.
run -p pruned-landmark-labeling --test crash_recovery
run -p pruned-landmark-labeling --test dynamic_updates

echo "${SAN} lane passed"
