#!/usr/bin/env bash
# Miri lane: run the pure-memory subset of the pll-core unit tests under
# the Miri interpreter to catch undefined behaviour (invalid pointer
# casts, aliasing violations, out-of-bounds section reads) that tests
# running on real hardware would silently survive.
#
# Scope: the storage / serialize / v2 / wal module unit tests — the code
# holding every unsafe pointer cast in the workspace — MINUS anything
# touching mmap (Miri has no mmap; the mmap feature stays off, which is
# the crate's default). `-Zmiri-disable-isolation` lets the wal/serialize
# tests use real temp files.
#
# Usage: scripts/miri_lane.sh
# Requires: rustup toolchain nightly with the miri component
#           (rustup component add --toolchain nightly miri).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "miri_lane: cargo +nightly miri is not installed" >&2
    echo "  rustup component add --toolchain nightly miri" >&2
    exit 2
fi

export MIRIFLAGS="-Zmiri-disable-isolation"

# Run module-by-module so a failure names the subsystem in CI output.
for module in storage serialize v2 wal; do
    echo "== miri: pll-core ${module}::tests =="
    cargo +nightly miri test -p pll-core --lib "${module}::tests"
done

echo "miri lane passed"
