#!/usr/bin/env bash
# CI correctness gate for the dynamic-update subsystem: the acceptance
# criterion is that after any sequence of edge insertions the served
# answers are exactly those of a from-scratch rebuild of the updated
# graph — at EVERY background-flatten cadence — and that the epoch
# publish is atomic and observable.
#
#   1. synthesise a graph and split its edges into a base set and an
#      insertion wave; `pll build` the base index and the full rebuild,
#   2. for each --flatten-threshold in {1, 8, never}: start `pll serve
#      --graph base --flatten-threshold T`, apply the insertion wave as
#      UPDATE frames while a concurrent query load runs (serve_load
#      --updates), asserting the epoch advanced (`epoch 0 -> k` from the
#      client side),
#   3. probe `pll stats --addr` (live INFO): threshold 1 must drain the
#      overlay back to a flat base (flatten generation >= 1, overlay
#      entries 0); `never` must keep serving the overlay (generation 0),
#   4. byte-diff the post-update online answers against `pll query` over
#      the from-scratch rebuild of the FULL graph — overlay-direct and
#      flattened serving are answer-indistinguishable,
#   5. byte-diff the offline `pll update` flatten against the same
#      rebuild (CLI and server agree with each other and with the
#      rebuild),
#   6. SHUTDOWN must end each server cleanly.
#
# Usage:
#   scripts/update_smoke.sh [N] [PAIRS] [THREADS]
#     N        graph vertices                (default 1500)
#     PAIRS    verification query pairs      (default 2000)
#     THREADS  build + serve worker threads  (default 2)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-1500}"
PAIRS="${2:-2000}"
THREADS="${3:-2}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p pll-cli
cargo build --release -p pll-bench --bin serve_load
PLL=./target/release/pll
LOAD=./target/release/serve_load

# Base: a ring plus every third chord. Insertions: the remaining chords
# (including some component-shaping long-range ones).
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) {
    print i, (i + 1) % n
    if (i % 3 == 0) print i, (i * 7 + 3) % n
  }
}' > "$WORK/base.txt"
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) {
    if (i % 3 != 0) print i, (i * 7 + 3) % n
    if (i % 11 == 0) print i, (i * 31 + 17) % n
  }
}' > "$WORK/new.txt"
cat "$WORK/base.txt" "$WORK/new.txt" > "$WORK/full.txt"
awk -v n="$N" -v q="$PAIRS" 'BEGIN {
  seed = 424242
  for (i = 0; i < q; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648; s = seed % n
    seed = (seed * 1103515245 + 12345) % 2147483648; t = seed % n
    print s, t
  }
}' > "$WORK/pairs.txt"

"$PLL" build "$WORK/base.txt" "$WORK/base.idx" --threads "$THREADS" --bp-roots 4
"$PLL" build "$WORK/full.txt" "$WORK/rebuilt.idx" --threads "$THREADS" --bp-roots 4
"$PLL" query "$WORK/rebuilt.idx" - < "$WORK/pairs.txt" > "$WORK/offline_rebuild.txt"

# One pass per flatten cadence: eager (every batch), batched, and never
# (overlay-direct forever). The served answers must be byte-identical to
# the rebuild regardless of whether the flattener ever ran.
for FT in 1 8 never; do
  echo "=== flatten-threshold $FT ==="
  "$PLL" serve --index "$WORK/base.idx" --graph "$WORK/base.txt" \
    --addr 127.0.0.1:0 --threads "$THREADS" --flatten-threshold "$FT" \
    > "$WORK/serve_$FT.out" 2> "$WORK/serve_$FT.err" &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(grep -m1 -oE 'listening on [0-9.:]+' "$WORK/serve_$FT.out" 2>/dev/null | awk '{print $3}' || true)"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "server exited early:" >&2
      cat "$WORK/serve_$FT.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never reported its address" >&2; exit 1; }
  echo "server listening on $ADDR (pid $SERVER_PID)"

  # Apply the insertion wave under concurrent query load; the epoch line
  # proves the publish was client-visible.
  "$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 4 \
    --updates "$WORK/new.txt" --update-batch 32 2> "$WORK/mix_$FT.log"
  cat "$WORK/mix_$FT.log" >&2
  grep -qE 'epoch 0 -> [1-9]' "$WORK/mix_$FT.log" || {
    echo "FAIL: epoch did not advance under UPDATE load (threshold $FT)" >&2
    exit 1
  }

  # Live INFO via the CLI: the flatten generation / overlay size must
  # reflect the cadence we asked for.
  case "$FT" in
    1)
      # Eager flattening: poll until the background flattener has drained
      # the overlay back to a flat base at least once.
      DRAINED=0
      for _ in $(seq 1 150); do
        "$PLL" stats --addr "$ADDR" > "$WORK/stats_$FT.txt"
        if grep -qE 'overlay entries: *0$' "$WORK/stats_$FT.txt" \
           && grep -qE 'flatten generation: *[1-9]' "$WORK/stats_$FT.txt"; then
          DRAINED=1
          break
        fi
        sleep 0.1
      done
      cat "$WORK/stats_$FT.txt" >&2
      [ "$DRAINED" -eq 1 ] || {
        echo "FAIL: threshold 1 never drained the overlay into a flat base" >&2
        exit 1
      }
      ;;
    never)
      "$PLL" stats --addr "$ADDR" > "$WORK/stats_$FT.txt"
      cat "$WORK/stats_$FT.txt" >&2
      grep -qE 'flatten generation: *0$' "$WORK/stats_$FT.txt" || {
        echo "FAIL: threshold never must not flatten" >&2
        exit 1
      }
      grep -qE 'overlay entries: *[1-9]' "$WORK/stats_$FT.txt" || {
        echo "FAIL: threshold never must keep serving the overlay" >&2
        exit 1
      }
      ;;
    *)
      "$PLL" stats --addr "$ADDR" > "$WORK/stats_$FT.txt"
      cat "$WORK/stats_$FT.txt" >&2
      ;;
  esac

  # Post-update online answers vs the from-scratch rebuild of the full
  # graph.
  "$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 2 \
    --answers-out "$WORK/online_$FT.txt" --shutdown
  if ! diff -q "$WORK/online_$FT.txt" "$WORK/offline_rebuild.txt" > /dev/null; then
    echo "FAIL: online answers differ from the offline rebuild (threshold $FT)" >&2
    diff "$WORK/online_$FT.txt" "$WORK/offline_rebuild.txt" | head -20 >&2
    exit 1
  fi
  echo "online answers byte-identical to the rebuild ($PAIRS pairs, threshold $FT)"

  SERVER_EXIT=0
  wait "$SERVER_PID" || SERVER_EXIT=$?
  SERVER_PID=""
  if [ "$SERVER_EXIT" -ne 0 ]; then
    echo "FAIL: server exited with status $SERVER_EXIT (threshold $FT)" >&2
    cat "$WORK/serve_$FT.err" >&2
    exit 1
  fi
  echo "server (threshold $FT) shut down cleanly"
done

# The offline incremental path must agree too.
"$PLL" update "$WORK/base.idx" "$WORK/base.txt" "$WORK/new.txt" \
  -o "$WORK/updated.idx" --threads "$THREADS"
"$PLL" query "$WORK/updated.idx" - < "$WORK/pairs.txt" > "$WORK/offline_update.txt"
if ! diff -q "$WORK/offline_update.txt" "$WORK/offline_rebuild.txt" > /dev/null; then
  echo "FAIL: pll update answers differ from the offline rebuild" >&2
  diff "$WORK/offline_update.txt" "$WORK/offline_rebuild.txt" | head -20 >&2
  exit 1
fi
echo "pll update flatten byte-identical to the from-scratch rebuild"
echo "update smoke OK across flatten thresholds {1, 8, never}"
