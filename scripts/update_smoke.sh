#!/usr/bin/env bash
# CI correctness gate for the dynamic-update subsystem: the acceptance
# criterion is that after any sequence of edge insertions the served
# answers are exactly those of a from-scratch rebuild of the updated
# graph, and that the hot-swap is atomic and observable.
#
#   1. synthesise a graph and split its edges into a base set and an
#      insertion wave,
#   2. `pll build` the base index, start `pll serve --graph base`,
#   3. apply the insertion wave as UPDATE frames while a concurrent
#      query load runs (serve_load --updates), asserting the epoch
#      advanced (`epoch 0 -> k` from the client side),
#   4. byte-diff the post-swap online answers against `pll query` over a
#      from-scratch `pll build` of the FULL graph,
#   5. byte-diff the offline `pll update` flatten against the same
#      rebuild (CLI and server agree with each other and with the
#      rebuild),
#   6. SHUTDOWN must end the server cleanly.
#
# Usage:
#   scripts/update_smoke.sh [N] [PAIRS] [THREADS]
#     N        graph vertices                (default 1500)
#     PAIRS    verification query pairs      (default 2000)
#     THREADS  build + serve worker threads  (default 2)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-1500}"
PAIRS="${2:-2000}"
THREADS="${3:-2}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p pll-cli
cargo build --release -p pll-bench --bin serve_load
PLL=./target/release/pll
LOAD=./target/release/serve_load

# Base: a ring plus every third chord. Insertions: the remaining chords
# (including some component-shaping long-range ones).
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) {
    print i, (i + 1) % n
    if (i % 3 == 0) print i, (i * 7 + 3) % n
  }
}' > "$WORK/base.txt"
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) {
    if (i % 3 != 0) print i, (i * 7 + 3) % n
    if (i % 11 == 0) print i, (i * 31 + 17) % n
  }
}' > "$WORK/new.txt"
cat "$WORK/base.txt" "$WORK/new.txt" > "$WORK/full.txt"
awk -v n="$N" -v q="$PAIRS" 'BEGIN {
  seed = 424242
  for (i = 0; i < q; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648; s = seed % n
    seed = (seed * 1103515245 + 12345) % 2147483648; t = seed % n
    print s, t
  }
}' > "$WORK/pairs.txt"

"$PLL" build "$WORK/base.txt" "$WORK/base.idx" --threads "$THREADS" --bp-roots 4

"$PLL" serve --index "$WORK/base.idx" --graph "$WORK/base.txt" \
  --addr 127.0.0.1:0 --threads "$THREADS" \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(grep -m1 -oE 'listening on [0-9.:]+' "$WORK/serve.out" 2>/dev/null | awk '{print $3}' || true)"
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server exited early:" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never reported its address" >&2; exit 1; }
echo "server listening on $ADDR (pid $SERVER_PID)"

# Apply the insertion wave under concurrent query load; the epoch line
# proves the hot-swap was client-visible.
"$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 4 \
  --updates "$WORK/new.txt" --update-batch 32 2> "$WORK/mix.log"
cat "$WORK/mix.log" >&2
grep -qE 'epoch 0 -> [1-9]' "$WORK/mix.log" || {
  echo "FAIL: epoch did not advance under UPDATE load" >&2
  exit 1
}

# Post-swap online answers vs a from-scratch rebuild of the full graph.
"$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 --connections 2 \
  --answers-out "$WORK/online.txt" --shutdown
"$PLL" build "$WORK/full.txt" "$WORK/rebuilt.idx" --threads "$THREADS" --bp-roots 4
"$PLL" query "$WORK/rebuilt.idx" - < "$WORK/pairs.txt" > "$WORK/offline_rebuild.txt"
if ! diff -q "$WORK/online.txt" "$WORK/offline_rebuild.txt" > /dev/null; then
  echo "FAIL: post-update online answers differ from the offline rebuild" >&2
  diff "$WORK/online.txt" "$WORK/offline_rebuild.txt" | head -20 >&2
  exit 1
fi
echo "online UPDATE answers byte-identical to the from-scratch rebuild ($PAIRS pairs)"

# The offline incremental path must agree too.
"$PLL" update "$WORK/base.idx" "$WORK/base.txt" "$WORK/new.txt" \
  -o "$WORK/updated.idx" --threads "$THREADS"
"$PLL" query "$WORK/updated.idx" - < "$WORK/pairs.txt" > "$WORK/offline_update.txt"
if ! diff -q "$WORK/offline_update.txt" "$WORK/offline_rebuild.txt" > /dev/null; then
  echo "FAIL: pll update answers differ from the offline rebuild" >&2
  diff "$WORK/offline_update.txt" "$WORK/offline_rebuild.txt" | head -20 >&2
  exit 1
fi
echo "pll update flatten byte-identical to the from-scratch rebuild"

SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited with status $SERVER_EXIT" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
echo "server shut down cleanly; summary:"
grep -E 'served|worker' "$WORK/serve.err" || true
