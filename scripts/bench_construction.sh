#!/usr/bin/env bash
# Construction-throughput benchmark: builds the index on synthetic BA and
# R-MAT graphs over a thread sweep — for each requested index variant —
# and writes BENCH_construction.json at the repository root, so successive
# PRs have a perf trajectory to compare against. Each record carries the
# builder's per-phase breakdown (order_secs / relabel_secs / search_secs /
# flatten_secs), making the Amdahl accounting of the parallel path visible
# in the trajectory.
#
# Usage:
#   scripts/bench_construction.sh [N] [THREADS] [OUT] [VARIANTS]
#     N        vertex count for the BA graph / R-MAT target (default 100000)
#     THREADS  comma-separated sweep (default 1,2,4,8)
#     OUT      output JSON path (default BENCH_construction.json)
#     VARIANTS comma-separated index variants (default undirected;
#              all = undirected,directed,weighted,weighted-directed)
#
# Note: speedups only manifest with real CPU cores; on a single-core
# machine the sweep measures the parallel path's overhead instead.
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-100000}"
THREADS="${2:-1,2,4,8}"
OUT="${3:-BENCH_construction.json}"
VARIANTS="${4:-undirected}"
if [ "$VARIANTS" = "all" ]; then
  VARIANTS="undirected,directed,weighted,weighted-directed"
fi

cargo build --release -p pll-bench --bin bench_construction
./target/release/bench_construction --n "$N" --threads "$THREADS" --out "$OUT" \
  --variants "$VARIANTS"
echo "benchmark written to $OUT"
