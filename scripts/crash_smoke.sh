#!/usr/bin/env bash
# Crash-recovery gate for the durable dynamic-serving path, and the
# generator of BENCH_recovery.json. The acceptance criterion is
# end-to-end equivalence: for every fault-injection site in the
# durability pipeline, kill -9 the server (std::process::abort at the
# site), restart it against the same --wal journal, and the recovered
# answers must be byte-identical to an offline reconstruction that
# replays the journal's own dump (`pll wal`) onto the pristine base
# index with `pll update`.
#
# Per fault site (wal.after_append, serve.before_publish,
# wal.after_commit, snapshot.before_rename):
#
#   1. serve a pristine copy of the base index with --wal and a small
#      --snapshot-every so compaction happens mid-run, with
#      PLL_FAILPOINTS arming the site's K-th hit to abort,
#   2. drive UPDATE batches at it until it dies (the driver is expected
#      to fail; the server must exit non-zero),
#   3. restart clean on the same index file + journal, require the
#      `wal recovery:` line, capture online answers, SHUTDOWN,
#   4. `pll wal` dump -> `pll update` onto the pristine index ->
#      `pll query`, byte-diff against the online answers.
#
# Then an overload phase: 1 worker, --max-pending 1, 8 retrying
# connections. Every connection must converge (exit 0) while the server
# sheds with STATUS_BUSY, and the client must report retries > 0.
#
# Recovery times, replay stats, shed and retry counts are composed into
# OUT as JSON.
#
# Usage:
#   scripts/crash_smoke.sh [N] [PAIRS] [OUT] [THREADS]
#     N        graph vertices                (default 400)
#     PAIRS    verification query pairs      (default 1000)
#     OUT      JSON report path              (default BENCH_recovery.json)
#     THREADS  build + serve worker threads  (default 2)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-400}"
PAIRS="${2:-1000}"
OUT="${3:-BENCH_recovery.json}"
THREADS="${4:-2}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Failpoints are compiled in (but unarmed sites are no-ops, so the same
# binary also serves the overload phase).
cargo build --release -p pll-cli --features failpoints
cargo build --release -p pll-bench --bin serve_load
PLL=./target/release/pll
LOAD=./target/release/serve_load

# Base: a ring plus every third chord. Insertions: the remaining chords
# plus some long-range ones — enough UPDATE batches that every fault
# site (including the snapshot path) is reachable mid-run.
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) {
    print i, (i + 1) % n
    if (i % 3 == 0) print i, (i * 7 + 3) % n
  }
}' > "$WORK/base.txt"
awk -v n="$N" 'BEGIN {
  for (i = 0; i < n; i++) {
    if (i % 3 != 0) print i, (i * 7 + 3) % n
    if (i % 11 == 0) print i, (i * 31 + 17) % n
  }
}' > "$WORK/new.txt"
awk -v n="$N" -v q="$PAIRS" 'BEGIN {
  seed = 424242
  for (i = 0; i < q; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648; s = seed % n
    seed = (seed * 1103515245 + 12345) % 2147483648; t = seed % n
    print s, t
  }
}' > "$WORK/pairs.txt"

"$PLL" build "$WORK/base.txt" "$WORK/orig.idx" --threads "$THREADS" --bp-roots 4

start_server() { # args: index wal extra-env-spec (empty = no failpoints)
  local index="$1" wal="$2" spec="$3"
  : > "$WORK/serve.out"
  : > "$WORK/serve.err"
  # --flatten-threshold 1: every applied batch kicks the background
  # flattener, so the flatten.* sites are reached within a batch or two.
  if [ -n "$spec" ]; then
    PLL_FAILPOINTS="$spec" "$PLL" serve --index "$index" --graph "$WORK/base.txt" \
      --addr 127.0.0.1:0 --threads "$THREADS" \
      --wal "$wal" --snapshot-every 4 --flatten-threshold 1 \
      > "$WORK/serve.out" 2> "$WORK/serve.err" &
  else
    "$PLL" serve --index "$index" --graph "$WORK/base.txt" \
      --addr 127.0.0.1:0 --threads "$THREADS" \
      --wal "$wal" --snapshot-every 4 --flatten-threshold 1 \
      > "$WORK/serve.out" 2> "$WORK/serve.err" &
  fi
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(grep -m1 -oE 'listening on [0-9.:]+' "$WORK/serve.out" 2>/dev/null | awk '{print $3}' || true)"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "server exited early:" >&2
      cat "$WORK/serve.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never reported its address" >&2; exit 1; }
}

SITES="wal.after_append=3*abort serve.before_publish=3*abort wal.after_commit=2*abort snapshot.before_rename=1*abort flatten.before_swap=2*abort flatten.after_swap=2*abort"
SITE_ROWS=""
for SPEC in $SITES; do
  SITE="${SPEC%%=*}"
  echo "=== fault site: $SITE ($SPEC) ==="
  cp "$WORK/orig.idx" "$WORK/site.idx"
  rm -f "$WORK/site.wal"

  # Phase 1: serve with the site armed and drive updates until it dies.
  start_server "$WORK/site.idx" "$WORK/site.wal" "$SPEC"
  echo "armed server on $ADDR (pid $SERVER_PID)"
  timeout 120 "$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 \
    --connections 2 --updates "$WORK/new.txt" --update-batch 32 \
    > /dev/null 2> "$WORK/load_crash.log" || true
  CRASH_EXIT=0
  wait "$SERVER_PID" || CRASH_EXIT=$?
  SERVER_PID=""
  if [ "$CRASH_EXIT" -eq 0 ]; then
    echo "FAIL: server survived an armed abort at $SITE" >&2
    exit 1
  fi
  echo "server killed at $SITE (exit $CRASH_EXIT)"

  # Phase 2: restart clean; recovery must replay the journal.
  start_server "$WORK/site.idx" "$WORK/site.wal" ""
  grep -m1 'wal recovery:' "$WORK/serve.err" || {
    echo "FAIL: restarted server reported no recovery" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  }
  RECOV="$(grep -m1 'wal recovery:' "$WORK/serve.err")"
  timeout 120 "$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 32 \
    --connections 2 --answers-out "$WORK/online.txt" --shutdown \
    2> "$WORK/load_verify.log"
  RESTART_EXIT=0
  wait "$SERVER_PID" || RESTART_EXIT=$?
  SERVER_PID=""
  if [ "$RESTART_EXIT" -ne 0 ]; then
    echo "FAIL: recovered server exited with status $RESTART_EXIT" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi

  # Phase 3: offline reconstruction from the journal's own dump. The
  # dump (rebase + update edges) applied to the PRISTINE base index must
  # reproduce the recovered server's answers exactly — replay is
  # idempotent, so at-least-once journaling still converges to the same
  # index.
  "$PLL" wal "$WORK/site.wal" > "$WORK/dumped.txt" 2> "$WORK/wal_stats.log"
  cat "$WORK/wal_stats.log" >&2
  if [ -s "$WORK/dumped.txt" ]; then
    "$PLL" update "$WORK/orig.idx" "$WORK/base.txt" "$WORK/dumped.txt" \
      -o "$WORK/replayed.idx" --threads "$THREADS"
  else
    cp "$WORK/orig.idx" "$WORK/replayed.idx"
  fi
  "$PLL" query "$WORK/replayed.idx" - < "$WORK/pairs.txt" > "$WORK/offline.txt"
  if ! diff -q "$WORK/online.txt" "$WORK/offline.txt" > /dev/null; then
    echo "FAIL: recovered answers differ from the offline WAL replay ($SITE)" >&2
    diff "$WORK/online.txt" "$WORK/offline.txt" | head -20 >&2
    exit 1
  fi
  echo "recovered answers byte-identical to the offline WAL replay ($PAIRS pairs)"

  # Row for the JSON report, parsed from the recovery line:
  # wal recovery: epoch E, B batches replayed (X edges, U uncommitted),
  #               R rebase edges, T torn bytes truncated, S s
  ROW="$(echo "$RECOV" | awk -v site="$SITE" '{
    gsub(/[(),]/, "")
    printf "    {\"site\": \"%s\", \"recovered_epoch\": %s, \"replayed_batches\": %s, \"replayed_edges\": %s, \"uncommitted_batches\": %s, \"rebase_edges\": %s, \"truncated_bytes\": %s, \"recovery_seconds\": %s}", \
      site, $4, $5, $8, $10, $12, $15, $19
  }')"
  if [ -n "$SITE_ROWS" ]; then SITE_ROWS="$SITE_ROWS,
$ROW"; else SITE_ROWS="$ROW"; fi
done

echo "=== overload: 1 worker, --max-pending 1, 8 retrying connections ==="
rm -f "$WORK/over.wal"
cp "$WORK/orig.idx" "$WORK/over.idx"
"$PLL" serve --index "$WORK/over.idx" --graph "$WORK/base.txt" \
  --addr 127.0.0.1:0 --threads 1 --max-pending 1 \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(grep -m1 -oE 'listening on [0-9.:]+' "$WORK/serve.out" 2>/dev/null | awk '{print $3}' || true)"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never reported its address" >&2; exit 1; }
timeout 120 "$LOAD" --addr "$ADDR" --pairs "$WORK/pairs.txt" --batch 1 \
  --connections 8 --retry --shutdown 2> "$WORK/overload.log"
cat "$WORK/overload.log" >&2
OVER_EXIT=0
wait "$SERVER_PID" || OVER_EXIT=$?
SERVER_PID=""
if [ "$OVER_EXIT" -ne 0 ]; then
  echo "FAIL: overloaded server exited with status $OVER_EXIT" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
RETRY_LINE="$(grep -m1 '^retries:' "$WORK/overload.log" || true)"
[ -n "$RETRY_LINE" ] || { echo "FAIL: --retry reported no retry line" >&2; exit 1; }
RETRIES="$(echo "$RETRY_LINE" | awk '{print $2}')"
BUSY="$(echo "$RETRY_LINE" | awk '{gsub(/\(/, ""); print $3}')"
IOERRS="$(echo "$RETRY_LINE" | awk '{print $5}')"
SHEDS="$(grep -oE '[0-9]+ shed' "$WORK/serve.err" | awk '{print $1}' || echo 0)"
if [ "${RETRIES:-0}" -lt 1 ] || [ "${SHEDS:-0}" -lt 1 ]; then
  echo "FAIL: overload produced no shedding ($SHEDS shed) or no retries ($RETRIES)" >&2
  exit 1
fi
echo "overload converged: $SHEDS connections shed, $RETRIES client retries"

cat > "$OUT" <<EOF
{
  "timestamp_unix": $(date +%s),
  "num_vertices": $N,
  "pairs": $PAIRS,
  "fault_sites": [
$SITE_ROWS
  ],
  "overload": {
    "threads": 1,
    "max_pending": 1,
    "connections": 8,
    "sheds": $SHEDS,
    "retries": $RETRIES,
    "busy": $BUSY,
    "io": $IOERRS
  }
}
EOF
echo "report written to $OUT"
