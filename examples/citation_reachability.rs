//! Directed distances in a citation-style DAG (§6, "Directed Graphs"):
//! `L_OUT`/`L_IN` labels answer "how many citation hops from paper A to
//! paper B", which is inherently asymmetric.
//!
//! ```text
//! cargo run --release --example citation_reachability
//! ```

use pruned_landmark_labeling::graph::{CsrDigraph, Xoshiro256pp};
use pruned_landmark_labeling::pll::DirectedIndexBuilder;

/// Synthesises a citation DAG: papers are ordered by publication time and
/// cite a handful of earlier papers, preferentially recent ones.
fn citation_graph(n: usize, refs_per_paper: usize, seed: u64) -> CsrDigraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut arcs = std::collections::HashSet::new();
    for paper in 1..n as u32 {
        for _ in 0..refs_per_paper {
            // Sample an earlier paper, biased towards recent ones.
            let window = (paper as u64).min(200);
            let offset = rng.next_below(window) + 1;
            let cited = paper - offset as u32;
            arcs.insert((paper, cited));
        }
    }
    let mut list: Vec<_> = arcs.into_iter().collect();
    list.sort_unstable();
    CsrDigraph::from_edges(n, &list).expect("digraph")
}

fn main() {
    let graph = citation_graph(20_000, 5, 3);
    println!(
        "citation graph: {} papers, {} citations",
        graph.num_vertices(),
        graph.num_edges()
    );

    let index = DirectedIndexBuilder::new()
        .build(&graph)
        .expect("construction");
    println!(
        "directed index: avg |L_IN| + |L_OUT| = {:.1} per paper",
        index.avg_label_size()
    );

    // Newer papers can reach older ones through citations, never the
    // reverse (the graph is a DAG pointing backwards in time).
    let pairs = [(19_999u32, 5u32), (10_000, 123), (500, 499), (42, 19_999)];
    for (from, to) in pairs {
        let forward = index.distance(from, to);
        let backward = index.distance(to, from);
        println!("paper {from} -> {to}: {forward:?};  {to} -> {from}: {backward:?}");
        if from > to {
            assert!(
                backward.is_none(),
                "older papers cannot cite newer ones in a citation DAG"
            );
        }
    }
}
