//! Socially-sensitive search (the motivating application of §1): rank
//! search results by the querying user's social distance to each result's
//! author. Low latency matters — the ranking runs once per keystroke — so
//! per-query BFS is unusable and the PLL index shines.
//!
//! ```text
//! cargo run --release --example social_search
//! ```

use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::graph::traversal::bfs::BfsEngine;
use pruned_landmark_labeling::graph::Xoshiro256pp;
use pruned_landmark_labeling::pll::IndexBuilder;
use std::time::Instant;

fn main() {
    // A social network of 30k users.
    let graph = gen::chung_lu(30_000, 2.3, 12.0, 7).expect("generation");
    println!(
        "social graph: {} users, {} friendships",
        graph.num_vertices(),
        graph.num_edges()
    );

    let index = IndexBuilder::new()
        .bit_parallel_roots(16)
        .build(&graph)
        .expect("construction");

    // A search query returns 200 candidate items, each with an author and a
    // textual relevance score; the final rank blends text relevance with
    // social proximity.
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let user: u32 = 12_345;
    let candidates: Vec<(u32, f64)> = (0..200)
        .map(|_| {
            (
                rng.next_below(graph.num_vertices() as u64) as u32,
                rng.next_f64(),
            )
        })
        .collect();

    let social_score = |d: Option<u32>| match d {
        Some(0) => 1.0,
        Some(d) => 1.0 / (1.0 + d as f64),
        None => 0.0,
    };

    // Rank with the index.
    let start = Instant::now();
    let mut ranked: Vec<(u32, f64)> = candidates
        .iter()
        .map(|&(author, text)| {
            let s = social_score(index.distance(user, author));
            (author, 0.6 * text + 0.4 * s)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let pll_time = start.elapsed();

    // The same ranking via per-query BFS, for comparison.
    let start = Instant::now();
    let mut engine = BfsEngine::new(graph.num_vertices());
    let mut ranked_bfs: Vec<(u32, f64)> = candidates
        .iter()
        .map(|&(author, text)| {
            let s = social_score(engine.distance(&graph, user, author));
            (author, 0.6 * text + 0.4 * s)
        })
        .collect();
    ranked_bfs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let bfs_time = start.elapsed();

    assert_eq!(
        ranked.iter().map(|r| r.0).collect::<Vec<_>>(),
        ranked_bfs.iter().map(|r| r.0).collect::<Vec<_>>(),
        "both rankings must agree (PLL is exact)"
    );

    println!("top-5 results for user {user}:");
    for (author, score) in ranked.iter().take(5) {
        println!(
            "  author {author:>6}  score {score:.3}  distance {:?}",
            index.distance(user, *author)
        );
    }
    println!(
        "ranking 200 candidates: PLL {:.2} ms vs per-query BFS {:.2} ms ({}x)",
        pll_time.as_secs_f64() * 1e3,
        bfs_time.as_secs_f64() * 1e3,
        (bfs_time.as_secs_f64() / pll_time.as_secs_f64()).round()
    );
}
