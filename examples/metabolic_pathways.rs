//! Optimal pathways between compounds in a metabolic network (§1 cites
//! this application): reactions have costs, so this uses the *weighted*
//! variant of the index — pruned Dijkstra instead of pruned BFS (§6).
//!
//! ```text
//! cargo run --release --example metabolic_pathways
//! ```

use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::graph::traversal::dijkstra;
use pruned_landmark_labeling::graph::wgraph::WeightedGraph;
use pruned_landmark_labeling::graph::Xoshiro256pp;
use pruned_landmark_labeling::pll::WeightedIndexBuilder;
use std::time::Instant;

fn main() {
    // Metabolite interaction network: scale-free topology with reaction
    // costs 1..=10 (lower = thermodynamically cheaper).
    let skeleton = gen::barabasi_albert(8_000, 3, 5).expect("generation");
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let edges: Vec<(u32, u32, u32)> = skeleton
        .edges()
        .map(|(u, v)| (u, v, rng.next_below(10) as u32 + 1))
        .collect();
    let network = WeightedGraph::from_edges(skeleton.num_vertices(), &edges).expect("weights");
    println!(
        "metabolic network: {} compounds, {} reactions (weighted)",
        network.num_vertices(),
        network.num_edges()
    );

    let start = Instant::now();
    let index = WeightedIndexBuilder::new()
        .build(&network)
        .expect("construction");
    println!(
        "weighted index built in {:.2} s (avg label size {:.1})",
        start.elapsed().as_secs_f64(),
        index.avg_label_size()
    );

    // Pathway cost queries, validated against Dijkstra.
    let compounds = [(0u32, 7_999u32), (12, 4_000), (100, 101), (55, 55)];
    let mut engine = dijkstra::DijkstraEngine::new(network.num_vertices());
    for (a, b) in compounds {
        let t0 = Instant::now();
        let via_index = index.distance(a, b);
        let index_us = t0.elapsed().as_secs_f64() * 1e6;
        let t1 = Instant::now();
        let via_dijkstra = engine.distance(&network, a, b);
        let dijkstra_us = t1.elapsed().as_secs_f64() * 1e6;
        assert_eq!(via_index, via_dijkstra, "exactness");
        println!(
            "pathway cost {a} -> {b}: {via_index:?}  (index {index_us:.1} µs, \
             Dijkstra {dijkstra_us:.0} µs)"
        );
    }
}
