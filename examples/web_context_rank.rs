//! Context-aware web search (§1): boost pages close to the page the user
//! is currently visiting. Also demonstrates shortest-*path* queries (§6) to
//! explain *why* a page ranked high, and disk-resident querying.
//!
//! ```text
//! cargo run --release --example web_context_rank
//! ```

use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::pll::{disk, paths, IndexBuilder};

fn main() {
    // A web-crawl-like graph of 20k pages (copying model).
    let graph = gen::copying_model(20_000, 6, 0.85, 11).expect("generation");
    println!(
        "web graph: {} pages, {} links",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Parent pointers enable path reconstruction (forces t = 0, see §6).
    let index = IndexBuilder::new()
        .bit_parallel_roots(0)
        .store_parents(true)
        .build(&graph)
        .expect("construction");

    let current_page: u32 = 4_242;
    let results: [u32; 6] = [17, 9_000, 4_243, 15_000, 123, 19_999];

    println!("distance-boosted ranking relative to page {current_page}:");
    let mut scored: Vec<(u32, Option<u32>)> = results
        .iter()
        .map(|&p| (p, index.distance(current_page, p)))
        .collect();
    scored.sort_by_key(|&(_, d)| d.unwrap_or(u32::MAX));
    for (page, d) in &scored {
        println!("  page {page:>6}  distance {d:?}");
        if let Ok(Some(path)) = paths::shortest_path(&index, current_page, *page) {
            if path.len() <= 6 {
                println!("    via {path:?}");
            }
        }
    }

    // Disk-resident querying (§6): two reads per query.
    let mut tmp = std::env::temp_dir();
    tmp.push(format!("pll_web_example_{}.idx", std::process::id()));
    disk::write_disk_index(&index, &tmp).expect("write disk index");
    let mut on_disk = disk::DiskIndex::open(&tmp).expect("open");
    let d_mem = index.distance(current_page, results[0]);
    let d_disk = on_disk.distance(current_page, results[0]).expect("query");
    assert_eq!(d_mem, d_disk);
    println!(
        "disk index at {} answers with {} reads for 1 query (matches memory: {:?})",
        tmp.display(),
        on_disk.reads_performed(),
        d_disk
    );
    std::fs::remove_file(&tmp).ok();
}
