//! Quickstart: build a pruned landmark labeling index over a synthetic
//! social network and answer exact distance queries in microseconds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::pll::{serialize, IndexBuilder, OrderingStrategy};
use std::time::Instant;

fn main() {
    // 1. A scale-free network: 50k users, ~3 links each.
    let graph = gen::barabasi_albert(50_000, 3, 42).expect("generation");
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Build the index: Degree ordering and 16 bit-parallel roots are the
    //    paper's defaults for graphs of this size.
    let start = Instant::now();
    let index = IndexBuilder::new()
        .ordering(OrderingStrategy::Degree)
        .bit_parallel_roots(16)
        .build(&graph)
        .expect("construction");
    println!(
        "index built in {:.2} s (avg label size {:.1} + {} bit-parallel, {} KiB)",
        start.elapsed().as_secs_f64(),
        index.avg_label_size(),
        index.bit_parallel().num_roots(),
        index.memory_bytes() / 1024
    );

    // 3. Exact distance queries.
    let queries = [(0u32, 49_999u32), (123, 456), (7, 7), (1000, 2000)];
    for (s, t) in queries {
        let start = Instant::now();
        let d = index.distance(s, t);
        println!(
            "d({s}, {t}) = {:?}  ({:.1} µs)",
            d,
            start.elapsed().as_secs_f64() * 1e6
        );
    }

    // 4. The index round-trips through the versioned binary format.
    let mut buf = Vec::new();
    serialize::save_index(&index, &mut buf).expect("save");
    let loaded = serialize::load_index(buf.as_slice()).expect("load");
    assert_eq!(loaded.distance(123, 456), index.distance(123, 456));
    println!("serialised index: {} KiB, round-trip OK", buf.len() / 1024);
}
