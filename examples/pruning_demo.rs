//! A small-scale reenactment of Figure 1: watch the pruned BFSs shrink.
//!
//! The paper's Figure 1 steps through pruned BFSs on a 12-vertex example,
//! colouring vertices labeled vs pruned. This example prints the same
//! story for a small scale-free network: for each BFS root (in degree
//! order), how many vertices were visited, how many got a label and how
//! many were pruned — the search space collapses after a handful of roots.
//!
//! ```text
//! cargo run --release --example pruning_demo
//! ```

use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::pll::{BuildObserver, IndexBuilder, PartialIndex, RootStats};

struct Narrator {
    shown: usize,
}

impl BuildObserver for Narrator {
    fn after_root(&mut self, k: usize, stats: &RootStats, view: &PartialIndex<'_>) {
        // Print the first ten BFSs, then exponentially spaced ones.
        let interesting = k <= 10 || k.is_power_of_two();
        if !interesting {
            return;
        }
        self.shown += 1;
        let bar = "#".repeat((stats.labeled as usize * 40 / view.num_vertices()).max(1));
        println!(
            "BFS {k:>5}: visited {v:>5}  labeled {l:>5}  pruned {p:>5}  {bar}",
            v = stats.visited,
            l = stats.labeled,
            p = stats.pruned,
        );
    }
}

fn main() {
    let g = gen::barabasi_albert(20_000, 3, 2).expect("generation");
    println!(
        "pruned BFS progression on a {}-vertex, {}-edge scale-free graph:",
        g.num_vertices(),
        g.num_edges()
    );
    println!("(no bit-parallel phase, degree order — every vertex roots one BFS)\n");

    let mut narrator = Narrator { shown: 0 };
    let index = IndexBuilder::new()
        .bit_parallel_roots(0)
        .record_root_stats(true)
        .build_with_observer(&g, &mut narrator)
        .expect("construction");

    let stats = index.stats();
    println!("\ntotals over {} pruned BFSs:", stats.pruned_roots);
    println!(
        "  visited {v}, labeled {l} ({perc:.2}% of the naive n² labels), pruned {p} \
         ({rate:.0}% of visits)",
        v = stats.total_visited,
        l = stats.total_labeled,
        p = stats.total_pruned,
        perc = 100.0 * stats.total_labeled as f64
            / (g.num_vertices() as f64 * g.num_vertices() as f64),
        rate = 100.0 * stats.prune_rate(),
    );
    println!(
        "  average label size {:.1}; a naive landmark labeling would store {} entries",
        index.avg_label_size(),
        g.num_vertices()
    );
}
