//! Minimal offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This container has no network access to a cargo registry, so the real
//! criterion crate cannot be fetched. This shim implements the small API
//! surface the workspace's benches use — [`Criterion`], benchmark groups,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! median-of-samples timer and a plain-text report. Swap the workspace
//! dependency back to crates.io criterion when a registry is available;
//! no bench source changes are needed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter, shown
/// as `name/parameter` like the real crate.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("pll", n)` renders as `pll/n`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: one warm-up call, then `sample_size`
    /// timed samples (each a batch of iterations sized so a sample takes a
    /// measurable slice of the budget).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how long does one call take?
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (budget_per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Like [`Self::bench_function`], passing `input` through to the closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            measurement_time,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        b.report(&id.id);
        self
    }

    /// Called by [`criterion_main!`]; parses and ignores CLI flags the real
    /// harness accepts (`--bench`, filters) so `cargo bench` invocations
    /// keep working.
    pub fn final_summary(&self) {}
}

/// Defines a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("id", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(0u8)));
        c.final_summary();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
