//! Minimal offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing
//! framework.
//!
//! This container has no network access to a cargo registry, so the real
//! proptest crate cannot be fetched. This shim implements the subset of the
//! API the workspace's test suites use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`;
//! * strategies for integer ranges, tuples, [`collection::vec`],
//!   [`any`](strategy::any) and [`prop_oneof!`] unions;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`) and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG (seeded by the test name, overridable with
//! `PROPTEST_RNG_SEED`), and failing cases are **not shrunk** — the failing
//! case number and message are reported as-is. Swap the workspace
//! dependency back to crates.io proptest when a registry is available; no
//! test source changes are needed.

pub mod test_runner {
    //! Config, RNG and error types for the [`crate::proptest!`] runner.

    use std::fmt;

    /// Subset of proptest's `Config` honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64: small, fast, deterministic; good enough for case
    /// generation (the real crate uses ChaCha).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name (stable across runs) xor an optional
        /// `PROPTEST_RNG_SEED` environment override.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    seed ^= v;
                }
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Multiply-shift rejection-free mapping (bias negligible for
            // test-case generation).
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike the real crate there is no value *tree* (no shrinking): a
    /// strategy simply produces a value from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `branches` must be non-empty.
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($n,)+) = self;
                    ($($n.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E)
    }

    /// Strategy producing uniformly random values of a primitive type; see
    /// [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Types [`any`] can generate.
    pub trait Arbitrary: Sized {
        /// Generates one uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniformly random values of `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 0..100)`: a vector of 0–99 generated elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($branch) ),+
        ])
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `config.cases` random cases. Failures are
/// reported with their case number; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        assert!(TestRng::deterministic("y").next_u64() != TestRng::deterministic("z").next_u64());
    }

    #[test]
    fn range_and_vec_strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let r = 5u32..17;
        for _ in 0..200 {
            let v = r.new_value(&mut rng);
            assert!((5..17).contains(&v));
        }
        let vs = crate::collection::vec(0u8..10, 3..6);
        for _ in 0..100 {
            let v = vs.new_value(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0u32..n as u32 * 10, n..n + 1).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
        let u = prop_oneof![(0u32..1).prop_map(|_| 7u32), (0u32..1).prop_map(|_| 9u32)];
        for _ in 0..50 {
            let x = u.new_value(&mut rng);
            assert!(x == 7 || x == 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_cases(x in 0u32..100, mut ys in crate::collection::vec(any::<u8>(), 0..8)) {
            ys.push(0);
            prop_assert!(x < 100);
            prop_assert_eq!(*ys.last().unwrap(), 0u8);
            prop_assert_ne!(ys.len(), 0usize);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn macro_reports_failures() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        inner();
    }
}
