//! Cross-crate tests of the §6 variants: paths, directed, weighted, disk
//! and serialisation, driven through the facade crate.

use pruned_landmark_labeling::graph::traversal::{bfs, dijkstra};
use pruned_landmark_labeling::graph::wgraph::WeightedGraph;
use pruned_landmark_labeling::graph::{gen, CsrDigraph, Xoshiro256pp};
use pruned_landmark_labeling::pll::{
    disk, paths, serialize, DirectedIndexBuilder, IndexBuilder, WeightedIndexBuilder,
};

#[test]
fn paths_are_valid_shortest_paths_end_to_end() {
    let g = gen::chung_lu(300, 2.4, 6.0, 9).unwrap();
    let idx = IndexBuilder::new()
        .bit_parallel_roots(0)
        .store_parents(true)
        .build(&g)
        .unwrap();
    let mut checked = 0;
    for s in (0..300u32).step_by(17) {
        for t in (0..300u32).step_by(13) {
            let expect = bfs::distance(&g, s, t);
            match paths::shortest_path(&idx, s, t).unwrap() {
                Some(path) => {
                    let d = expect.expect("path implies connected");
                    assert_eq!(path.len() as u32, d + 1);
                    assert_eq!(path[0], s);
                    assert_eq!(*path.last().unwrap(), t);
                    for w in path.windows(2) {
                        assert!(g.has_edge(w[0], w[1]));
                    }
                    checked += 1;
                }
                None => assert_eq!(expect, None),
            }
        }
    }
    assert!(checked > 50, "only {checked} connected pairs checked");
}

#[test]
fn directed_index_matches_directed_bfs() {
    // A sparse random digraph plus a directed cycle for reachability.
    let n = 120usize;
    let mut rng = Xoshiro256pp::seed_from_u64(31);
    let mut arcs = std::collections::HashSet::new();
    for v in 0..n as u32 {
        arcs.insert((v, (v + 1) % n as u32));
    }
    while arcs.len() < 500 {
        let u = rng.next_below(n as u64) as u32;
        let v = rng.next_below(n as u64) as u32;
        if u != v {
            arcs.insert((u, v));
        }
    }
    let mut list: Vec<_> = arcs.into_iter().collect();
    list.sort_unstable();
    let g = CsrDigraph::from_edges(n, &list).unwrap();
    let idx = DirectedIndexBuilder::new().build(&g).unwrap();

    // Directed BFS ground truth from a few sources.
    for s in [0u32, 17, 63, 119] {
        let mut dist = vec![u32::MAX; n];
        let mut queue = vec![s];
        dist[s as usize] = 0;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in g.out_neighbors(u) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push(w);
                }
            }
        }
        for t in 0..n as u32 {
            let expect = (dist[t as usize] != u32::MAX).then_some(dist[t as usize]);
            assert_eq!(idx.distance(s, t), expect, "pair ({s} -> {t})");
        }
    }
}

#[test]
fn weighted_index_matches_dijkstra() {
    let skeleton = gen::barabasi_albert(200, 3, 21).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let edges: Vec<(u32, u32, u32)> = skeleton
        .edges()
        .map(|(u, v)| (u, v, rng.next_below(50) as u32 + 1))
        .collect();
    let g = WeightedGraph::from_edges(200, &edges).unwrap();
    let idx = WeightedIndexBuilder::new().build(&g).unwrap();
    let mut engine = dijkstra::DijkstraEngine::new(200);
    for s in (0..200u32).step_by(11) {
        for t in (0..200u32).step_by(7) {
            assert_eq!(idx.distance(s, t), engine.distance(&g, s, t), "({s}, {t})");
        }
    }
}

#[test]
fn serialization_and_disk_agree_with_memory() {
    let g = gen::copying_model(400, 5, 0.8, 13).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(8).build(&g).unwrap();

    // Binary round-trip.
    let mut buf = Vec::new();
    serialize::save_index(&idx, &mut buf).unwrap();
    let loaded = serialize::load_index(buf.as_slice()).unwrap();

    // Disk index.
    let mut path = std::env::temp_dir();
    path.push(format!("pll_integration_{}.idx", std::process::id()));
    disk::write_disk_index(&idx, &path).unwrap();
    let mut on_disk = disk::DiskIndex::open(&path).unwrap();

    for s in (0..400u32).step_by(31) {
        for t in (0..400u32).step_by(29) {
            let expect = idx.distance(s, t);
            assert_eq!(loaded.distance(s, t), expect);
            assert_eq!(on_disk.distance(s, t).unwrap(), expect);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn weighted_unit_graph_agrees_with_unweighted_index() {
    let g = gen::erdos_renyi_gnm(150, 400, 3).unwrap();
    let unweighted = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
    let weighted = WeightedIndexBuilder::new()
        .build(&WeightedGraph::from_unweighted(&g))
        .unwrap();
    for s in (0..150u32).step_by(13) {
        for t in (0..150u32).step_by(11) {
            assert_eq!(
                unweighted.distance(s, t).map(u64::from),
                weighted.distance(s, t),
                "({s}, {t})"
            );
        }
    }
}
