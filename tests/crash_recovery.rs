//! Crash-recovery integration tests: WAL files are constructed directly
//! through `pll::wal` — including deliberately damaged ones — and then
//! recovered through `pll_server::serve_dynamic`, asserting the startup
//! replay semantics end to end:
//!
//! * uncommitted `Update` records (journaled, crash before the commit
//!   marker) are replayed anyway — journaling precedes apply, so they
//!   are at-least-once delivery and replay is idempotent;
//! * a torn tail (crash mid-append) is silently truncated, never a
//!   panic or an error;
//! * a byte flip inside a complete record is corruption: startup must
//!   refuse with a typed `Format` error rather than serve wrong answers.
//!
//! `scripts/crash_smoke.sh` proves the same properties against real
//! `kill`ed server processes; these tests pin the exact stats and error
//! types in-process.

use pll_server::{serve_dynamic, ServeError, ServerConfig, ServerHandle, WalConfig};
use pruned_landmark_labeling::graph::CsrGraph;
use pruned_landmark_labeling::pll::wal::{self, WalHeader, WalRecord, WalWriter};
use pruned_landmark_labeling::pll::{v2, AnyIndex, IndexBuilder, PllError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

type Edge = (u32, u32);

const N: u32 = 60;

fn temp_path(name: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "pll_crash_recovery_{}_{n}_{name}",
        std::process::id()
    ))
}

fn ring() -> Vec<Edge> {
    (0..N).map(|i| (i, (i + 1) % N)).collect()
}

fn chords() -> Vec<Edge> {
    (0..N / 2).map(|i| (i, i + N / 2)).collect()
}

/// Builds the ring-only base index, persists it at `index_path`, and
/// returns the graph and the index as served.
fn base_fixture(index_path: &Path) -> (CsrGraph, Arc<AnyIndex>) {
    let g = CsrGraph::from_edges(N as usize, &ring()).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
    let mut buf = Vec::new();
    v2::save_v2_index(&idx, &mut buf).unwrap();
    wal::atomic_write(index_path, &buf).unwrap();
    (g, Arc::new(v2::open_v2_path(index_path).unwrap()))
}

fn start(
    index: Arc<AnyIndex>,
    graph: &CsrGraph,
    wal_path: &Path,
    index_path: &Path,
) -> Result<ServerHandle, ServeError> {
    serve_dynamic(
        index,
        Some(graph),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            wal: Some(WalConfig {
                wal_path: wal_path.into(),
                index_path: index_path.into(),
                snapshot_every: 0,
            }),
            ..ServerConfig::default()
        },
    )
}

/// Every-pair answers from the recovered server must equal a
/// from-scratch rebuild of ring + all chords.
fn assert_serves_full_graph(handle: &ServerHandle) {
    let full: Vec<Edge> = ring().into_iter().chain(chords()).collect();
    let g = CsrGraph::from_edges(N as usize, &full).unwrap();
    let rebuilt = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
    let pairs: Vec<Edge> = (0..N).flat_map(|s| (0..N).map(move |t| (s, t))).collect();
    let mut client =
        pll_server::protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
    let online = client.batch(&pairs).unwrap();
    for (&(s, t), got) in pairs.iter().zip(online) {
        assert_eq!(
            got,
            rebuilt.distance(s, t).map(u64::from),
            "({s}, {t}) diverges"
        );
    }
}

#[test]
fn uncommitted_updates_are_replayed() {
    let index_path = temp_path("uncommitted.idx");
    let wal_path = temp_path("uncommitted.wal");
    let (g, index) = base_fixture(&index_path);

    // A journal whose second batch was acknowledged but never marked
    // committed — the crash hit between journal+apply and the marker.
    let fp = wal::fingerprint_file(&index_path).unwrap();
    let header = WalHeader {
        fingerprint: fp,
        prev_fingerprint: fp,
        base_epoch: 0,
    };
    let all = chords();
    let (first, second) = all.split_at(all.len() / 2);
    let mut writer = WalWriter::create(&wal_path, &header, &[]).unwrap();
    writer
        .append(&WalRecord::Update {
            epoch: 1,
            edges: first.to_vec(),
        })
        .unwrap();
    writer.append(&WalRecord::Commit { seq: 0 }).unwrap();
    writer
        .append(&WalRecord::Update {
            epoch: 2,
            edges: second.to_vec(),
        })
        .unwrap();
    drop(writer);

    let handle = start(index, &g, &wal_path, &index_path).unwrap();
    let stats = handle.recovery().expect("a WAL was replayed").clone();
    assert_eq!(stats.replayed_batches, 2);
    assert_eq!(stats.uncommitted_batches, 1, "the unmarked batch counts");
    assert_eq!(stats.replayed_edges, all.len() as u64);
    assert_eq!(stats.truncated_bytes, 0);
    assert_eq!(stats.recovered_epoch, 2, "epoch numbering is deterministic");
    assert_eq!(handle.current_epoch(), 2);
    assert_serves_full_graph(&handle);
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(&index_path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn torn_tail_is_truncated_not_fatal() {
    let index_path = temp_path("torn.idx");
    let wal_path = temp_path("torn.wal");
    let (g, index) = base_fixture(&index_path);

    let fp = wal::fingerprint_file(&index_path).unwrap();
    let header = WalHeader {
        fingerprint: fp,
        prev_fingerprint: fp,
        base_epoch: 0,
    };
    let mut writer = WalWriter::create(&wal_path, &header, &[]).unwrap();
    writer
        .append(&WalRecord::Update {
            epoch: 1,
            edges: chords(),
        })
        .unwrap();
    drop(writer);

    // A crash mid-append leaves a half-written record: a length prefix
    // promising more bytes than the file holds.
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let valid_len = bytes.len() as u64;
    bytes.extend_from_slice(&200u32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 11]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let handle = start(index, &g, &wal_path, &index_path).unwrap();
    let stats = handle.recovery().expect("a WAL was replayed").clone();
    assert_eq!(stats.truncated_bytes, 15, "the torn tail, byte for byte");
    assert_eq!(stats.replayed_batches, 1);
    assert_eq!(stats.recovered_epoch, 1);
    assert_serves_full_graph(&handle);
    handle.shutdown();
    handle.join();

    // The reopened writer truncated the tail away on disk.
    let after = std::fs::metadata(&wal_path).unwrap().len();
    assert!(
        after >= valid_len && after < valid_len + 15,
        "tail still present: {after} vs valid {valid_len}"
    );
    let _ = std::fs::remove_file(&index_path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn corrupt_record_is_a_typed_error() {
    let index_path = temp_path("corrupt.idx");
    let wal_path = temp_path("corrupt.wal");
    let (g, index) = base_fixture(&index_path);

    let fp = wal::fingerprint_file(&index_path).unwrap();
    let header = WalHeader {
        fingerprint: fp,
        prev_fingerprint: fp,
        base_epoch: 0,
    };
    let mut writer = WalWriter::create(&wal_path, &header, &[]).unwrap();
    writer
        .append(&WalRecord::Update {
            epoch: 1,
            edges: chords(),
        })
        .unwrap();
    drop(writer);

    // Flip one byte inside the record payload (past the 40-byte header
    // and the 12-byte length+checksum prefix): a full-length record with
    // a checksum mismatch is corruption, not a torn tail.
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let at = 40 + 12 + 5;
    bytes[at] ^= 0x40;
    std::fs::write(&wal_path, &bytes).unwrap();

    match start(index, &g, &wal_path, &index_path) {
        Err(ServeError::Dynamic(PllError::Format { message })) => {
            assert!(message.contains("checksum"), "{message}");
        }
        Ok(_) => panic!("a corrupt WAL must refuse to serve"),
        Err(other) => panic!("expected a Format error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&index_path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn wrong_index_fingerprint_is_refused() {
    let index_path = temp_path("wrongfp.idx");
    let wal_path = temp_path("wrongfp.wal");
    let (g, index) = base_fixture(&index_path);

    // A journal keyed to some other index generation entirely.
    let header = WalHeader {
        fingerprint: 0xDEAD_BEEF,
        prev_fingerprint: 0xDEAD_BEEF,
        base_epoch: 0,
    };
    drop(WalWriter::create(&wal_path, &header, &[]).unwrap());

    match start(index, &g, &wal_path, &index_path) {
        Err(ServeError::Dynamic(e)) => {
            let message = e.to_string();
            assert!(message.contains("different base index"), "{message}");
        }
        Ok(_) => panic!("a mismatched WAL must refuse to serve"),
        Err(other) => panic!("expected a Dynamic error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&index_path);
    let _ = std::fs::remove_file(&wal_path);
}
