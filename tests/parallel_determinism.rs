//! Integration tests for the batch-parallel construction path: the
//! parallel build must be *byte-identical* to the sequential build — same
//! `LabelSet` (`PartialEq` covers offsets, ranks, dists and sentinels),
//! same bit-parallel labels, same vertex order — across graph families,
//! seeds and thread counts, for **all four** index variants (the
//! directed/weighted cases compare the full serialized byte streams,
//! which is exactly what the CI determinism matrix asserts on a
//! multi-core runner).

use pll_bench::{derive_digraph, derive_weighted, derive_weighted_digraph};
use pruned_landmark_labeling::graph::reorder::{apply_order, apply_order_threaded};
use pruned_landmark_labeling::graph::{gen, CsrGraph};
use pruned_landmark_labeling::pll::{
    order::{compute_order, compute_order_threaded},
    serialize, DirectedIndexBuilder, IndexBuilder, OrderingStrategy, WeightedDirectedIndexBuilder,
    WeightedIndexBuilder,
};

fn assert_threads_agree(g: &CsrGraph, base: &IndexBuilder, label: &str) {
    let seq = base.clone().threads(1).build(g).unwrap();
    for k in [2usize, 4, 8] {
        let par = base.clone().threads(k).build(g).unwrap();
        assert_eq!(
            seq.labels(),
            par.labels(),
            "{label}: LabelSet diverged at threads={k}"
        );
        assert_eq!(
            seq.bit_parallel(),
            par.bit_parallel(),
            "{label}: bit-parallel labels diverged at threads={k}"
        );
        assert_eq!(
            seq.order(),
            par.order(),
            "{label}: vertex order diverged at threads={k}"
        );
    }
}

#[test]
fn parallel_build_matches_sequential_on_ba() {
    for seed in [3u64, 17, 91] {
        let g = gen::barabasi_albert(800, 3, seed).unwrap();
        assert_threads_agree(
            &g,
            &IndexBuilder::new().bit_parallel_roots(8),
            &format!("BA seed {seed}"),
        );
    }
}

#[test]
fn parallel_build_matches_sequential_on_er() {
    for seed in [5u64, 29, 77] {
        let g = gen::erdos_renyi_gnm(500, 1500, seed).unwrap();
        assert_threads_agree(
            &g,
            &IndexBuilder::new().bit_parallel_roots(4),
            &format!("ER seed {seed}"),
        );
    }
}

#[test]
fn parallel_build_matches_sequential_on_forest_fire() {
    for seed in [2u64, 13, 55] {
        let g = gen::forest_fire(400, 0.35, seed).unwrap();
        assert_threads_agree(
            &g,
            &IndexBuilder::new().bit_parallel_roots(0),
            &format!("forest-fire seed {seed}"),
        );
    }
}

#[test]
fn parallel_build_matches_sequential_without_degree_order() {
    let g = gen::barabasi_albert(400, 2, 8).unwrap();
    for (name, strat) in [
        ("random", OrderingStrategy::Random),
        ("closeness", OrderingStrategy::Closeness { samples: 8 }),
    ] {
        assert_threads_agree(
            &g,
            &IndexBuilder::new().ordering(strat).bit_parallel_roots(2),
            name,
        );
    }
}

#[test]
fn parallel_queries_are_exact() {
    use pruned_landmark_labeling::graph::traversal::bfs::BfsEngine;
    let g = gen::erdos_renyi_gnm(250, 700, 41).unwrap();
    let idx = IndexBuilder::new()
        .bit_parallel_roots(4)
        .threads(4)
        .build(&g)
        .unwrap();
    let n = g.num_vertices();
    let mut engine = BfsEngine::new(n);
    for s in (0..n as u32).step_by(3) {
        let d = engine.run(&g, s).to_vec();
        for t in 0..n as u32 {
            let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
            assert_eq!(idx.distance(s, t), expect, "pair ({s}, {t})");
        }
    }
}

#[test]
fn parallel_build_matches_sequential_directed() {
    for seed in [3u64, 21, 64] {
        let base = gen::barabasi_albert(500, 3, seed).unwrap();
        let g = derive_digraph(&base, seed);
        for (oname, ordering) in [
            ("degree", OrderingStrategy::Degree),
            ("random", OrderingStrategy::Random),
        ] {
            let builder = DirectedIndexBuilder::new().ordering(ordering).seed(seed);
            let seq = builder.clone().threads(1).build(&g).unwrap();
            let mut seq_bytes = Vec::new();
            serialize::save_directed_index(&seq, &mut seq_bytes).unwrap();
            for k in [2usize, 4, 8] {
                let par = builder.clone().threads(k).build(&g).unwrap();
                assert_eq!(
                    seq.labels_in(),
                    par.labels_in(),
                    "directed/{oname} seed {seed}: L_IN diverged at threads={k}"
                );
                assert_eq!(
                    seq.labels_out(),
                    par.labels_out(),
                    "directed/{oname} seed {seed}: L_OUT diverged at threads={k}"
                );
                let mut par_bytes = Vec::new();
                serialize::save_directed_index(&par, &mut par_bytes).unwrap();
                assert_eq!(
                    seq_bytes, par_bytes,
                    "directed/{oname} seed {seed}: serialized bytes diverged at threads={k}"
                );
            }
        }
    }
}

#[test]
fn parallel_build_matches_sequential_weighted() {
    for (family, seed) in [("ba", 5u64), ("ba", 31), ("er", 9)] {
        let base = match family {
            "ba" => gen::barabasi_albert(400, 3, seed).unwrap(),
            _ => gen::erdos_renyi_gnm(350, 1100, seed).unwrap(),
        };
        let g = derive_weighted(&base, seed, 24);
        for (oname, ordering) in [
            ("degree", OrderingStrategy::Degree),
            ("random", OrderingStrategy::Random),
        ] {
            let builder = WeightedIndexBuilder::new().ordering(ordering).seed(seed);
            let seq = builder.clone().threads(1).build(&g).unwrap();
            let mut seq_bytes = Vec::new();
            serialize::save_weighted_index(&seq, &mut seq_bytes).unwrap();
            for k in [2usize, 4, 8] {
                let par = builder.clone().threads(k).build(&g).unwrap();
                let mut par_bytes = Vec::new();
                serialize::save_weighted_index(&par, &mut par_bytes).unwrap();
                assert_eq!(
                    seq_bytes, par_bytes,
                    "weighted/{family}/{oname} seed {seed}: serialized bytes diverged at \
                     threads={k}"
                );
            }
        }
    }
}

#[test]
fn parallel_build_matches_sequential_weighted_directed() {
    for seed in [2u64, 18, 47] {
        let base = gen::barabasi_albert(350, 3, seed).unwrap();
        let g = derive_weighted_digraph(&base, seed, 20);
        for (oname, ordering) in [
            ("degree", OrderingStrategy::Degree),
            ("random", OrderingStrategy::Random),
        ] {
            let builder = WeightedDirectedIndexBuilder::new()
                .ordering(ordering)
                .seed(seed);
            let seq = builder.clone().threads(1).build(&g).unwrap();
            let mut seq_bytes = Vec::new();
            serialize::save_weighted_directed_index(&seq, &mut seq_bytes).unwrap();
            for k in [2usize, 4, 8] {
                let par = builder.clone().threads(k).build(&g).unwrap();
                let mut par_bytes = Vec::new();
                serialize::save_weighted_directed_index(&par, &mut par_bytes).unwrap();
                assert_eq!(
                    seq_bytes, par_bytes,
                    "weighted-directed/{oname} seed {seed}: serialized bytes diverged at \
                     threads={k}"
                );
            }
        }
    }
}

#[test]
fn parallel_variant_queries_are_exact() {
    // Spot-check exactness of the parallel variant builds against plain
    // BFS/Dijkstra ground truth through the public query API.
    use pruned_landmark_labeling::graph::traversal::dijkstra;
    let base = gen::erdos_renyi_gnm(150, 450, 8).unwrap();

    let dg = derive_digraph(&base, 8);
    let didx = DirectedIndexBuilder::new().threads(4).build(&dg).unwrap();
    // Directed ground truth: BFS over out-arcs.
    let n = dg.num_vertices();
    for s in (0..n as u32).step_by(7) {
        let mut dist = vec![u32::MAX; n];
        let mut queue = vec![s];
        dist[s as usize] = 0;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in dg.out_neighbors(u) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push(w);
                }
            }
        }
        for t in 0..n as u32 {
            let expect = (dist[t as usize] != u32::MAX).then_some(dist[t as usize]);
            assert_eq!(didx.distance(s, t), expect, "directed pair ({s} -> {t})");
        }
    }

    let wg = derive_weighted(&base, 8, 12);
    let widx = WeightedIndexBuilder::new().threads(4).build(&wg).unwrap();
    let mut engine = dijkstra::DijkstraEngine::new(wg.num_vertices());
    for s in (0..n as u32).step_by(11) {
        for t in (0..n as u32).step_by(5) {
            assert_eq!(
                widx.distance(s, t),
                engine.distance(&wg, s, t),
                "weighted pair ({s}, {t})"
            );
        }
    }
}

#[test]
fn phase0_parallelism_alone_is_output_invariant() {
    // Phase 0 in isolation: with the searches out of the picture, the
    // parallel ordering (chunk sort + merge, closeness BFS fan-out) and
    // the parallel relabelling (chunked translation into disjoint CSR
    // slices) must reproduce their sequential outputs exactly. n is
    // large enough that the chunked paths actually engage.
    for (label, g) in [
        ("ba", gen::barabasi_albert(2500, 3, 13).unwrap()),
        ("er", gen::erdos_renyi_gnm(2000, 6000, 29).unwrap()),
    ] {
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Closeness { samples: 12 },
            OrderingStrategy::Random,
            OrderingStrategy::Degeneracy,
        ] {
            let seq = compute_order(&g, &strat, 7).unwrap();
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    seq,
                    compute_order_threaded(&g, &strat, 7, threads).unwrap(),
                    "{label}: {} order diverged at threads={threads}",
                    strat.name()
                );
            }
        }
        let order = compute_order(&g, &OrderingStrategy::Degree, 7).unwrap();
        let seq = apply_order(&g, &order).unwrap();
        for threads in [2usize, 4, 8] {
            assert_eq!(
                seq,
                apply_order_threaded(&g, &order, threads).unwrap(),
                "{label}: relabelled graph diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn pinned_order_isolates_relabel_and_flatten_parallelism() {
    // With a Custom order the Phase-0a output is fixed by construction,
    // so a threads sweep over the full build exercises the parallel
    // relabelling, searches and flatten against the same rank space —
    // byte-equality of the serialized index pins all three.
    let g = gen::barabasi_albert(1500, 3, 99).unwrap();
    let mut order: Vec<u32> = (0..1500).collect();
    order.sort_by_key(|&v| (v as u64 * 2_654_435_761) % 1500);
    let base = IndexBuilder::new()
        .ordering(OrderingStrategy::Custom(order))
        .bit_parallel_roots(4);
    let seq = base.clone().threads(1).build(&g).unwrap();
    let mut seq_bytes = Vec::new();
    serialize::save_index(&seq, &mut seq_bytes).unwrap();
    for threads in [2usize, 4, 8] {
        let par = base.clone().threads(threads).build(&g).unwrap();
        let mut par_bytes = Vec::new();
        serialize::save_index(&par, &mut par_bytes).unwrap();
        assert_eq!(
            seq_bytes, par_bytes,
            "custom-order build diverged at threads={threads}"
        );
    }
}

#[test]
fn per_phase_stats_are_populated_on_both_paths() {
    let g = gen::barabasi_albert(1200, 3, 3).unwrap();
    for threads in [1usize, 4] {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(4)
            .threads(threads)
            .build(&g)
            .unwrap();
        let s = idx.stats();
        for (phase, secs) in [
            ("order", s.order_seconds),
            ("relabel", s.relabel_seconds),
            ("search", s.search_seconds()),
            ("flatten", s.flatten_seconds),
        ] {
            assert!(
                secs > 0.0,
                "threads={threads}: phase '{phase}' reported no elapsed time"
            );
        }
        assert!(s.total_seconds() >= s.order_seconds + s.flatten_seconds);
    }
}

#[test]
fn parallel_serialization_roundtrip_matches_sequential_bytes() {
    let g = gen::barabasi_albert(300, 3, 6).unwrap();
    let seq = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
    let par = IndexBuilder::new()
        .bit_parallel_roots(4)
        .threads(4)
        .build(&g)
        .unwrap();
    let mut seq_bytes = Vec::new();
    let mut par_bytes = Vec::new();
    serialize::save_index(&seq, &mut seq_bytes).unwrap();
    serialize::save_index(&par, &mut par_bytes).unwrap();
    assert_eq!(
        seq_bytes, par_bytes,
        "serialised indices must be byte-identical"
    );
}
