//! Integration tests for the batch-parallel construction path: the
//! parallel build must be *byte-identical* to the sequential build — same
//! `LabelSet` (`PartialEq` covers offsets, ranks, dists and sentinels),
//! same bit-parallel labels, same vertex order — across graph families,
//! seeds and thread counts.

use pruned_landmark_labeling::graph::{gen, CsrGraph};
use pruned_landmark_labeling::pll::{IndexBuilder, OrderingStrategy};

fn assert_threads_agree(g: &CsrGraph, base: &IndexBuilder, label: &str) {
    let seq = base.clone().threads(1).build(g).unwrap();
    for k in [2usize, 4, 8] {
        let par = base.clone().threads(k).build(g).unwrap();
        assert_eq!(
            seq.labels(),
            par.labels(),
            "{label}: LabelSet diverged at threads={k}"
        );
        assert_eq!(
            seq.bit_parallel(),
            par.bit_parallel(),
            "{label}: bit-parallel labels diverged at threads={k}"
        );
        assert_eq!(
            seq.order(),
            par.order(),
            "{label}: vertex order diverged at threads={k}"
        );
    }
}

#[test]
fn parallel_build_matches_sequential_on_ba() {
    for seed in [3u64, 17, 91] {
        let g = gen::barabasi_albert(800, 3, seed).unwrap();
        assert_threads_agree(
            &g,
            &IndexBuilder::new().bit_parallel_roots(8),
            &format!("BA seed {seed}"),
        );
    }
}

#[test]
fn parallel_build_matches_sequential_on_er() {
    for seed in [5u64, 29, 77] {
        let g = gen::erdos_renyi_gnm(500, 1500, seed).unwrap();
        assert_threads_agree(
            &g,
            &IndexBuilder::new().bit_parallel_roots(4),
            &format!("ER seed {seed}"),
        );
    }
}

#[test]
fn parallel_build_matches_sequential_on_forest_fire() {
    for seed in [2u64, 13, 55] {
        let g = gen::forest_fire(400, 0.35, seed).unwrap();
        assert_threads_agree(
            &g,
            &IndexBuilder::new().bit_parallel_roots(0),
            &format!("forest-fire seed {seed}"),
        );
    }
}

#[test]
fn parallel_build_matches_sequential_without_degree_order() {
    let g = gen::barabasi_albert(400, 2, 8).unwrap();
    for (name, strat) in [
        ("random", OrderingStrategy::Random),
        ("closeness", OrderingStrategy::Closeness { samples: 8 }),
    ] {
        assert_threads_agree(
            &g,
            &IndexBuilder::new().ordering(strat).bit_parallel_roots(2),
            name,
        );
    }
}

#[test]
fn parallel_queries_are_exact() {
    use pruned_landmark_labeling::graph::traversal::bfs::BfsEngine;
    let g = gen::erdos_renyi_gnm(250, 700, 41).unwrap();
    let idx = IndexBuilder::new()
        .bit_parallel_roots(4)
        .threads(4)
        .build(&g)
        .unwrap();
    let n = g.num_vertices();
    let mut engine = BfsEngine::new(n);
    for s in (0..n as u32).step_by(3) {
        let d = engine.run(&g, s).to_vec();
        for t in 0..n as u32 {
            let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
            assert_eq!(idx.distance(s, t), expect, "pair ({s}, {t})");
        }
    }
}

#[test]
fn parallel_serialization_roundtrip_matches_sequential_bytes() {
    use pruned_landmark_labeling::pll::serialize;
    let g = gen::barabasi_albert(300, 3, 6).unwrap();
    let seq = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
    let par = IndexBuilder::new()
        .bit_parallel_roots(4)
        .threads(4)
        .build(&g)
        .unwrap();
    let mut seq_bytes = Vec::new();
    let mut par_bytes = Vec::new();
    serialize::save_index(&seq, &mut seq_bytes).unwrap();
    serialize::save_index(&par, &mut par_bytes).unwrap();
    assert_eq!(
        seq_bytes, par_bytes,
        "serialised indices must be byte-identical"
    );
}
