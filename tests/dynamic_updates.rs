//! Integration tests for the incremental-update subsystem
//! (`pll_core::dynamic`): after any sequence of edge insertions the
//! [`DynamicIndex`] must answer **exactly** like a from-scratch rebuild
//! of the updated graph, over both storage backends, with and without
//! bit-parallel labels, and through the flatten → v2 → reopen cycle.

use pruned_landmark_labeling::graph::{gen, CsrGraph};
use pruned_landmark_labeling::pll::{
    dynamic::DynamicIndex, v2, AlignedBytes, AnyIndex, IndexBuilder,
};
use std::sync::Arc;

type Edge = (u32, u32);

fn rebuild(n: usize, edges: &[Edge], bp_roots: usize) -> pruned_landmark_labeling::pll::PllIndex {
    let g = CsrGraph::from_edges(n, edges).unwrap();
    IndexBuilder::new()
        .bit_parallel_roots(bp_roots)
        .build(&g)
        .unwrap()
}

/// Answer-stream equality: the acceptance criterion's "byte-equal to a
/// from-scratch rebuild", rendered as the exact text `pll query` would
/// print for every pair.
fn assert_answers_match(dyn_idx: &DynamicIndex, rebuilt: &pruned_landmark_labeling::pll::PllIndex) {
    let n = dyn_idx.num_vertices();
    let mut online = String::new();
    let mut offline = String::new();
    for s in 0..n as u32 {
        for t in 0..n as u32 {
            use std::fmt::Write;
            match dyn_idx.distance(s, t) {
                Some(d) => writeln!(online, "{s}\t{t}\t{d}").unwrap(),
                None => writeln!(online, "{s}\t{t}\tunreachable").unwrap(),
            }
            match rebuilt.distance(s, t) {
                Some(d) => writeln!(offline, "{s}\t{t}\t{d}").unwrap(),
                None => writeln!(offline, "{s}\t{t}\tunreachable").unwrap(),
            }
        }
    }
    assert_eq!(online, offline, "answer streams diverge");
}

/// Builds the base over `keep` edges, applies the rest in `batch`-sized
/// chunks through both the owned and the zero-copy backend, comparing
/// against a rebuild after every chunk.
fn drive(full: &CsrGraph, keep: usize, batch: usize, bp_roots: usize) {
    let n = full.num_vertices();
    let all: Vec<Edge> = full.edges().collect();
    assert!(keep <= all.len(), "test misconfigured");
    let base_graph = CsrGraph::from_edges(n, &all[..keep]).unwrap();
    let base_idx = IndexBuilder::new()
        .bit_parallel_roots(bp_roots)
        .build(&base_graph)
        .unwrap();
    // Owned backend and zero-copy v2 view of the very same index.
    let mut buf = Vec::new();
    v2::save_v2_index(&base_idx, &mut buf).unwrap();
    let view = v2::open_v2_bytes(Arc::new(AlignedBytes::from_bytes(&buf))).unwrap();
    assert!(view.is_zero_copy());
    for base in [Arc::new(AnyIndex::Undirected(base_idx)), Arc::new(view)] {
        let mut dyn_idx = DynamicIndex::new(base, &base_graph).unwrap();
        let mut applied = all[..keep].to_vec();
        for chunk in all[keep..].chunks(batch.max(1)) {
            dyn_idx.apply(chunk).unwrap();
            applied.extend_from_slice(chunk);
            let rebuilt = rebuild(n, &applied, bp_roots);
            assert_answers_match(&dyn_idx, &rebuilt);
        }
    }
}

#[test]
fn incremental_equals_rebuild_er() {
    let full = gen::erdos_renyi_gnm(70, 180, 21).unwrap();
    drive(&full, 120, 10, 0);
    drive(&full, 120, 10, 4);
}

#[test]
fn incremental_equals_rebuild_ba() {
    let full = gen::barabasi_albert(80, 3, 17).unwrap();
    let m = full.num_edges();
    drive(&full, m * 2 / 3, 7, 2);
}

#[test]
fn incremental_equals_rebuild_sparse_to_dense_grid() {
    // A grid growing diagonal shortcuts: many distance changes per edge.
    let full = {
        let grid = gen::grid(6, 6).unwrap();
        let mut edges: Vec<Edge> = grid.edges().collect();
        for r in 0..5u32 {
            for c in 0..5u32 {
                edges.push((r * 6 + c, (r + 1) * 6 + c + 1));
            }
        }
        CsrGraph::from_edges(36, &edges).unwrap()
    };
    let keep = gen::grid(6, 6).unwrap().num_edges();
    drive(&full, keep, 4, 1);
}

#[test]
fn component_merges_stay_exact() {
    // Three separate clusters bridged one edge at a time.
    let mut edges: Vec<Edge> = Vec::new();
    for c in 0..3u32 {
        let base = c * 10;
        for i in 0..9 {
            edges.push((base + i, base + i + 1));
            if i % 3 == 0 {
                edges.push((base + i, base + (i + 4) % 10));
            }
        }
    }
    let keep = edges.len();
    edges.push((5, 15));
    edges.push((17, 25));
    edges.push((3, 29));
    let full = CsrGraph::from_edges(30, &edges).unwrap();
    drive(&full, keep, 1, 0);
    drive(&full, keep, 1, 8);
}

#[test]
fn flatten_roundtrips_through_v2_and_matches_rebuild() {
    let full = gen::erdos_renyi_gnm(60, 160, 33).unwrap();
    let all: Vec<Edge> = full.edges().collect();
    let keep = 100;
    let base_graph = CsrGraph::from_edges(60, &all[..keep]).unwrap();
    let base = IndexBuilder::new()
        .bit_parallel_roots(3)
        .build(&base_graph)
        .unwrap();
    let mut dyn_idx = DynamicIndex::new(Arc::new(AnyIndex::Undirected(base)), &base_graph).unwrap();
    dyn_idx.apply(&all[keep..]).unwrap();

    // Flatten with the parallel scatter engaged (threads = 0 → auto).
    let flat = dyn_idx.flatten(0).unwrap();
    let mut buf = Vec::new();
    v2::save_v2_index(&flat, &mut buf).unwrap();
    let reopened = v2::open_v2_bytes(Arc::new(AlignedBytes::from_bytes(&buf))).unwrap();
    let rebuilt = rebuild(60, &all, 3);
    for s in 0..60u32 {
        for t in 0..60u32 {
            let expect = rebuilt.distance(s, t).map(u64::from);
            assert_eq!(reopened.distance(s, t), expect, "reopened pair ({s}, {t})");
            assert_eq!(
                dyn_idx.distance(s, t).map(u64::from),
                expect,
                "dynamic pair ({s}, {t})"
            );
        }
    }
    // And the flattened file is a valid base for further updates.
    let updated_graph = CsrGraph::from_edges(60, &all).unwrap();
    let next = DynamicIndex::new(Arc::new(reopened), &updated_graph).unwrap();
    assert_eq!(next.epoch(), 0);
    assert_eq!(next.delta_entries(), 0);
}

#[test]
fn connected_tracks_insertions() {
    let g = CsrGraph::from_edges(10, &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (8, 9)]).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
    let mut dyn_idx = DynamicIndex::new(Arc::new(AnyIndex::Undirected(idx)), &g).unwrap();
    assert!(!dyn_idx.connected(0, 9));
    assert!(!dyn_idx.connected(2, 3));
    dyn_idx.apply(&[(2, 3)]).unwrap();
    assert!(dyn_idx.connected(0, 4));
    assert!(!dyn_idx.connected(0, 9));
    dyn_idx.apply(&[(4, 5), (7, 8)]).unwrap();
    assert!(dyn_idx.connected(0, 9));
    assert_eq!(dyn_idx.epoch(), 2);
}
