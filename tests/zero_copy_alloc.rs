//! Proof of the zero-copy acceptance criterion: opening a v2 index
//! performs **no per-label allocations** — the whole open is one buffer
//! plus pointer-cast sections — and querying the view allocates nothing
//! at all.
//!
//! This test lives alone in its own integration-test binary because the
//! proof uses a process-global counting allocator: any concurrently
//! running test would pollute the counter.

use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::pll::{v2, AlignedBytes, IndexBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: every method forwards verbatim to `System` with the caller's
// own layout/pointer arguments, so `System`'s contract is upheld exactly
// when the caller's is; the only extra work is an atomic counter bump,
// which never allocates (a re-entrant allocation here would deadlock the
// allocator).
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY (each method below): same forwarding argument as the impl.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller guarantees `layout` is valid; forwarded as-is.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator, which is `System` plus
        // a counter, so it satisfies `System::dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same forwarding argument as `dealloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same forwarding argument as `alloc`.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    let result = f();
    (ALLOC_CALLS.load(Ordering::SeqCst) - before, result)
}

#[test]
fn opening_a_v2_index_performs_no_per_label_allocations() {
    // Two indices two orders of magnitude apart in label count: if the
    // open path allocated per label (or per vertex), the counts below
    // could not both be zero.
    for n in [64usize, 4096] {
        let g = gen::barabasi_albert(n, 3, 13).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        let mut bytes = Vec::new();
        v2::save_v2_index(&idx, &mut bytes).unwrap();
        let buf = Arc::new(AlignedBytes::from_bytes(&bytes));

        // Warm up once (lazy stdlib initialisation must not skew the
        // measured open).
        drop(v2::open_v2_bytes(Arc::clone(&buf)).unwrap());

        let (opens_allocs, view) =
            allocations_during(|| v2::open_v2_bytes(Arc::clone(&buf)).expect("open v2 buffer"));
        assert_eq!(
            opens_allocs, 0,
            "zero-copy open of the n={n} index allocated {opens_allocs} times \
             (expected: one buffer, pointer-cast sections, nothing else)"
        );

        // Queries over the view are allocation-free too.
        let (query_allocs, checksum) = allocations_during(|| {
            let mut acc = 0u64;
            for s in (0..n as u32).step_by(7) {
                for t in (0..n as u32).step_by(11) {
                    if let Some(d) = view.distance(s, t) {
                        acc = acc.wrapping_add(d);
                    }
                }
            }
            acc
        });
        assert_eq!(query_allocs, 0, "querying the n={n} view allocated");
        // Sanity: the view really answered like the owned index.
        let mut expect = 0u64;
        for s in (0..n as u32).step_by(7) {
            for t in (0..n as u32).step_by(11) {
                if let Some(d) = idx.distance(s, t) {
                    expect = expect.wrapping_add(u64::from(d));
                }
            }
        }
        assert_eq!(checksum, expect);
    }
}
