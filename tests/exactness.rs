//! Cross-crate exactness: the PLL index must agree with BFS ground truth
//! on every generator family the workspace ships.

use pruned_landmark_labeling::graph::traversal::bfs::BfsEngine;
use pruned_landmark_labeling::graph::{gen, CsrGraph};
use pruned_landmark_labeling::pll::{verify, IndexBuilder, OrderingStrategy};

fn check(g: &CsrGraph, t: usize) {
    let idx = IndexBuilder::new()
        .bit_parallel_roots(t)
        .build(g)
        .expect("construction");
    verify::verify_exhaustive(g, &idx).unwrap_or_else(|m| {
        panic!(
            "mismatch on pair ({}, {}): expected {:?}, got {:?}",
            m.s, m.t, m.expected, m.got
        )
    });
}

#[test]
fn exact_on_every_generator_family() {
    check(&gen::path(40).unwrap(), 0);
    check(&gen::cycle(31).unwrap(), 2);
    check(&gen::grid(7, 8).unwrap(), 4);
    check(&gen::torus(5, 6).unwrap(), 4);
    check(&gen::star(33).unwrap(), 1);
    check(&gen::complete(12).unwrap(), 2);
    check(&gen::balanced_tree(3, 3).unwrap(), 2);
    check(&gen::caterpillar(12, 3).unwrap(), 0);
    check(&gen::random_tree(80, 3).unwrap(), 4);
    check(&gen::erdos_renyi_gnm(90, 250, 5).unwrap(), 8);
    check(&gen::erdos_renyi_gnp(80, 0.06, 6).unwrap(), 8);
    check(&gen::barabasi_albert(100, 3, 7).unwrap(), 8);
    check(&gen::watts_strogatz(80, 4, 0.2, 8).unwrap(), 4);
    check(&gen::chung_lu(100, 2.4, 6.0, 9).unwrap(), 8);
    check(&gen::copying_model(100, 4, 0.8, 10).unwrap(), 8);
    check(&gen::forest_fire(100, 0.4, 12).unwrap(), 8);
    check(&gen::rmat(7, 4, gen::RmatParams::GRAPH500, 11).unwrap(), 8);
}

#[test]
fn exact_on_dataset_standins_sampled() {
    for spec in pll_datasets::DATASETS.iter() {
        // Aggressive scale: every dataset at ~1-2k vertices.
        let g = spec.generate(4096).expect("generation");
        let idx = IndexBuilder::new()
            .bit_parallel_roots(spec.bp_roots.min(8))
            .build(&g)
            .expect("construction");
        verify::verify_sampled(&g, &idx, 300, spec.seed)
            .unwrap_or_else(|m| panic!("{}: mismatch {m:?}", spec.name));
    }
}

#[test]
fn all_strategies_and_bp_settings_agree() {
    let g = gen::chung_lu(150, 2.3, 8.0, 1).unwrap();
    let mut engine = BfsEngine::new(150);
    let truth: Vec<Vec<u32>> = (0..150u32).map(|s| engine.run(&g, s).to_vec()).collect();
    for strategy in [
        OrderingStrategy::Degree,
        OrderingStrategy::Random,
        OrderingStrategy::Closeness { samples: 8 },
    ] {
        for t in [0usize, 1, 16, 64] {
            let idx = IndexBuilder::new()
                .ordering(strategy.clone())
                .bit_parallel_roots(t)
                .seed(99)
                .build(&g)
                .expect("construction");
            for s in (0..150u32).step_by(7) {
                for u in (0..150u32).step_by(5) {
                    let expect = (truth[s as usize][u as usize] != u32::MAX)
                        .then_some(truth[s as usize][u as usize]);
                    assert_eq!(
                        idx.distance(s, u),
                        expect,
                        "strategy {:?}, t={t}, pair ({s}, {u})",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn isolated_vertices_and_multiple_components() {
    let g = CsrGraph::from_edges(12, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (8, 9)]).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(3).build(&g).unwrap();
    // Within components.
    assert_eq!(idx.distance(0, 2), Some(1));
    assert_eq!(idx.distance(4, 6), Some(2));
    assert_eq!(idx.distance(8, 9), Some(1));
    // Across components and isolated vertices.
    assert_eq!(idx.distance(0, 4), None);
    assert_eq!(idx.distance(3, 0), None);
    assert_eq!(idx.distance(3, 3), Some(0));
    assert_eq!(idx.distance(10, 11), None);
}
