//! The paper's theorems, checked empirically end-to-end.

use pruned_landmark_labeling::baselines::{
    CanonicalHubLabeling, LandmarkIndex, LandmarkSelection, NaiveLabeling,
};
use pruned_landmark_labeling::graph::{gen, CsrGraph, Vertex};
use pruned_landmark_labeling::pll::{
    order::compute_order, BuildObserver, IndexBuilder, OrderingStrategy, PartialIndex, RootStats,
};
use pruned_landmark_labeling::treedecomp::{centroid_order, min_degree_order, TreeDecomposition};

/// Theorem 4.1: for every prefix `k`, `Query(s, t, L'_k) = Query(s, t, L_k)`
/// — the pruned labels answer exactly what the naive (unpruned) labels
/// answer after every BFS, not just at the end.
#[test]
fn theorem_4_1_prefix_equivalence() {
    struct PrefixChecker<'a> {
        naive: &'a NaiveLabeling,
        pairs: Vec<(Vertex, Vertex)>,
    }
    impl BuildObserver for PrefixChecker<'_> {
        fn after_root(&mut self, k: usize, _stats: &RootStats, view: &PartialIndex<'_>) {
            for &(s, t) in &self.pairs {
                assert_eq!(
                    view.distance(s, t),
                    self.naive.query_at(k, s, t).or((s == t).then_some(0)),
                    "prefix k={k}, pair ({s}, {t})"
                );
            }
        }
    }

    for seed in [1u64, 2, 3] {
        let g = gen::erdos_renyi_gnm(60, 140, seed).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let naive = NaiveLabeling::build(&g, &order);
        let pairs: Vec<(Vertex, Vertex)> = (0..60u32)
            .flat_map(|s| [(s, (s * 7 + 3) % 60), (s, (s * 13 + 1) % 60)])
            .collect();
        let mut checker = PrefixChecker {
            naive: &naive,
            pairs,
        };
        IndexBuilder::new()
            .ordering(OrderingStrategy::Custom(order.clone()))
            .bit_parallel_roots(0)
            .build_with_observer(&g, &mut checker)
            .unwrap();
    }
}

/// Theorem 4.2 (minimality): removing ANY label entry breaks some query.
/// Checked by locating, for every entry `(w, d) ∈ L(v)`, a witness pair
/// whose answer changes without the entry — the theorem's proof shows the
/// pair `(v, w)` itself suffices.
#[test]
fn theorem_4_2_minimality() {
    let g = gen::erdos_renyi_gnm(40, 90, 11).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    let labels = idx.labels();
    for v_rank in 0..40u32 {
        let (ranks, dists) = labels.label(v_rank);
        for (i, &w_rank) in ranks[..ranks.len() - 1].iter().enumerate() {
            // Query (v, w) skipping entry i of L(v): the remaining common
            // hubs must NOT realise the exact distance d(v, w) = dists[i]
            // (except through w's own trivial entry matching a different
            // position).
            let exact = dists[i] as u32;
            let (wr, wd) = labels.label(w_rank);
            let mut best = u32::MAX;
            for (j, &rv) in ranks[..ranks.len() - 1].iter().enumerate() {
                if j == i {
                    continue;
                }
                if let Ok(p) = wr[..wr.len() - 1].binary_search(&rv) {
                    best = best.min(dists[j] as u32 + wd[p] as u32);
                }
            }
            assert!(
                best > exact,
                "entry (hub {w_rank}, d {exact}) of rank {v_rank} is redundant: \
                 remaining hubs still answer {best}"
            );
        }
    }
}

/// Theorem 4.3 (sanity direction): the average label size stays within a
/// small constant of `k + εn` where `1 − ε` is the landmark coverage with
/// `k` landmarks.
#[test]
fn theorem_4_3_label_size_vs_landmark_coverage() {
    let g = gen::chung_lu(2_000, 2.3, 10.0, 5).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    let ln = idx.avg_label_size();
    let k = 64usize;
    let lm = LandmarkIndex::build(&g, k, LandmarkSelection::Degree, 0);
    let eval = lm.evaluate(&g, 5_000, 3);
    let eps = 1.0 - eval.exact_fraction();
    let bound = k as f64 + eps * g.num_vertices() as f64;
    assert!(
        ln <= 8.0 * bound,
        "avg label {ln:.1} should be O(k + eps*n) = O({bound:.1})"
    );
}

/// Theorem 4.4: with the centroid-decomposition order, label sizes on
/// low-treewidth graphs stay within a small constant of `w · log2 n`.
#[test]
fn theorem_4_4_centroid_order_on_low_treewidth_graphs() {
    let cases: Vec<(CsrGraph, &str)> = vec![
        (gen::path(200).unwrap(), "path"),
        (gen::balanced_tree(2, 7).unwrap(), "tree"),
        (gen::cycle(128).unwrap(), "cycle"),
        (gen::grid(8, 8).unwrap(), "grid"),
    ];
    for (g, name) in cases {
        let elim = min_degree_order(&g);
        let td = TreeDecomposition::from_elimination(&elim);
        td.validate(&g).unwrap();
        let order = centroid_order(&td);
        let idx = IndexBuilder::new()
            .ordering(OrderingStrategy::Custom(order))
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        let n = g.num_vertices() as f64;
        let bound = elim.width.max(1) as f64 * n.log2();
        assert!(
            idx.avg_label_size() <= 3.0 * bound,
            "{name}: avg label {:.1} exceeds 3 * w log n = {:.1}",
            idx.avg_label_size(),
            3.0 * bound
        );
        pruned_landmark_labeling::pll::verify::verify_exhaustive(&g, &idx).unwrap();
    }
}

/// Cross-validation of Theorem 4.2's canonical-labeling view: the pruned
/// construction and the unpruned-with-filtering construction produce the
/// SAME labels for the same order, on every network class.
#[test]
fn canonical_equivalence_across_network_classes() {
    for g in [
        gen::chung_lu(150, 2.3, 8.0, 1).unwrap(),
        gen::copying_model(150, 4, 0.8, 2).unwrap(),
        gen::barabasi_albert(150, 3, 3).unwrap(),
        gen::grid(12, 12).unwrap(),
    ] {
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let canonical = CanonicalHubLabeling::build(&g, idx.order());
        let n = g.num_vertices() as u32;
        let mut total_pll = 0usize;
        for v in 0..n {
            let (ranks, dists) = idx.labels().label(idx.rank_of(v));
            let pll: Vec<(u32, u32)> = ranks[..ranks.len() - 1]
                .iter()
                .zip(dists.iter())
                .map(|(&r, &d)| (r, d as u32))
                .collect();
            total_pll += pll.len();
            assert_eq!(canonical.label_of(v), &pll[..], "vertex {v}");
        }
        assert_eq!(total_pll, canonical.total_entries());
    }
}
