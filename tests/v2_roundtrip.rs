//! v2 round-trip coverage across all four index variants: build → write
//! v2 → zero-copy open → queries **byte-identical** to the owned
//! in-memory index, plus v1 compatibility and cross-generation
//! agreement. (The per-label-allocation proof lives in
//! `tests/zero_copy_alloc.rs`, alone in its binary so a global
//! allocation counter isn't polluted by parallel tests.)

use pll_bench::{derive_digraph, derive_weighted, derive_weighted_digraph};
use pruned_landmark_labeling::graph::gen;
use pruned_landmark_labeling::pll::{
    serialize, v2, AlignedBytes, AnyIndex, DirectedIndexBuilder, IndexBuilder,
    WeightedDirectedIndexBuilder, WeightedIndexBuilder,
};
use std::sync::Arc;

/// Fixed pair set the acceptance criterion quantifies over.
fn fixed_pairs(n: u32) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for i in 0..n {
        pairs.push((i, (i * 7 + 3) % n));
        pairs.push(((i * 13 + 1) % n, (i * 31 + 17) % n));
        pairs.push((i, i)); // self pairs
    }
    pairs
}

/// Encodes a distance sequence as raw little-endian bytes, so the
/// owned-vs-view comparison is literally byte-for-byte.
fn answer_bytes(answers: impl Iterator<Item = Option<u64>>) -> Vec<u8> {
    let mut out = Vec::new();
    for a in answers {
        out.extend_from_slice(&a.unwrap_or(u64::MAX).to_le_bytes());
    }
    out
}

fn open_view(bytes: &[u8]) -> AnyIndex {
    v2::open_v2_bytes(Arc::new(AlignedBytes::from_bytes(bytes))).expect("open v2 buffer zero-copy")
}

#[test]
fn undirected_owned_and_view_answers_are_byte_identical() {
    for (store_parents, bp_roots) in [(false, 4), (true, 0)] {
        let g = gen::barabasi_albert(300, 3, 11).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(bp_roots)
            .store_parents(store_parents)
            .build(&g)
            .unwrap();
        let mut buf = Vec::new();
        v2::save_v2_index(&idx, &mut buf).unwrap();
        let view = open_view(&buf);
        assert!(view.is_zero_copy());
        let pairs = fixed_pairs(300);
        let owned_bytes = answer_bytes(
            pairs
                .iter()
                .map(|&(s, t)| idx.distance(s, t).map(u64::from)),
        );
        let view_bytes = answer_bytes(pairs.iter().map(|&(s, t)| view.distance(s, t)));
        assert_eq!(
            owned_bytes, view_bytes,
            "undirected (parents={store_parents}) view answers diverge"
        );
        // The persisted stats match what the builder reported.
        assert_eq!(view.stats().total_labeled, idx.stats().total_labeled);
        assert_eq!(view.stats().threads, idx.stats().threads);
        assert!(view.stats().total_seconds() > 0.0);
    }
}

#[test]
fn directed_owned_and_view_answers_are_byte_identical() {
    let g = gen::barabasi_albert(250, 3, 5).unwrap();
    let dg = derive_digraph(&g, 77);
    let idx = DirectedIndexBuilder::new().build(&dg).unwrap();
    let mut buf = Vec::new();
    v2::save_v2_directed_index(&idx, &mut buf).unwrap();
    let view = open_view(&buf);
    let pairs = fixed_pairs(250);
    assert_eq!(
        answer_bytes(
            pairs
                .iter()
                .map(|&(s, t)| idx.distance(s, t).map(u64::from))
        ),
        answer_bytes(pairs.iter().map(|&(s, t)| view.distance(s, t))),
        "directed view answers diverge"
    );
}

#[test]
fn weighted_owned_and_view_answers_are_byte_identical() {
    let g = gen::erdos_renyi_gnm(200, 600, 9).unwrap();
    let wg = derive_weighted(&g, 21, 9);
    let idx = WeightedIndexBuilder::new().build(&wg).unwrap();
    let mut buf = Vec::new();
    v2::save_v2_weighted_index(&idx, &mut buf).unwrap();
    let view = open_view(&buf);
    let pairs = fixed_pairs(200);
    assert_eq!(
        answer_bytes(pairs.iter().map(|&(s, t)| idx.distance(s, t))),
        answer_bytes(pairs.iter().map(|&(s, t)| view.distance(s, t))),
        "weighted view answers diverge"
    );
}

#[test]
fn weighted_directed_owned_and_view_answers_are_byte_identical() {
    let g = gen::erdos_renyi_gnm(150, 450, 3).unwrap();
    let wdg = derive_weighted_digraph(&g, 33, 9);
    let idx = WeightedDirectedIndexBuilder::new().build(&wdg).unwrap();
    let mut buf = Vec::new();
    v2::save_v2_weighted_directed_index(&idx, &mut buf).unwrap();
    let view = open_view(&buf);
    let pairs = fixed_pairs(150);
    assert_eq!(
        answer_bytes(pairs.iter().map(|&(s, t)| idx.distance(s, t))),
        answer_bytes(pairs.iter().map(|&(s, t)| view.distance(s, t))),
        "weighted directed view answers diverge"
    );
}

#[test]
fn v1_files_still_load_and_agree_with_v2() {
    // The v1 readers stay supported: the same index written in both
    // generations must answer identically through AnyIndex.
    let dir = std::env::temp_dir();
    let pid = std::process::id();

    let g = gen::barabasi_albert(150, 3, 4).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(3).build(&g).unwrap();
    let v1_path = dir.join(format!("pll_rt_u_v1_{pid}.idx"));
    let v2_path = dir.join(format!("pll_rt_u_v2_{pid}.idx"));
    serialize::save_index(&idx, std::fs::File::create(&v1_path).unwrap()).unwrap();
    v2::save_v2_index(&idx, std::fs::File::create(&v2_path).unwrap()).unwrap();
    let v1 = AnyIndex::open(&v1_path).unwrap();
    let v2i = AnyIndex::open(&v2_path).unwrap();
    assert_eq!(v1.format_version(), 1);
    assert_eq!(v2i.format_version(), 2);
    let pairs = fixed_pairs(150);
    assert_eq!(
        answer_bytes(pairs.iter().map(|&(s, t)| v1.distance(s, t))),
        answer_bytes(pairs.iter().map(|&(s, t)| v2i.distance(s, t))),
    );
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();

    let wg = derive_weighted(&g, 8, 7);
    let widx = WeightedIndexBuilder::new().build(&wg).unwrap();
    let v1_path = dir.join(format!("pll_rt_w_v1_{pid}.idx"));
    let v2_path = dir.join(format!("pll_rt_w_v2_{pid}.idx"));
    serialize::save_weighted_index(&widx, std::fs::File::create(&v1_path).unwrap()).unwrap();
    v2::save_v2_weighted_index(&widx, std::fs::File::create(&v2_path).unwrap()).unwrap();
    let v1 = AnyIndex::open(&v1_path).unwrap();
    let v2i = AnyIndex::open(&v2_path).unwrap();
    assert_eq!(
        answer_bytes(pairs.iter().map(|&(s, t)| v1.distance(s, t))),
        answer_bytes(pairs.iter().map(|&(s, t)| v2i.distance(s, t))),
    );
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
}

#[test]
fn magic_sniffing_distinguishes_all_eight_magics() {
    use pruned_landmark_labeling::pll::{FormatVersion, IndexFormat};
    for (magic, format, version) in [
        (b"PLLIDX01", IndexFormat::Undirected, FormatVersion::V1),
        (b"PLLDIDX1", IndexFormat::Directed, FormatVersion::V1),
        (b"PLLWIDX1", IndexFormat::Weighted, FormatVersion::V1),
        (
            b"PLLWDID1",
            IndexFormat::WeightedDirected,
            FormatVersion::V1,
        ),
        (b"PLLIDX02", IndexFormat::Undirected, FormatVersion::V2),
        (b"PLLDIDX2", IndexFormat::Directed, FormatVersion::V2),
        (b"PLLWIDX2", IndexFormat::Weighted, FormatVersion::V2),
        (
            b"PLLWDID2",
            IndexFormat::WeightedDirected,
            FormatVersion::V2,
        ),
    ] {
        let (f, v) = serialize::detect_format_versioned(magic).unwrap();
        assert_eq!((f, v), (format, version), "magic {magic:?}");
        assert_eq!(serialize::detect_format(magic).unwrap(), format);
    }
    assert!(serialize::detect_format(b"PLLIDX03").is_err());
}
