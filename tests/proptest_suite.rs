//! Property-based tests over randomly generated graphs (proptest drives
//! the shape, sizes and seeds; BFS/Dijkstra provide ground truth).

use proptest::prelude::*;
use pruned_landmark_labeling::graph::traversal::{bfs, dijkstra};
use pruned_landmark_labeling::graph::wgraph::WeightedGraph;
use pruned_landmark_labeling::graph::{gen, CsrGraph, GraphBuilder};
use pruned_landmark_labeling::pll::{
    paths, serialize, types::RANK_SENTINEL, IndexBuilder, OrderingStrategy,
};

/// Strategy: an arbitrary simple graph from a raw edge list.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            b.extend_edges(edges);
            b.build().expect("builder normalises raw edges")
        })
    })
}

/// Strategy: one of the named generator families with random parameters.
fn arb_model_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (20usize..120, 1usize..4, any::<u64>())
            .prop_map(|(n, m, s)| gen::barabasi_albert(n, m, s).unwrap()),
        (20usize..120, 40usize..200, any::<u64>()).prop_map(|(n, m, s)| gen::erdos_renyi_gnm(
            n,
            m.min(n * (n - 1) / 2),
            s
        )
        .unwrap()),
        (20usize..120, any::<u64>()).prop_map(|(n, s)| gen::copying_model(n, 3, 0.8, s).unwrap()),
        (3usize..12, 3usize..12).prop_map(|(r, c)| gen::grid(r, c).unwrap()),
        (20usize..200, any::<u64>()).prop_map(|(n, s)| gen::random_tree(n, s).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The index answers exactly like BFS on arbitrary simple graphs.
    #[test]
    fn index_matches_bfs(g in arb_graph(60, 150), t in 0usize..8, seed in any::<u64>()) {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(t)
            .seed(seed)
            .build(&g)
            .unwrap();
        let n = g.num_vertices();
        let mut engine = bfs::BfsEngine::new(n);
        for s in 0..n as u32 {
            let d = engine.run(&g, s).to_vec();
            for u in 0..n as u32 {
                let expect = (d[u as usize] != u32::MAX).then_some(d[u as usize]);
                prop_assert_eq!(idx.distance(s, u), expect);
            }
        }
    }

    /// Same, over the structured generator families with Random ordering.
    #[test]
    fn index_matches_bfs_on_models(g in arb_model_graph(), seed in any::<u64>()) {
        let idx = IndexBuilder::new()
            .ordering(OrderingStrategy::Random)
            .seed(seed)
            .bit_parallel_roots(2)
            .build(&g)
            .unwrap();
        let n = g.num_vertices();
        let mut engine = bfs::BfsEngine::new(n);
        for s in (0..n as u32).step_by(5) {
            let d = engine.run(&g, s).to_vec();
            for u in (0..n as u32).step_by(3) {
                let expect = (d[u as usize] != u32::MAX).then_some(d[u as usize]);
                prop_assert_eq!(idx.distance(s, u), expect);
            }
        }
    }

    /// Structural invariants: labels strictly sorted by rank, sentinel
    /// terminated, self-hub distance zero.
    #[test]
    fn label_invariants(g in arb_graph(60, 150)) {
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        for r in 0..g.num_vertices() as u32 {
            let (ranks, dists) = idx.labels().label(r);
            prop_assert_eq!(*ranks.last().unwrap(), RANK_SENTINEL);
            let body = &ranks[..ranks.len() - 1];
            prop_assert!(body.windows(2).all(|w| w[0] < w[1]));
            // Every hub rank is at most this vertex's rank (hubs are
            // processed earlier or are the vertex itself).
            prop_assert!(body.iter().all(|&h| h <= r));
            if let Ok(i) = body.binary_search(&r) {
                prop_assert_eq!(dists[i], 0);
            }
        }
    }

    /// Serialisation round-trips bit-exactly on query behaviour.
    #[test]
    fn serialization_roundtrip(g in arb_graph(50, 120), t in 0usize..4) {
        let idx = IndexBuilder::new().bit_parallel_roots(t).build(&g).unwrap();
        let mut buf = Vec::new();
        serialize::save_index(&idx, &mut buf).unwrap();
        let loaded = serialize::load_index(buf.as_slice()).unwrap();
        for s in 0..g.num_vertices() as u32 {
            for u in (0..g.num_vertices() as u32).step_by(3) {
                prop_assert_eq!(idx.distance(s, u), loaded.distance(s, u));
            }
        }
    }

    /// Path reconstruction yields adjacent-step paths of exactly the
    /// reported length.
    #[test]
    fn path_reconstruction_is_valid(g in arb_graph(40, 100)) {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let n = g.num_vertices() as u32;
        for s in 0..n {
            for u in (0..n).step_by(7) {
                match paths::shortest_path(&idx, s, u).unwrap() {
                    Some(p) => {
                        prop_assert_eq!(p.len() as u32, idx.distance(s, u).unwrap() + 1);
                        prop_assert_eq!(p[0], s);
                        prop_assert_eq!(*p.last().unwrap(), u);
                        for w in p.windows(2) {
                            prop_assert!(g.has_edge(w[0], w[1]));
                        }
                    }
                    None => prop_assert_eq!(idx.distance(s, u), None),
                }
            }
        }
    }

    /// Weighted index agrees with Dijkstra on random weighted graphs.
    #[test]
    fn weighted_index_matches_dijkstra(
        g in arb_graph(40, 100),
        weights_seed in any::<u64>(),
    ) {
        use pruned_landmark_labeling::graph::Xoshiro256pp;
        use pruned_landmark_labeling::pll::WeightedIndexBuilder;
        let mut rng = Xoshiro256pp::seed_from_u64(weights_seed);
        let edges: Vec<(u32, u32, u32)> = g
            .edges()
            .map(|(u, v)| (u, v, rng.next_below(30) as u32 + 1))
            .collect();
        let w = WeightedGraph::from_edges(g.num_vertices(), &edges).unwrap();
        let idx = WeightedIndexBuilder::new().build(&w).unwrap();
        let mut engine = dijkstra::DijkstraEngine::new(w.num_vertices());
        for s in (0..w.num_vertices() as u32).step_by(3) {
            for u in (0..w.num_vertices() as u32).step_by(5) {
                prop_assert_eq!(idx.distance(s, u), engine.distance(&w, s, u));
            }
        }
    }

    /// Bit-parallel invariants: unreached vertices carry empty masks, the
    /// root's own entry has distance 0 and empty masks (its neighbours are
    /// all in S⁺¹), and the per-root BP bound never undercuts the true
    /// distance. (Note: `set_minus1 & set_zero` may overlap — the S⁰
    /// recurrence of §5.2 overapproximates harmlessly; see `BpEntry`.)
    #[test]
    fn bp_entry_invariants(g in arb_graph(60, 150), t in 1usize..6) {
        use pruned_landmark_labeling::pll::types::INF8;
        let idx = IndexBuilder::new().bit_parallel_roots(t).build(&g).unwrap();
        let bp = idx.bit_parallel();
        for v in 0..g.num_vertices() as u32 {
            for e in bp.entries_of(v) {
                if e.dist == INF8 {
                    prop_assert_eq!(e.set_minus1, 0);
                    prop_assert_eq!(e.set_zero, 0);
                }
            }
        }
        for (i, &root) in bp.roots().iter().enumerate() {
            if root != u32::MAX {
                let e = bp.entry(root, i);
                prop_assert_eq!(e.dist, 0);
                prop_assert_eq!(e.set_minus1, 0);
                prop_assert_eq!(e.set_zero, 0);
            }
        }
        // The BP query alone is an upper bound on the true distance.
        let mut engine = bfs::BfsEngine::new(g.num_vertices());
        for s in (0..g.num_vertices() as u32).step_by(5) {
            let d = engine.run(&g, s).to_vec();
            for u in (0..g.num_vertices() as u32).step_by(3) {
                let (rs, ru) = (idx.rank_of(s), idx.rank_of(u));
                let bound = bp.query(rs, ru);
                if bound != u32::MAX {
                    prop_assert!(bound >= d[u as usize], "BP bound under true distance");
                }
            }
        }
    }

    /// Deserialising arbitrary bytes must fail gracefully, never panic.
    #[test]
    fn serializer_rejects_garbage(mut bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // Unprefixed garbage.
        prop_assert!(serialize::load_index(bytes.as_slice()).is_err());
        // Garbage behind a valid magic: still an error, never a panic.
        let mut with_magic = b"PLLIDX01".to_vec();
        with_magic.append(&mut bytes);
        let _ = serialize::load_index(with_magic.as_slice());
    }

    /// Truncating a valid serialised index at ANY byte boundary must fail
    /// gracefully (or, for payload-preserving cuts, keep answers intact).
    #[test]
    fn serializer_survives_truncation(g in arb_graph(30, 60), cut in 0usize..200) {
        let idx = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
        let mut buf = Vec::new();
        serialize::save_index(&idx, &mut buf).unwrap();
        let cut = cut.min(buf.len());
        let truncated = &buf[..buf.len() - cut];
        match serialize::load_index(truncated) {
            Ok(loaded) => {
                prop_assert_eq!(cut, 0, "only the untruncated buffer may load");
                prop_assert_eq!(loaded.distance(0, 1), idx.distance(0, 1));
            }
            Err(_) => prop_assert!(cut > 0),
        }
    }

    /// The batch-parallel build answers exactly like BFS on arbitrary
    /// simple graphs, and its labels equal the sequential build's.
    #[test]
    fn parallel_index_matches_bfs(
        g in arb_graph(60, 150),
        t in 0usize..6,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let par = IndexBuilder::new()
            .bit_parallel_roots(t)
            .seed(seed)
            .threads(threads)
            .build(&g)
            .unwrap();
        let seq = IndexBuilder::new()
            .bit_parallel_roots(t)
            .seed(seed)
            .build(&g)
            .unwrap();
        prop_assert_eq!(seq.labels(), par.labels());
        let n = g.num_vertices();
        let mut engine = bfs::BfsEngine::new(n);
        for s in 0..n as u32 {
            let d = engine.run(&g, s).to_vec();
            for u in 0..n as u32 {
                let expect = (d[u as usize] != u32::MAX).then_some(d[u as usize]);
                prop_assert_eq!(par.distance(s, u), expect);
            }
        }
    }

    /// The batch-parallel directed build serializes byte-identically to
    /// the sequential build on arbitrary digraphs (derived from arbitrary
    /// simple graphs by seeded arc orientation).
    #[test]
    fn parallel_directed_matches_sequential(
        g in arb_graph(60, 150),
        orient_seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        use pruned_landmark_labeling::pll::DirectedIndexBuilder;
        let dg = pll_bench::derive_digraph(&g, orient_seed);
        let seq = DirectedIndexBuilder::new().build(&dg).unwrap();
        let par = DirectedIndexBuilder::new().threads(threads).build(&dg).unwrap();
        prop_assert_eq!(seq.labels_in(), par.labels_in());
        prop_assert_eq!(seq.labels_out(), par.labels_out());
        let mut a = Vec::new();
        let mut b = Vec::new();
        serialize::save_directed_index(&seq, &mut a).unwrap();
        serialize::save_directed_index(&par, &mut b).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The batch-parallel weighted build serializes byte-identically to
    /// the sequential build, and answers exactly like Dijkstra.
    #[test]
    fn parallel_weighted_matches_sequential(
        g in arb_graph(50, 120),
        weights_seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        use pruned_landmark_labeling::pll::WeightedIndexBuilder;
        let w = pll_bench::derive_weighted(&g, weights_seed, 30);
        let seq = WeightedIndexBuilder::new().build(&w).unwrap();
        let par = WeightedIndexBuilder::new().threads(threads).build(&w).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        serialize::save_weighted_index(&seq, &mut a).unwrap();
        serialize::save_weighted_index(&par, &mut b).unwrap();
        prop_assert_eq!(a, b);
        let mut engine = dijkstra::DijkstraEngine::new(w.num_vertices());
        for s in (0..w.num_vertices() as u32).step_by(4) {
            for u in (0..w.num_vertices() as u32).step_by(6) {
                prop_assert_eq!(par.distance(s, u), engine.distance(&w, s, u));
            }
        }
    }

    /// The batch-parallel weighted directed build serializes
    /// byte-identically to the sequential build.
    #[test]
    fn parallel_weighted_directed_matches_sequential(
        g in arb_graph(50, 120),
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        use pruned_landmark_labeling::pll::WeightedDirectedIndexBuilder;
        let wd = pll_bench::derive_weighted_digraph(&g, seed, 30);
        let seq = WeightedDirectedIndexBuilder::new().build(&wd).unwrap();
        let par = WeightedDirectedIndexBuilder::new().threads(threads).build(&wd).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        serialize::save_weighted_directed_index(&seq, &mut a).unwrap();
        serialize::save_weighted_directed_index(&par, &mut b).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Phase 0 in isolation: the parallel ordering and relabelling
    /// reproduce the sequential outputs on arbitrary model graphs, at
    /// arbitrary thread counts — independent of the search phase.
    #[test]
    fn phase0_parallelism_is_deterministic(
        g in arb_model_graph(),
        seed in any::<u64>(),
        threads in 2usize..9,
    ) {
        use pruned_landmark_labeling::graph::reorder::{apply_order, apply_order_threaded};
        use pruned_landmark_labeling::pll::order::{compute_order, compute_order_threaded};
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Closeness { samples: 6 },
            OrderingStrategy::Degeneracy,
        ] {
            let seq = compute_order(&g, &strat, seed).unwrap();
            let par = compute_order_threaded(&g, &strat, seed, threads).unwrap();
            prop_assert_eq!(&seq, &par, "{} order diverged", strat.name());
            let hs = apply_order(&g, &seq).unwrap();
            let hp = apply_order_threaded(&g, &seq, threads).unwrap();
            prop_assert_eq!(hs, hp, "relabelled graph diverged");
        }
    }

    /// The merge-join query is symmetric.
    #[test]
    fn query_symmetry(g in arb_model_graph()) {
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let n = g.num_vertices() as u32;
        for s in (0..n).step_by(7) {
            for u in (0..n).step_by(11) {
                prop_assert_eq!(idx.distance(s, u), idx.distance(u, s));
            }
        }
    }

    /// A v2 zero-copy view answers byte-identically to the owned index it
    /// was serialised from, on arbitrary model graphs with arbitrary
    /// bit-parallel root counts and parent storage.
    #[test]
    fn v2_view_matches_owned_index(g in arb_model_graph(), t in 0usize..6, parents in any::<bool>()) {
        use pruned_landmark_labeling::pll::{v2, AlignedBytes, AnyIndex};
        let mut builder = IndexBuilder::new();
        if parents {
            // Parent pointers are incompatible with bit-parallel roots.
            builder = builder.bit_parallel_roots(0).store_parents(true);
        } else {
            builder = builder.bit_parallel_roots(t);
        }
        let idx = builder.build(&g).unwrap();
        let mut bytes = Vec::new();
        v2::save_v2_index(&idx, &mut bytes).unwrap();
        let view = v2::open_v2_bytes(std::sync::Arc::new(AlignedBytes::from_bytes(&bytes)))
            .expect("zero-copy open");
        prop_assert!(matches!(view, AnyIndex::UndirectedView(_)));
        let n = g.num_vertices() as u32;
        for s in 0..n {
            for u in (0..n).step_by(3) {
                prop_assert_eq!(
                    view.distance(s, u),
                    idx.distance(s, u).map(u64::from),
                    "pair ({}, {})", s, u
                );
            }
        }
    }

    /// Triangle inequality holds for all indexed distances.
    /// Incremental updates: splitting a random model graph's edges into
    /// a base and a random insertion sequence, the [`DynamicIndex`] must
    /// answer byte-equal (as an answer stream) to a from-scratch rebuild
    /// of the updated graph after every batch — over both the owned and
    /// the zero-copy base representation.
    #[test]
    fn dynamic_updates_match_rebuild(
        g in arb_model_graph(),
        keep_permille in 300u32..950,
        batch in 1usize..9,
        t in 0usize..5,
    ) {
        use pruned_landmark_labeling::pll::{dynamic::DynamicIndex, v2, AlignedBytes, AnyIndex};
        use std::sync::Arc;
        let n = g.num_vertices();
        let all: Vec<(u32, u32)> = g.edges().collect();
        let keep = (all.len() as u64 * keep_permille as u64 / 1000) as usize;
        let base_graph = CsrGraph::from_edges(n, &all[..keep]).unwrap();
        let base_idx = IndexBuilder::new()
            .bit_parallel_roots(t)
            .build(&base_graph)
            .unwrap();
        let mut buf = Vec::new();
        v2::save_v2_index(&base_idx, &mut buf).unwrap();
        let view = v2::open_v2_bytes(Arc::new(AlignedBytes::from_bytes(&buf))).unwrap();
        for base in [Arc::new(AnyIndex::Undirected(base_idx)), Arc::new(view)] {
            let mut dyn_idx = DynamicIndex::new(base, &base_graph).unwrap();
            let mut applied = all[..keep].to_vec();
            for chunk in all[keep..].chunks(batch) {
                dyn_idx.apply(chunk).unwrap();
                applied.extend_from_slice(chunk);
                let rebuilt = IndexBuilder::new()
                    .bit_parallel_roots(t)
                    .build(&CsrGraph::from_edges(n, &applied).unwrap())
                    .unwrap();
                for s in 0..n as u32 {
                    for u in 0..n as u32 {
                        prop_assert_eq!(
                            dyn_idx.distance(s, u),
                            rebuilt.distance(s, u),
                            "pair ({}, {})", s, u
                        );
                    }
                }
            }
            // The flattened owned index answers identically too.
            let flat = dyn_idx.flatten(1).unwrap();
            for s in (0..n as u32).step_by(3) {
                for u in (0..n as u32).step_by(5) {
                    prop_assert_eq!(flat.distance(s, u), dyn_idx.distance(s, u));
                }
            }
        }
    }

    /// Incremental bit-parallel repair: after every insertion batch, the
    /// effective BP columns (base plus copy-on-write overrides) must be
    /// **word-identical** to a from-scratch 65-source BFS over the
    /// updated adjacency — not just answer-equal. This is the invariant
    /// that makes overlay-direct serving and the background flatten
    /// byte-reproducible.
    #[test]
    fn incremental_bp_repair_is_word_identical(
        g in arb_model_graph(),
        keep_permille in 300u32..950,
        batch in 1usize..9,
        t in 1usize..6,
    ) {
        use pruned_landmark_labeling::pll::{dynamic::DynamicIndex, AnyIndex};
        use std::sync::Arc;
        let n = g.num_vertices();
        let all: Vec<(u32, u32)> = g.edges().collect();
        let keep = (all.len() as u64 * keep_permille as u64 / 1000) as usize;
        let base_graph = CsrGraph::from_edges(n, &all[..keep]).unwrap();
        let base_idx = IndexBuilder::new()
            .bit_parallel_roots(t)
            .build(&base_graph)
            .unwrap();
        let mut dyn_idx =
            DynamicIndex::new(Arc::new(AnyIndex::Undirected(base_idx)), &base_graph).unwrap();
        for chunk in all[keep..].chunks(batch) {
            dyn_idx.apply(chunk).unwrap();
            prop_assert!(
                dyn_idx.bp_columns_word_identical().unwrap(),
                "a repaired BP column diverged from the full recompute"
            );
        }
    }

    #[test]
    fn triangle_inequality(g in arb_model_graph()) {
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let n = g.num_vertices() as u32;
        let probe: Vec<u32> = (0..n).step_by((n as usize / 8).max(1)).collect();
        for &s in &probe {
            for &u in &probe {
                for &v in &probe {
                    if let (Some(a), Some(b), Some(c)) = (
                        idx.distance(s, u),
                        idx.distance(u, v),
                        idx.distance(s, v),
                    ) {
                        prop_assert!(c <= a + b, "d({s},{v})={c} > {a}+{b}");
                    }
                }
            }
        }
    }
}
