//! All exact methods must agree pairwise on sampled queries — PLL, the
//! canonical-hub HHL stand-in, the contraction-hierarchy TD stand-in, the
//! naive labeling, and both BFS oracles.

use pruned_landmark_labeling::baselines::{
    BfsOracle, BidirBfsOracle, CanonicalHubLabeling, ContractionHierarchy, DistanceOracle,
    NaiveLabeling, PllOracle,
};
use pruned_landmark_labeling::graph::{gen, Xoshiro256pp};
use pruned_landmark_labeling::pll::{order::compute_order, IndexBuilder, OrderingStrategy};

#[test]
fn every_exact_method_agrees() {
    for (name, g) in [
        ("chung_lu", gen::chung_lu(200, 2.3, 7.0, 1).unwrap()),
        ("copying", gen::copying_model(200, 4, 0.8, 2).unwrap()),
        ("grid", gen::grid(14, 14).unwrap()),
        ("ws", gen::watts_strogatz(200, 4, 0.3, 3).unwrap()),
    ] {
        let n = g.num_vertices();
        let order = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let index = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        let canonical = CanonicalHubLabeling::build(&g, &order);
        let ch = ContractionHierarchy::build(&g, usize::MAX).unwrap();
        let naive = NaiveLabeling::build(&g, &order);

        let mut pll = PllOracle::new(&index);
        let mut bfs = BfsOracle::new(&g);
        let mut bidir = BidirBfsOracle::new(&g);

        let mut rng = Xoshiro256pp::seed_from_u64(0xA6);
        for _ in 0..400 {
            let s = rng.next_below(n as u64) as u32;
            let t = rng.next_below(n as u64) as u32;
            let expect = bfs.distance(s, t);
            assert_eq!(pll.distance(s, t), expect, "{name} PLL ({s}, {t})");
            assert_eq!(bidir.distance(s, t), expect, "{name} BiBFS ({s}, {t})");
            assert_eq!(canonical.distance(s, t), expect, "{name} HHL* ({s}, {t})");
            assert_eq!(ch.distance(s, t), expect, "{name} TD* ({s}, {t})");
            assert_eq!(naive.query(s, t), expect, "{name} naive ({s}, {t})");
        }
    }
}

#[test]
fn pruned_labels_never_exceed_naive_labels() {
    // The whole point of pruning: strictly smaller label sets than the
    // naive quadratic labeling, on every network class.
    for g in [
        gen::chung_lu(300, 2.3, 8.0, 4).unwrap(),
        gen::barabasi_albert(300, 3, 5).unwrap(),
        gen::copying_model(300, 4, 0.85, 6).unwrap(),
    ] {
        let order = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let naive = NaiveLabeling::build(&g, &order);
        let index = IndexBuilder::new()
            .ordering(OrderingStrategy::Custom(order))
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        let pruned_total = index.labels().total_entries();
        assert!(
            (pruned_total as f64) < 0.5 * naive.total_entries() as f64,
            "pruning saved too little: {pruned_total} vs naive {}",
            naive.total_entries()
        );
    }
}

#[test]
fn landmark_estimates_upper_bound_pll() {
    use pruned_landmark_labeling::baselines::{LandmarkIndex, LandmarkSelection};
    let g = gen::barabasi_albert(500, 3, 9).unwrap();
    let index = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
    let lm = LandmarkIndex::build(&g, 16, LandmarkSelection::Degree, 0);
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    for _ in 0..500 {
        let s = rng.next_below(500) as u32;
        let t = rng.next_below(500) as u32;
        let exact = index.distance(s, t);
        let est = lm.estimate(s, t);
        match (exact, est) {
            (Some(d), Some(e)) => assert!(e >= d, "estimate {e} below exact {d}"),
            (None, e) => assert_eq!(e, None, "estimate for disconnected pair"),
            (Some(_), None) => panic!("landmarks missed a connected pair in one component"),
        }
    }
}
