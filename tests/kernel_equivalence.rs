//! Equivalence suite for the merge-join query kernels.
//!
//! The branchless and unrolled kernels (and the Dist8 escape-sidecar
//! variants) must answer **byte-identically** to the scalar reference
//! kernel — on all four index variants, through both the owned and the
//! zero-copy (v2) storage backends. Two layers:
//!
//! * direct kernel calls on synthetic sentinel-terminated labels
//!   (proptest-driven, no global state);
//! * end-to-end `distance` through the runtime kernel selection
//!   (`set_kernel`), which is process-global — those tests serialise on
//!   [`KERNEL_LOCK`] so the test harness's thread pool cannot
//!   interleave two kernel switches.

use proptest::prelude::*;
use pruned_landmark_labeling::graph::{gen, Xoshiro256pp};
use pruned_landmark_labeling::pll::kernel::{
    merge_query_branchless, merge_query_scalar, merge_query_unrolled,
    merge_query_weighted_branchless, merge_query_weighted_dist8_branchless,
    merge_query_weighted_dist8_scalar, merge_query_weighted_scalar, merge_query_weighted_unrolled,
};
use pruned_landmark_labeling::pll::types::RANK_SENTINEL;
use pruned_landmark_labeling::pll::v2::{
    open_v2_bytes, save_v2_directed_index, save_v2_index, save_v2_weighted_directed_index,
    save_v2_weighted_index_with,
};
use pruned_landmark_labeling::pll::weighted_dist8::encode_dist8;
use pruned_landmark_labeling::pll::{
    set_kernel, AlignedBytes, AnyIndex, DirectedIndexBuilder, IndexBuilder, KernelKind,
    WeightedDirectedIndexBuilder, WeightedDist8Index, WeightedIndexBuilder,
};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialises every test that touches the process-global kernel switch.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn kernel_lock() -> MutexGuard<'static, ()> {
    KERNEL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const KERNELS: [KernelKind; 3] = [
    KernelKind::Scalar,
    KernelKind::Branchless,
    KernelKind::Unrolled,
];

/// Collects `distance` over every sampled pair under one kernel.
fn sample_distances(any: &AnyIndex, n: u32, kind: KernelKind) -> Vec<Option<u64>> {
    set_kernel(kind);
    let mut out = Vec::new();
    for s in 0..n {
        for t in (0..n).step_by(3) {
            out.push(any.distance(s, t));
        }
    }
    out
}

/// Asserts that every kernel answers the sampled pairs identically to
/// scalar, for each provided (label, index) backend.
fn assert_kernels_agree(backends: &[(&str, AnyIndex)], n: u32) {
    let _guard = kernel_lock();
    let reference = sample_distances(&backends[0].1, n, KernelKind::Scalar);
    for (label, any) in backends {
        for kind in KERNELS {
            assert_eq!(
                sample_distances(any, n, kind),
                reference,
                "{label} under the {} kernel diverged from the scalar reference",
                kind.name()
            );
        }
    }
    set_kernel(KernelKind::Branchless);
}

fn reopen(bytes: &[u8]) -> AnyIndex {
    open_v2_bytes(Arc::new(AlignedBytes::from_bytes(bytes))).expect("reopen v2 buffer")
}

#[test]
fn undirected_kernels_agree_owned_and_zero_copy() {
    let g = gen::barabasi_albert(90, 3, 7).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
    let mut buf = Vec::new();
    save_v2_index(&idx, &mut buf).unwrap();
    let backends = [
        ("owned undirected", AnyIndex::Undirected(idx)),
        ("zero-copy undirected", reopen(&buf)),
    ];
    assert_kernels_agree(&backends, 90);
}

#[test]
fn directed_kernels_agree_owned_and_zero_copy() {
    let g = gen::barabasi_albert(80, 3, 11).unwrap();
    let dg = pll_bench::derive_digraph(&g, 13);
    let idx = DirectedIndexBuilder::new().build(&dg).unwrap();
    let mut buf = Vec::new();
    save_v2_directed_index(&idx, &mut buf).unwrap();
    let backends = [
        ("owned directed", AnyIndex::Directed(idx)),
        ("zero-copy directed", reopen(&buf)),
    ];
    assert_kernels_agree(&backends, 80);
}

#[test]
fn weighted_kernels_agree_across_all_backends_and_arena_widths() {
    let g = gen::barabasi_albert(80, 3, 17).unwrap();
    // Weights to 256 put label distances on both sides of the Dist8
    // escape threshold, so the sidecar path is part of the comparison.
    let wg = pll_bench::derive_weighted(&g, 19, 256);
    let idx = WeightedIndexBuilder::new().build(&wg).unwrap();
    let mut u32_file = Vec::new();
    save_v2_weighted_index_with(&idx, &mut u32_file, false).unwrap();
    let mut u8_file = Vec::new();
    save_v2_weighted_index_with(&idx, &mut u8_file, true).unwrap();
    let owned_u8 = WeightedDist8Index::from_weighted(&idx).expect("profitable");
    assert!(owned_u8.escape_count() > 0, "fixture must exercise escapes");
    let u8_view = reopen(&u8_file);
    assert!(
        matches!(u8_view, AnyIndex::WeightedDist8View(_)),
        "narrowed file must reopen as Dist8"
    );

    // The owned Dist8 index has no AnyIndex variant (narrowing is a
    // file-format concern), so compare it against scalar-u32 directly.
    {
        let _guard = kernel_lock();
        set_kernel(KernelKind::Scalar);
        let mut reference = Vec::new();
        for s in 0..80u32 {
            for t in (0..80u32).step_by(3) {
                reference.push(idx.distance(s, t));
            }
        }
        for kind in KERNELS {
            set_kernel(kind);
            let mut got = Vec::new();
            for s in 0..80u32 {
                for t in (0..80u32).step_by(3) {
                    got.push(owned_u8.distance(s, t));
                }
            }
            assert_eq!(
                got,
                reference,
                "owned Dist8 under the {} kernel diverged from the scalar u32 reference",
                kind.name()
            );
        }
        set_kernel(KernelKind::Branchless);
    }

    let backends = [
        ("owned weighted u32", AnyIndex::Weighted(idx)),
        ("zero-copy weighted u32", reopen(&u32_file)),
        ("zero-copy weighted u8", u8_view),
    ];
    assert_kernels_agree(&backends, 80);
}

#[test]
fn weighted_directed_kernels_agree_owned_and_zero_copy() {
    let g = gen::barabasi_albert(70, 3, 23).unwrap();
    let wd = pll_bench::derive_weighted_digraph(&g, 29, 64);
    let idx = WeightedDirectedIndexBuilder::new().build(&wd).unwrap();
    let mut buf = Vec::new();
    save_v2_weighted_directed_index(&idx, &mut buf).unwrap();
    let backends = [
        ("owned weighted-directed", AnyIndex::WeightedDirected(idx)),
        ("zero-copy weighted-directed", reopen(&buf)),
    ];
    assert_kernels_agree(&backends, 70);
}

// ---------------------------------------------------------------------------
// Direct kernel-level properties (no global state)
// ---------------------------------------------------------------------------

/// Builds one sentinel-terminated label from proptest-chosen entries:
/// ranks strictly ascending, dists arbitrary.
fn build_label(entries: &[(u32, u8)]) -> (Vec<u32>, Vec<u8>) {
    let mut ranks = Vec::with_capacity(entries.len() + 1);
    let mut dists = Vec::with_capacity(entries.len() + 1);
    let mut r = 0u32;
    for &(gap, d) in entries {
        r = r.saturating_add(1 + (gap % 64));
        ranks.push(r);
        dists.push(d);
    }
    ranks.push(RANK_SENTINEL);
    dists.push(u8::MAX);
    (ranks, dists)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unweighted: branchless and unrolled equal scalar on arbitrary
    /// well-formed labels.
    #[test]
    fn unweighted_kernels_equal_scalar(
        a in proptest::collection::vec((0u32..64, any::<u8>()), 0..40),
        b in proptest::collection::vec((0u32..64, any::<u8>()), 0..40),
    ) {
        let (ur, ud) = build_label(&a);
        let (vr, vd) = build_label(&b);
        let want = merge_query_scalar(&ur, &ud, &vr, &vd);
        prop_assert_eq!(merge_query_branchless(&ur, &ud, &vr, &vd), want);
        prop_assert_eq!(merge_query_unrolled(&ur, &ud, &vr, &vd), want);
    }

    /// Weighted: same property over u32 distance arenas.
    #[test]
    fn weighted_kernels_equal_scalar(
        a in proptest::collection::vec((0u32..64, 0u32..1_000_000), 0..40),
        b in proptest::collection::vec((0u32..64, 0u32..1_000_000), 0..40),
    ) {
        let widen = |entries: &[(u32, u32)]| {
            let bytes: Vec<(u32, u8)> = entries.iter().map(|&(g, _)| (g, 0)).collect();
            let (r, _) = build_label(&bytes);
            let mut d: Vec<u32> = entries.iter().map(|&(_, w)| w).collect();
            d.push(u32::MAX);
            (r, d)
        };
        let (ar, ad) = widen(&a);
        let (br, bd) = widen(&b);
        let want = merge_query_weighted_scalar(&ar, &ad, &br, &bd);
        prop_assert_eq!(merge_query_weighted_branchless(&ar, &ad, &br, &bd), want);
        prop_assert_eq!(merge_query_weighted_unrolled(&ar, &ad, &br, &bd), want);
    }

    /// Dist8: narrowing a u32 arena and querying through the escape
    /// sidecar answers exactly like the scalar u32 kernel on the
    /// original arena, for both Dist8 kernels.
    #[test]
    fn dist8_kernels_equal_u32_scalar(
        a in proptest::collection::vec((0u32..64, 0u32..400), 1..40),
        b in proptest::collection::vec((0u32..64, 0u32..400), 1..40),
    ) {
        let widen = |entries: &[(u32, u32)]| {
            let bytes: Vec<(u32, u8)> = entries.iter().map(|&(g, _)| (g, 0)).collect();
            let (r, _) = build_label(&bytes);
            let mut d: Vec<u32> = entries.iter().map(|&(_, w)| w).collect();
            d.push(u32::MAX);
            (r, d)
        };
        let (ar, ad) = widen(&a);
        let (br, bd) = widen(&b);
        // One shared arena: label A at position 0, label B after it.
        let offsets = vec![0u32, ar.len() as u32, (ar.len() + br.len()) as u32];
        let mut dists = ad.clone();
        dists.extend_from_slice(&bd);
        // All-escaping arenas refuse to narrow: nothing to compare.
        let Some(enc) = encode_dist8(&offsets, &dists) else {
            return Ok(());
        };
        let (a8, b8) = enc.dists8.split_at(ar.len());
        let want = merge_query_weighted_scalar(&ar, &ad, &br, &bd);
        let b_base = ar.len() as u32;
        prop_assert_eq!(
            merge_query_weighted_dist8_scalar(
                &ar, a8, 0, &br, b8, b_base, &enc.esc_pos, &enc.esc_val
            ),
            want
        );
        prop_assert_eq!(
            merge_query_weighted_dist8_branchless(
                &ar, a8, 0, &br, b8, b_base, &enc.esc_pos, &enc.esc_val
            ),
            want
        );
    }
}

/// Randomised end-to-end agreement on a structured graph family, with a
/// deterministic seeded sweep (cheap enough to run exhaustively).
#[test]
fn random_graphs_agree_end_to_end() {
    let _guard = kernel_lock();
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    for round in 0..4 {
        let n = 30 + 10 * round;
        let g = gen::erdos_renyi_gnm(n, n * 3, rng.next_below(1 << 30)).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots((round % 3) * 2)
            .build(&g)
            .unwrap();
        let any = AnyIndex::Undirected(idx);
        let reference = sample_distances(&any, n as u32, KernelKind::Scalar);
        for kind in [KernelKind::Branchless, KernelKind::Unrolled] {
            assert_eq!(
                sample_distances(&any, n as u32, kind),
                reference,
                "round {round}: {} diverged",
                kind.name()
            );
        }
    }
    set_kernel(KernelKind::Branchless);
}
