//! Scrape-consistency tests for the observability substrate: the STATS
//! opcode and the Prometheus HTTP sidecar must agree with each other
//! and with what the load actually did.
//!
//! The exactness trick: a worker bumps its counters after writing each
//! response frame and before reading the next frame off the same
//! connection, so a STATS scrape issued on the *same* connection as the
//! load observes every prior request exactly. HTTP scrapes never touch
//! the wire counters at all.

use pll_core::{AnyIndex, IndexBuilder};
use pll_obs::SampleValue;
use pll_server::protocol::Client;
use pll_server::{serve_dynamic, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A ring graph plus a dynamic server over it with the metrics sidecar
/// listening on an ephemeral port.
fn ring_server(n: u32, flatten_threshold: Option<u64>) -> (Arc<AnyIndex>, ServerHandle) {
    let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    let index = Arc::new(AnyIndex::Undirected(idx));
    // 4 workers: the hammer test holds three connections open at once
    // (querier, updater, scraper) and each parks a worker.
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        flatten_threshold,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let handle = serve_dynamic(Arc::clone(&index), Some(&g), &config).unwrap();
    (index, handle)
}

/// One `GET /metrics` round-trip against the sidecar; returns the body.
fn fetch_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: pll\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.0 200"),
        "unexpected response: {response}"
    );
    let (_, body) = response.split_once("\r\n\r\n").unwrap();
    body.to_string()
}

/// The value of a counter/gauge sample line in a Prometheus text body.
fn prom_value(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' '))
        .unwrap_or_else(|| panic!("{name} not found in /metrics body:\n{body}"))
        .trim()
        .parse()
        .unwrap()
}

/// Every counter in `snapshot` is the exact count of what one
/// connection's load did, and the HTTP sidecar reports the same values.
#[test]
fn stats_and_http_scrapes_are_exact_and_consistent() {
    let (index, handle) = ring_server(30, None);
    let addr = handle.local_addr().to_string();
    let metrics_addr = handle.metrics_addr().expect("sidecar configured");

    // All load and the first scrape ride ONE connection, so the scrape
    // observes exactly what came before it on that connection.
    let mut client = Client::connect(&addr).unwrap();
    const QUERIES: u64 = 40;
    for i in 0..QUERIES as u32 {
        // Pairs repeat with period 10 → the second half hits the cache.
        let (s, t) = (i % 10, (i % 10 + 15) % 30);
        assert_eq!(client.query(s, t).unwrap(), index.distance(s, t));
    }
    let ack = client.update(&[(0, 15)]).unwrap();
    assert_eq!(ack.applied, 1);

    let snap = client.stats().unwrap();
    let v = |name: &str| {
        snap.value(name)
            .unwrap_or_else(|| panic!("{name} missing from STATS snapshot"))
    };
    assert_eq!(v("pll_queries_total"), QUERIES, "exact query count");
    assert_eq!(v("pll_updates_total"), 1, "exact update count");
    assert_eq!(
        v("pll_cache_hits_total") + v("pll_cache_misses_total"),
        QUERIES,
        "every distance query either hit or missed the cache"
    );
    assert!(v("pll_cache_hits_total") > 0, "repeated pairs must hit");
    assert_eq!(v("pll_epoch"), 1, "the UPDATE published epoch 1");
    assert_eq!(v("pll_apply_edges_applied_total"), 1);
    assert!(v("pll_uptime_seconds") < 3600, "uptime gauge is sane");
    match snap.get("pll_request_duration_seconds").unwrap() {
        SampleValue::Histogram(h) => {
            // QUERIES query requests + 1 update request, each recorded
            // before the next frame was read; the in-flight STATS
            // request is not yet recorded at snapshot time.
            assert_eq!(h.count, QUERIES + 1, "exact request histogram count");
            assert!(h.sum > 0, "observed nonzero time");
        }
        other => panic!("expected a histogram, got {other:?}"),
    }
    // Help strings survive the wire (satellite: no undocumented metric).
    for sample in &snap.samples {
        assert!(!sample.help.is_empty(), "{} has no help text", sample.name);
    }

    // The HTTP sidecar reads the same registry: wire-affecting counters
    // agree exactly (an HTTP scrape does not touch them).
    let body = fetch_metrics(metrics_addr);
    assert_eq!(prom_value(&body, "pll_queries_total"), QUERIES);
    assert_eq!(prom_value(&body, "pll_updates_total"), 1);
    assert_eq!(prom_value(&body, "pll_epoch"), 1);
    assert_eq!(
        prom_value(&body, "pll_cache_hits_total"),
        v("pll_cache_hits_total")
    );
    assert!(
        body.contains("# TYPE pll_queries_total counter"),
        "typed exposition:\n{body}"
    );

    // Second scrape: every counter is monotone.
    let snap2 = client.stats().unwrap();
    for sample in &snap.samples {
        if let SampleValue::Counter(before) = sample.value {
            match snap2.get(&sample.name) {
                Some(SampleValue::Counter(after)) => {
                    assert!(
                        *after >= before,
                        "{} went backwards: {before} -> {after}",
                        sample.name
                    );
                }
                other => panic!("{} changed shape: {other:?}", sample.name),
            }
        }
    }

    client.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.queries, QUERIES);
}

/// Scrapes stay coherent while the served index is hot-swapping under
/// concurrent query + update load: counters never go backwards, the
/// epoch gauge never regresses, and both exposition paths keep working.
#[test]
fn concurrent_scrapes_survive_hot_swaps() {
    // flatten_threshold 1: every batch arms the background flattener, so
    // scrapes race real epoch swaps.
    let (_index, handle) = ring_server(64, Some(1));
    let addr = handle.local_addr().to_string();
    let metrics_addr = handle.metrics_addr().expect("sidecar configured");

    std::thread::scope(|scope| {
        let addr_q = addr.clone();
        let querier = scope.spawn(move || {
            let mut client = Client::connect(&addr_q).unwrap();
            for round in 0..600u32 {
                let (s, t) = (round % 64, (round * 7 + 3) % 64);
                client.query(s, t).unwrap();
            }
        });
        let addr_u = addr.clone();
        let updater = scope.spawn(move || {
            let mut client = Client::connect(&addr_u).unwrap();
            for i in 0..30u32 {
                client.update(&[(i % 64, (i + 31) % 64)]).unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });

        // Hammer both scrape paths until the load finishes.
        let mut scraper = Client::connect(&addr).unwrap();
        let (mut last_queries, mut last_epoch) = (0u64, 0u64);
        let deadline = Instant::now() + Duration::from_secs(30);
        while !(querier.is_finished() && updater.is_finished()) {
            assert!(Instant::now() < deadline, "load never finished");
            let snap = scraper.stats().unwrap();
            let queries = snap.value("pll_queries_total").unwrap();
            let epoch = snap.value("pll_epoch").unwrap();
            assert!(queries >= last_queries, "{queries} < {last_queries}");
            assert!(
                epoch >= last_epoch,
                "epoch regressed: {epoch} < {last_epoch}"
            );
            (last_queries, last_epoch) = (queries, epoch);
            // The HTTP path reads the same registry later in time, so
            // it can never be behind the STATS value just observed.
            let body = fetch_metrics(metrics_addr);
            assert!(prom_value(&body, "pll_queries_total") >= last_queries);
        }
        querier.join().unwrap();
        updater.join().unwrap();
    });

    // Final exactness after the load quiesced.
    let mut client = Client::connect(&addr).unwrap();
    let snap = client.stats().unwrap();
    assert_eq!(snap.value("pll_queries_total"), Some(600));
    assert_eq!(snap.value("pll_updates_total"), Some(30));
    assert!(snap.value("pll_flatten_passes_total").unwrap() >= 1);
    client.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.updates, 30);
}
