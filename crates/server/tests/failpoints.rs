//! Fault-injection tests, compiled only with `--features failpoints`.
//!
//! These live in their own integration-test binary (own process) because
//! the failpoint registry is process-wide: arming `serve.before_publish`
//! here must not be able to detonate under an unrelated unit test running
//! concurrently in the library's test binary.

#![cfg(feature = "failpoints")]

use pll_core::{fail, AnyIndex, IndexBuilder};
use pll_server::protocol::{Client, ProtocolError, RetryPolicy, STATUS_UNSUPPORTED};
use pll_server::{serve_dynamic, ServerConfig, ServerHandle};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Serializes the tests in this binary: the failpoint registry is
/// process-wide, so a site armed by one test must not detonate inside a
/// concurrently running sibling's server.
static FP_LOCK: Mutex<()> = Mutex::new(());

/// A ring graph plus a dynamic server over it with the given flatten
/// threshold (0 = the default).
fn ring_server(
    n: u32,
    flatten_threshold: u64,
) -> (pll_graph::CsrGraph, Arc<AnyIndex>, ServerHandle) {
    let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    let index = Arc::new(AnyIndex::Undirected(idx));
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    };
    if flatten_threshold > 0 {
        config.flatten_threshold = Some(flatten_threshold);
    }
    let handle = serve_dynamic(Arc::clone(&index), Some(&g), &config).unwrap();
    (g, index, handle)
}

/// Polls until the armed `site` has fired at least once (the flattener
/// runs in the background, so reaching a flatten site is asynchronous).
fn wait_for_hit(site: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while fail::hits(site) == 0 {
        assert!(Instant::now() < deadline, "{site} never triggered");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A panic injected right before the epoch publish must not take the
/// server down: the panicking connection dies, the updater lock is
/// poisoned, later UPDATEs are refused with a clear message, and queries
/// keep serving the last published epoch.
#[test]
fn injected_panic_before_publish_poisons_updates_not_queries() {
    let _serial = FP_LOCK.lock().unwrap();
    let (_g, index, handle) = ring_server(30, 0);
    let addr = handle.local_addr().to_string();

    fail::cfg("serve.before_publish", "panic").unwrap();
    let mut client = Client::connect(&addr).unwrap();
    let err = client.update(&[(0, 15)]).unwrap_err();
    fail::remove("serve.before_publish");
    // The worker panicked before responding, so the client just sees the
    // connection close — exactly what RetryClient treats as retryable.
    assert!(RetryPolicy::is_retryable(&err), "{err:?}");
    assert_eq!(fail::hits("serve.before_publish"), 0, "site disarmed");

    // The server survives: queries are fine on the last published epoch,
    // updates are refused as poisoned (the overlay may be half-applied).
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.query(0, 5).unwrap(), index.distance(0, 5));
    match client.update(&[(0, 10)]) {
        Err(ProtocolError::Server { status, message }) => {
            assert_eq!(status, STATUS_UNSUPPORTED, "{message}");
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("poisoned updater must refuse UPDATE, got {other:?}"),
    }
    client.shutdown_server().unwrap();
    let summary = handle.join();
    assert!(summary.panics >= 1, "panics {}", summary.panics);
    assert_eq!(summary.final_epoch, 0, "the injected batch never published");
}

/// A panic injected in the background flattener *before* the swap must
/// not take the server down: the flattener thread dies outside the
/// updater lock, so the swap simply never happens — the overlay keeps
/// serving, queries and further UPDATEs keep working, and `join()`
/// reports the escaped panic.
#[test]
fn injected_panic_before_flatten_swap_keeps_serving_the_overlay() {
    let _serial = FP_LOCK.lock().unwrap();
    // flatten_threshold 1: the first applied batch arms the flattener.
    let (_g, _index, handle) = ring_server(30, 1);
    let addr = handle.local_addr().to_string();

    fail::cfg("flatten.before_swap", "panic").unwrap();
    let mut client = Client::connect(&addr).unwrap();
    let ack = client.update(&[(0, 15)]).unwrap();
    assert_eq!(ack.applied, 1);
    assert_eq!(ack.flatten_us, 0, "no flatten on the request path");
    wait_for_hit("flatten.before_swap");
    fail::remove("flatten.before_swap");

    // The swap never happened: the overlay is still what answers.
    let info = client.info().unwrap();
    assert_eq!(info.flattens, 0, "the swap never completed");
    assert!(info.overlay_entries > 0, "still serving the overlay");
    assert_eq!(client.query(0, 15).unwrap(), Some(1), "the insert is live");
    // The updater is NOT poisoned — the panic hit outside the lock.
    let ack = client.update(&[(0, 10)]).unwrap();
    assert_eq!(ack.applied, 1);
    assert_eq!(client.query(0, 10).unwrap(), Some(1));
    client.shutdown_server().unwrap();
    let summary = handle.join();
    assert!(summary.panics >= 1, "panics {}", summary.panics);
    assert_eq!(summary.final_epoch, 2, "both batches published");
}

/// A panic injected *after* the swap: the flat base and the WAL state
/// are already published, so the served answers are exactly the
/// flattened ones and only the flattener thread is lost.
#[test]
fn injected_panic_after_flatten_swap_keeps_the_published_base() {
    let _serial = FP_LOCK.lock().unwrap();
    let (_g, _index, handle) = ring_server(30, 1);
    let addr = handle.local_addr().to_string();

    fail::cfg("flatten.after_swap", "panic").unwrap();
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.update(&[(0, 15)]).unwrap().applied, 1);
    wait_for_hit("flatten.after_swap");
    fail::remove("flatten.after_swap");

    // The swap completed before the panic: a flat base serves.
    let info = client.info().unwrap();
    assert_eq!(info.flattens, 1, "one flatten generation completed");
    assert_eq!(info.overlay_entries, 0, "the overlay was absorbed");
    assert_eq!(client.query(0, 15).unwrap(), Some(1), "the insert is live");
    // Updates keep publishing overlay-direct; only the background
    // flattener is gone, so the overlay now just grows.
    assert_eq!(client.update(&[(0, 10)]).unwrap().applied, 1);
    assert_eq!(client.query(0, 10).unwrap(), Some(1));
    assert!(client.info().unwrap().overlay_entries > 0);
    client.shutdown_server().unwrap();
    let summary = handle.join();
    assert!(summary.panics >= 1, "panics {}", summary.panics);
    assert_eq!(summary.final_epoch, 2);
}
