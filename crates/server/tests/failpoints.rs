//! Fault-injection tests, compiled only with `--features failpoints`.
//!
//! These live in their own integration-test binary (own process) because
//! the failpoint registry is process-wide: arming `serve.before_publish`
//! here must not be able to detonate under an unrelated unit test running
//! concurrently in the library's test binary.

#![cfg(feature = "failpoints")]

use pll_core::{fail, AnyIndex, IndexBuilder};
use pll_server::protocol::{Client, ProtocolError, RetryPolicy, STATUS_UNSUPPORTED};
use pll_server::{serve_dynamic, ServerConfig};
use std::sync::Arc;

/// A panic injected right before the epoch publish must not take the
/// server down: the panicking connection dies, the updater lock is
/// poisoned, later UPDATEs are refused with a clear message, and queries
/// keep serving the last published epoch.
#[test]
fn injected_panic_before_publish_poisons_updates_not_queries() {
    let n = 30u32;
    let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
    let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    let index = Arc::new(AnyIndex::Undirected(idx));
    let handle = serve_dynamic(
        Arc::clone(&index),
        Some(&g),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    fail::cfg("serve.before_publish", "panic").unwrap();
    let mut client = Client::connect(&addr).unwrap();
    let err = client.update(&[(0, 15)]).unwrap_err();
    fail::remove("serve.before_publish");
    // The worker panicked before responding, so the client just sees the
    // connection close — exactly what RetryClient treats as retryable.
    assert!(RetryPolicy::is_retryable(&err), "{err:?}");
    assert_eq!(fail::hits("serve.before_publish"), 0, "site disarmed");

    // The server survives: queries are fine on the last published epoch,
    // updates are refused as poisoned (the overlay may be half-applied).
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.query(0, 5).unwrap(), index.distance(0, 5));
    match client.update(&[(0, 10)]) {
        Err(ProtocolError::Server { status, message }) => {
            assert_eq!(status, STATUS_UNSUPPORTED, "{message}");
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("poisoned updater must refuse UPDATE, got {other:?}"),
    }
    client.shutdown_server().unwrap();
    let summary = handle.join();
    assert!(summary.panics >= 1, "panics {}", summary.panics);
    assert_eq!(summary.final_epoch, 0, "the injected batch never published");
}
