//! Per-worker service metrics: lock-free counters plus a log-linear
//! latency histogram, aggregated into a summary at shutdown and
//! exposed live through the [`pll_obs::Registry`].
//!
//! This module is the audited home for every serve-side `AtomicU64`
//! (the `metrics-hygiene` rule in `pll-audit` flags scalar atomics
//! declared anywhere else in the server crate): per-worker shards in
//! [`WorkerMetrics`], process-wide serve counters in [`ServeCounters`],
//! and the per-vertex cache generations via [`generation_counters`].
//! Hot paths pay one relaxed `fetch_add` per event; the registry reads
//! the shards with scrape-time collector closures, so scrapes cost the
//! scraper, not the request path.

use pll_obs::latency;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Latency bucket count, shared with `pll-obs`: 4 log-linear
/// sub-buckets per power of two across 48 powers, so a percentile read
/// from a bucket upper bound overstates by at most ~25% (a pure log₂
/// histogram allowed 2×).
const BUCKETS: usize = latency::BUCKETS;

/// Adds `n` to a statistics counter.
#[inline]
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    // ORDERING: Relaxed — plain statistics counters: nothing is
    // published through them; shutdown summaries read after joining
    // the writer threads and live scrapes tolerate any interleaving.
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Reads a statistics counter.
#[inline]
pub(crate) fn get(counter: &AtomicU64) -> u64 {
    // ORDERING: Relaxed — scrape-time read of a statistics counter;
    // see `add`.
    counter.load(Ordering::Relaxed)
}

/// Builds the per-vertex answer-cache generation array (see the
/// `cache` module for the invalidation protocol). Not metrics, but the
/// same relaxed-atomic species — constructed here so the
/// `metrics-hygiene` audit keeps one audited home for serve-side
/// atomics.
pub(crate) fn generation_counters(n: usize) -> Vec<AtomicU64> {
    let mut gens = Vec::with_capacity(n);
    gens.resize_with(n, AtomicU64::default);
    gens
}

/// Counters owned by one worker thread (written with relaxed atomics —
/// each worker writes only its own, readers aggregate at shutdown or
/// sum across workers at scrape time).
#[derive(Debug)]
pub struct WorkerMetrics {
    /// Individual distance queries answered (batch members count each).
    pub queries: AtomicU64,
    /// Request frames served (a batch is one request).
    pub requests: AtomicU64,
    /// Error responses sent.
    pub errors: AtomicU64,
    /// UPDATE batches applied (hot-swaps performed by this worker).
    pub updates: AtomicU64,
    /// Connections fully served.
    pub connections: AtomicU64,
    /// Distance answers served from the per-worker answer cache.
    pub cache_hits: AtomicU64,
    /// Distance answers that missed the cache and ran the label merge.
    pub cache_misses: AtomicU64,
    /// Live cache entries overwritten by a different pair (direct-mapped
    /// slot collisions; high rates mean the cache is undersized).
    pub cache_evictions: AtomicU64,
    /// Nanoseconds spent servicing requests.
    pub busy_nanos: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

impl Default for WorkerMetrics {
    fn default() -> Self {
        WorkerMetrics {
            queries: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl WorkerMetrics {
    /// Records one serviced request of `nanos` wall time covering
    /// `queries` distance answers.
    pub fn record_request(&self, nanos: u64, queries: u64) {
        // ORDERING: Relaxed — each worker increments only its own
        // counters on the hot path; nothing is published through them,
        // and summarize() only reads after joining the worker threads
        // (the join is the happens-before edge). Live scrapes read the
        // same cells relaxed and tolerate mid-request interleavings.
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(queries, Ordering::Relaxed);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.latency[latency::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Process-wide serve counters that are not per-worker: the flatten
/// pipeline, overload shedding, the WAL, and the dynamic apply path.
/// All written through [`add`] (one relaxed `fetch_add` per event) and
/// exposed by [`register_server_metrics`].
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Background flatten generations completed (the INFO `flattens`
    /// field).
    pub flattens: AtomicU64,
    /// Connections shed with `STATUS_BUSY` (bounded work queue full).
    pub sheds: AtomicU64,
    /// Worker panics caught and survived.
    pub panics: AtomicU64,
    /// Requests slower than the configured slow-request threshold.
    pub slow_requests: AtomicU64,
    /// Nanoseconds spent journaling UPDATE records on the request path.
    pub journal_nanos: AtomicU64,
    /// Nanoseconds spent applying resumed-BFS deltas on the request path.
    pub apply_nanos: AtomicU64,
    /// Nanoseconds spent snapshotting + swapping in new epochs
    /// (includes journaling the commit marker).
    pub publish_nanos: AtomicU64,
    /// Nanoseconds the background flattener spent rebuilding flat bases
    /// (off the request path).
    pub flatten_nanos: AtomicU64,
    /// Nanoseconds the flattener held the updater lock to rebase and
    /// swap a finished flatten in.
    pub swap_nanos: AtomicU64,
    /// WAL records appended (update + commit + compaction markers).
    pub wal_appends: AtomicU64,
    /// Bytes appended to the WAL.
    pub wal_bytes: AtomicU64,
    /// Nanoseconds spent in WAL fsyncs.
    pub wal_fsync_nanos: AtomicU64,
    /// WAL records replayed during startup recovery.
    pub wal_recovered_records: AtomicU64,
    /// 1 when startup recovery degraded to the base snapshot because
    /// the WAL could not be replayed (the served answers are stale
    /// until re-updated).
    pub wal_recovery_degraded: AtomicU64,
    /// Edges inserted by UPDATE batches.
    pub edges_applied: AtomicU64,
    /// UPDATE edges skipped (self-loops, already present).
    pub edges_skipped: AtomicU64,
    /// Pruned BFS roots resumed across all applies.
    pub roots_resumed: AtomicU64,
    /// Vertices visited by resumed BFSs.
    pub vertices_visited: AtomicU64,
    /// Delta label entries added to the overlay.
    pub delta_entries_added: AtomicU64,
    /// Bit-parallel columns repaired in place.
    pub bp_repairs: AtomicU64,
}

/// Registers every worker-sharded and serve-level counter into
/// `registry` as scrape-time collectors. The closures are wait-free
/// relaxed-load sums, per the `pll-obs` collector contract.
pub(crate) fn register_server_metrics(
    registry: &pll_obs::Registry,
    workers: &Arc<Vec<WorkerMetrics>>,
    counters: &Arc<ServeCounters>,
) {
    let sum = |workers: &Arc<Vec<WorkerMetrics>>, field: fn(&WorkerMetrics) -> &AtomicU64| {
        let w = workers.clone();
        move || w.iter().map(|m| get(field(m))).sum()
    };
    registry.counter_fn(
        "pll_requests_total",
        "Request frames served (a batch is one request)",
        sum(workers, |w| &w.requests),
    );
    registry.counter_fn(
        "pll_queries_total",
        "Individual distance queries answered (batch members count each)",
        sum(workers, |w| &w.queries),
    );
    registry.counter_fn(
        "pll_errors_total",
        "Error responses sent (bad request, query error, unsupported op)",
        sum(workers, |w| &w.errors),
    );
    registry.counter_fn(
        "pll_updates_total",
        "UPDATE batches applied and hot-swapped",
        sum(workers, |w| &w.updates),
    );
    registry.counter_fn(
        "pll_connections_total",
        "Connections fully served",
        sum(workers, |w| &w.connections),
    );
    registry.counter_fn(
        "pll_cache_hits_total",
        "Distance answers served from the per-worker answer cache",
        sum(workers, |w| &w.cache_hits),
    );
    registry.counter_fn(
        "pll_cache_misses_total",
        "Distance answers that missed the cache and ran the label merge",
        sum(workers, |w| &w.cache_misses),
    );
    registry.counter_fn(
        "pll_cache_evictions_total",
        "Live cache entries overwritten by a colliding pair (undersized cache signal)",
        sum(workers, |w| &w.cache_evictions),
    );
    registry.counter_fn(
        "pll_request_busy_nanos_total",
        "Nanoseconds workers spent servicing requests",
        sum(workers, |w| &w.busy_nanos),
    );
    {
        let w = workers.clone();
        registry.histogram_fn(
            "pll_request_duration_seconds",
            "Request service time distribution (log-linear nanosecond buckets, exposed in seconds)",
            move || {
                let mut buckets = vec![0u64; BUCKETS];
                let (mut count, mut sum) = (0u64, 0u64);
                for m in w.iter() {
                    count += get(&m.requests);
                    sum += get(&m.busy_nanos);
                    for (merged, shard) in buckets.iter_mut().zip(&m.latency) {
                        *merged += get(shard);
                    }
                }
                pll_obs::HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                }
            },
        );
    }

    let c = |counters: &Arc<ServeCounters>, field: fn(&ServeCounters) -> &AtomicU64| {
        let s = counters.clone();
        move || get(field(&s))
    };
    registry.counter_fn(
        "pll_flatten_passes_total",
        "Background flatten generations completed",
        c(counters, |s| &s.flattens),
    );
    registry.counter_fn(
        "pll_sheds_total",
        "Connections shed with STATUS_BUSY because the bounded work queue was full",
        c(counters, |s| &s.sheds),
    );
    registry.counter_fn(
        "pll_worker_panics_total",
        "Worker panics caught and survived",
        c(counters, |s| &s.panics),
    );
    registry.counter_fn(
        "pll_slow_requests_total",
        "Requests slower than the slow-request threshold (each is a flight-recorder event)",
        c(counters, |s| &s.slow_requests),
    );
    registry.counter_fn(
        "pll_update_journal_nanos_total",
        "Nanoseconds spent journaling UPDATE records on the request path",
        c(counters, |s| &s.journal_nanos),
    );
    registry.counter_fn(
        "pll_update_apply_nanos_total",
        "Nanoseconds spent applying resumed-BFS deltas on the request path",
        c(counters, |s| &s.apply_nanos),
    );
    registry.counter_fn(
        "pll_update_publish_nanos_total",
        "Nanoseconds spent snapshotting and swapping in new epochs",
        c(counters, |s| &s.publish_nanos),
    );
    registry.counter_fn(
        "pll_flatten_nanos_total",
        "Nanoseconds the background flattener spent rebuilding flat bases",
        c(counters, |s| &s.flatten_nanos),
    );
    registry.counter_fn(
        "pll_flatten_swap_nanos_total",
        "Nanoseconds the flattener held the updater lock to rebase and swap",
        c(counters, |s| &s.swap_nanos),
    );
    registry.counter_fn(
        "pll_wal_appends_total",
        "WAL records appended (update, commit and compaction markers)",
        c(counters, |s| &s.wal_appends),
    );
    registry.counter_fn(
        "pll_wal_bytes_total",
        "Bytes appended to the WAL",
        c(counters, |s| &s.wal_bytes),
    );
    registry.counter_fn(
        "pll_wal_fsync_nanos_total",
        "Nanoseconds spent in WAL fsyncs",
        c(counters, |s| &s.wal_fsync_nanos),
    );
    registry.counter_fn(
        "pll_wal_recovered_records_total",
        "WAL records replayed during startup recovery",
        c(counters, |s| &s.wal_recovered_records),
    );
    registry.gauge_fn(
        "pll_wal_recovery_degraded",
        "1 when startup recovery degraded to the base snapshot (WAL unreplayable)",
        c(counters, |s| &s.wal_recovery_degraded),
    );
    registry.counter_fn(
        "pll_apply_edges_applied_total",
        "Edges inserted into the served graph by UPDATE batches",
        c(counters, |s| &s.edges_applied),
    );
    registry.counter_fn(
        "pll_apply_edges_skipped_total",
        "UPDATE edges skipped as self-loops or already present",
        c(counters, |s| &s.edges_skipped),
    );
    registry.counter_fn(
        "pll_apply_roots_resumed_total",
        "Pruned BFS roots resumed by the dynamic apply path",
        c(counters, |s| &s.roots_resumed),
    );
    registry.counter_fn(
        "pll_apply_vertices_visited_total",
        "Vertices visited by resumed pruned BFSs",
        c(counters, |s| &s.vertices_visited),
    );
    registry.counter_fn(
        "pll_apply_delta_entries_total",
        "Delta label entries added to the overlay by applies",
        c(counters, |s| &s.delta_entries_added),
    );
    registry.counter_fn(
        "pll_apply_bp_repairs_total",
        "Bit-parallel columns repaired in place by applies",
        c(counters, |s| &s.bp_repairs),
    );
}

/// One worker's aggregated numbers in a [`ServerSummary`].
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Distance queries answered by this worker.
    pub queries: u64,
    /// Request frames served by this worker.
    pub requests: u64,
    /// Error responses sent by this worker.
    pub errors: u64,
    /// UPDATE batches applied by this worker.
    pub updates: u64,
    /// Connections fully served by this worker.
    pub connections: u64,
    /// Answer-cache hits on this worker.
    pub cache_hits: u64,
    /// Answer-cache misses on this worker.
    pub cache_misses: u64,
    /// Seconds this worker spent servicing requests.
    pub busy_seconds: f64,
}

/// Shutdown-time metrics of a whole server run.
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// Wall-clock seconds between start and shutdown.
    pub elapsed_seconds: f64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerSummary>,
    /// Total distance queries answered.
    pub queries: u64,
    /// Total request frames served.
    pub requests: u64,
    /// Total error responses.
    pub errors: u64,
    /// Total UPDATE batches applied.
    pub updates: u64,
    /// Served index epoch at shutdown (0 = never swapped).
    pub final_epoch: u64,
    /// Total answer-cache hits across workers.
    pub cache_hits: u64,
    /// Total answer-cache misses across workers (hit rate =
    /// `hits / (hits + misses)`; generation keying keeps untouched pairs
    /// hot across epochs, see the `cache` module).
    pub cache_misses: u64,
    /// Connections shed with `STATUS_BUSY` because the bounded work
    /// queue was full (overload protection, not an error).
    pub sheds: u64,
    /// Worker panics caught and survived (each also drops the panicking
    /// connection).
    pub panics: u64,
    /// Queries per wall-clock second.
    pub qps: f64,
    /// Median request service time (µs, log-linear-bucket upper bound,
    /// within ~25% of the true percentile).
    pub p50_us: f64,
    /// 99th-percentile request service time (µs, log-linear-bucket
    /// upper bound, within ~25% of the true percentile).
    pub p99_us: f64,
}

/// Aggregates worker metrics into a [`ServerSummary`];
/// `final_epoch` is the swap cell's epoch at shutdown, `sheds` the
/// overload-shed connection count and `panics` the caught worker panics.
pub fn summarize(
    workers: &[WorkerMetrics],
    elapsed_seconds: f64,
    final_epoch: u64,
    sheds: u64,
    panics: u64,
) -> ServerSummary {
    let mut merged = vec![0u64; BUCKETS];
    let mut per_worker = Vec::with_capacity(workers.len());
    let (mut queries, mut requests, mut errors, mut updates) = (0u64, 0u64, 0u64, 0u64);
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    for w in workers {
        let q = get(&w.queries);
        let r = get(&w.requests);
        let e = get(&w.errors);
        let u = get(&w.updates);
        let h = get(&w.cache_hits);
        let m = get(&w.cache_misses);
        queries += q;
        requests += r;
        errors += e;
        updates += u;
        cache_hits += h;
        cache_misses += m;
        for (merged, b) in merged.iter_mut().zip(&w.latency) {
            *merged += get(b);
        }
        per_worker.push(WorkerSummary {
            queries: q,
            requests: r,
            errors: e,
            updates: u,
            connections: get(&w.connections),
            cache_hits: h,
            cache_misses: m,
            busy_seconds: get(&w.busy_nanos) as f64 / 1e9,
        });
    }
    ServerSummary {
        elapsed_seconds,
        workers: per_worker,
        queries,
        requests,
        errors,
        updates,
        final_epoch,
        cache_hits,
        cache_misses,
        sheds,
        panics,
        qps: if elapsed_seconds > 0.0 {
            queries as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_us: latency::percentile_nanos(&merged, requests, 0.50) as f64 / 1_000.0,
        p99_us: latency::percentile_nanos(&merged, requests, 0.99) as f64 / 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarize() {
        let workers = vec![WorkerMetrics::default(), WorkerMetrics::default()];
        // Worker 0: 99 fast requests (~1 µs), worker 1: one slow (~1 ms).
        for _ in 0..99 {
            workers[0].record_request(1_000, 2);
        }
        workers[1].record_request(1_000_000, 1);
        workers[1].connections.fetch_add(1, Ordering::Relaxed);
        workers[0].cache_hits.fetch_add(7, Ordering::Relaxed);
        workers[1].cache_misses.fetch_add(3, Ordering::Relaxed);
        let s = summarize(&workers, 2.0, 3, 4, 1);
        assert_eq!(s.requests, 100);
        assert_eq!(s.cache_hits, 7);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.workers[0].cache_hits, 7);
        assert_eq!(s.workers[1].cache_misses, 3);
        assert_eq!(s.sheds, 4);
        assert_eq!(s.panics, 1);
        assert_eq!(s.queries, 199);
        assert_eq!(s.errors, 0);
        assert_eq!(s.updates, 0);
        assert_eq!(s.final_epoch, 3);
        assert!((s.qps - 99.5).abs() < 1e-9);
        // Log-linear buckets pin both percentiles within 25% of the
        // recorded 1 µs value (the log₂ histogram allowed ≤ 2.048 µs).
        assert!(s.p50_us >= 1.0 && s.p50_us <= 1.25, "p50 {} µs", s.p50_us);
        assert!(s.p99_us >= 1.0 && s.p99_us <= 1.25, "p99 {} µs", s.p99_us);
        assert_eq!(s.workers[1].connections, 1);
        assert!(s.workers[1].busy_seconds > 0.0);
    }

    #[test]
    fn percentile_tracks_the_slow_tail_within_25_percent() {
        let w = WorkerMetrics::default();
        w.record_request(1_000_000, 1); // ~1 ms
        let s = summarize(std::slice::from_ref(&w), 1.0, 0, 0, 0);
        // The old log₂ upper bound reported 2097.152 µs for a 1 ms
        // observation; the log-linear bound must stay within 25%.
        assert!(
            s.p50_us >= 1_000.0 && s.p50_us <= 1_250.0,
            "p50 {} µs",
            s.p50_us
        );
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[], 0.0, 0, 0, 0);
        assert_eq!(s.queries, 0);
        assert_eq!(s.sheds, 0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.p50_us, 0.0);
    }

    #[test]
    fn extreme_latencies_clamp_to_last_bucket() {
        let w = WorkerMetrics::default();
        w.record_request(u64::MAX, 1);
        w.record_request(0, 1); // clamps to bucket 0 via max(1)
        let s = summarize(std::slice::from_ref(&w), 1.0, 0, 0, 0);
        assert_eq!(s.requests, 2);
        assert!(s.p99_us > 0.0);
    }

    #[test]
    fn registered_metrics_expose_worker_sums_and_serve_counters() {
        let registry = pll_obs::Registry::new();
        let workers = Arc::new(vec![WorkerMetrics::default(), WorkerMetrics::default()]);
        let counters = Arc::new(ServeCounters::default());
        register_server_metrics(&registry, &workers, &counters);
        workers[0].record_request(1_000, 2);
        workers[1].record_request(2_000, 3);
        add(&counters.sheds, 5);
        add(&counters.wal_bytes, 123);
        let snap = registry.snapshot();
        assert_eq!(snap.value("pll_requests_total"), Some(2));
        assert_eq!(snap.value("pll_queries_total"), Some(5));
        assert_eq!(snap.value("pll_sheds_total"), Some(5));
        assert_eq!(snap.value("pll_wal_bytes_total"), Some(123));
        match snap.get("pll_request_duration_seconds") {
            Some(pll_obs::SampleValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 3_000);
                assert_eq!(h.buckets.iter().sum::<u64>(), 2);
            }
            other => panic!("unexpected sample {other:?}"),
        }
        // Counters keep moving after registration (collectors are live).
        workers[0].record_request(1_000, 1);
        assert_eq!(registry.snapshot().value("pll_requests_total"), Some(3));
    }

    #[test]
    fn generation_counters_are_zeroed() {
        let gens = generation_counters(4);
        assert_eq!(gens.len(), 4);
        assert!(gens.iter().all(|g| get(g) == 0));
    }
}
