//! Per-worker service metrics: lock-free counters plus a log₂ latency
//! histogram, aggregated into a summary at shutdown.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets: bucket `i` covers service times in
/// `[2^i, 2^(i+1))` nanoseconds, so 48 buckets span nanoseconds to days.
const BUCKETS: usize = 48;

/// Counters owned by one worker thread (written with relaxed atomics —
/// each worker writes only its own, readers aggregate at shutdown).
#[derive(Debug)]
pub struct WorkerMetrics {
    /// Individual distance queries answered (batch members count each).
    pub queries: AtomicU64,
    /// Request frames served (a batch is one request).
    pub requests: AtomicU64,
    /// Error responses sent.
    pub errors: AtomicU64,
    /// UPDATE batches applied (hot-swaps performed by this worker).
    pub updates: AtomicU64,
    /// Connections fully served.
    pub connections: AtomicU64,
    /// Distance answers served from the per-worker answer cache.
    pub cache_hits: AtomicU64,
    /// Distance answers that missed the cache and ran the label merge.
    pub cache_misses: AtomicU64,
    /// Nanoseconds spent servicing requests.
    pub busy_nanos: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

impl Default for WorkerMetrics {
    fn default() -> Self {
        WorkerMetrics {
            queries: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl WorkerMetrics {
    /// Records one serviced request of `nanos` wall time covering
    /// `queries` distance answers.
    pub fn record_request(&self, nanos: u64, queries: u64) {
        // ORDERING: Relaxed — each worker increments only its own
        // counters on the hot path; nothing is published through them,
        // and summarize() only reads after joining the worker threads
        // (the join is the happens-before edge).
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(queries, Ordering::Relaxed);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        let bucket = (64 - nanos.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// One worker's aggregated numbers in a [`ServerSummary`].
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Distance queries answered by this worker.
    pub queries: u64,
    /// Request frames served by this worker.
    pub requests: u64,
    /// Error responses sent by this worker.
    pub errors: u64,
    /// UPDATE batches applied by this worker.
    pub updates: u64,
    /// Connections fully served by this worker.
    pub connections: u64,
    /// Answer-cache hits on this worker.
    pub cache_hits: u64,
    /// Answer-cache misses on this worker.
    pub cache_misses: u64,
    /// Seconds this worker spent servicing requests.
    pub busy_seconds: f64,
}

/// Shutdown-time metrics of a whole server run.
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// Wall-clock seconds between start and shutdown.
    pub elapsed_seconds: f64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerSummary>,
    /// Total distance queries answered.
    pub queries: u64,
    /// Total request frames served.
    pub requests: u64,
    /// Total error responses.
    pub errors: u64,
    /// Total UPDATE batches applied.
    pub updates: u64,
    /// Served index epoch at shutdown (0 = never swapped).
    pub final_epoch: u64,
    /// Total answer-cache hits across workers.
    pub cache_hits: u64,
    /// Total answer-cache misses across workers (hit rate =
    /// `hits / (hits + misses)`; generation keying keeps untouched pairs
    /// hot across epochs, see the `cache` module).
    pub cache_misses: u64,
    /// Connections shed with `STATUS_BUSY` because the bounded work
    /// queue was full (overload protection, not an error).
    pub sheds: u64,
    /// Worker panics caught and survived (each also drops the panicking
    /// connection).
    pub panics: u64,
    /// Queries per wall-clock second.
    pub qps: f64,
    /// Median request service time (µs, log₂-bucket upper bound).
    pub p50_us: f64,
    /// 99th-percentile request service time (µs, log₂-bucket upper
    /// bound).
    pub p99_us: f64,
}

/// Aggregates worker metrics into a [`ServerSummary`];
/// `final_epoch` is the swap cell's epoch at shutdown, `sheds` the
/// overload-shed connection count and `panics` the caught worker panics.
pub fn summarize(
    workers: &[WorkerMetrics],
    elapsed_seconds: f64,
    final_epoch: u64,
    sheds: u64,
    panics: u64,
) -> ServerSummary {
    let mut merged = [0u64; BUCKETS];
    let mut per_worker = Vec::with_capacity(workers.len());
    let (mut queries, mut requests, mut errors, mut updates) = (0u64, 0u64, 0u64, 0u64);
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    // ORDERING: Relaxed throughout this loop — the caller joins every
    // worker thread before summarizing, so each final increment is
    // already visible; these loads need no ordering of their own.
    for w in workers {
        let q = w.queries.load(Ordering::Relaxed);
        let r = w.requests.load(Ordering::Relaxed);
        let e = w.errors.load(Ordering::Relaxed);
        let u = w.updates.load(Ordering::Relaxed);
        let h = w.cache_hits.load(Ordering::Relaxed);
        let m = w.cache_misses.load(Ordering::Relaxed);
        queries += q;
        requests += r;
        errors += e;
        updates += u;
        cache_hits += h;
        cache_misses += m;
        for (m, b) in merged.iter_mut().zip(&w.latency) {
            // ORDERING: Relaxed — same join-synchronized read as above.
            *m += b.load(Ordering::Relaxed);
        }
        per_worker.push(WorkerSummary {
            queries: q,
            requests: r,
            errors: e,
            updates: u,
            // ORDERING: Relaxed — same join-synchronized read as above.
            connections: w.connections.load(Ordering::Relaxed),
            cache_hits: h,
            cache_misses: m,
            busy_seconds: w.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        });
    }
    ServerSummary {
        elapsed_seconds,
        workers: per_worker,
        queries,
        requests,
        errors,
        updates,
        final_epoch,
        cache_hits,
        cache_misses,
        sheds,
        panics,
        qps: if elapsed_seconds > 0.0 {
            queries as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_us: percentile_us(&merged, requests, 0.50),
        p99_us: percentile_us(&merged, requests, 0.99),
    }
}

/// Percentile from the merged log₂ histogram, reported as the matched
/// bucket's upper bound in microseconds (0 when nothing was recorded).
fn percentile_us(buckets: &[u64; BUCKETS], total: u64, p: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let target = ((total as f64) * p).ceil() as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= target {
            return 2f64.powi(i as i32 + 1) / 1_000.0;
        }
    }
    2f64.powi(BUCKETS as i32) / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarize() {
        let workers = vec![WorkerMetrics::default(), WorkerMetrics::default()];
        // Worker 0: 99 fast requests (~1 µs), worker 1: one slow (~1 ms).
        for _ in 0..99 {
            workers[0].record_request(1_000, 2);
        }
        workers[1].record_request(1_000_000, 1);
        workers[1].connections.fetch_add(1, Ordering::Relaxed);
        workers[0].cache_hits.fetch_add(7, Ordering::Relaxed);
        workers[1].cache_misses.fetch_add(3, Ordering::Relaxed);
        let s = summarize(&workers, 2.0, 3, 4, 1);
        assert_eq!(s.requests, 100);
        assert_eq!(s.cache_hits, 7);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.workers[0].cache_hits, 7);
        assert_eq!(s.workers[1].cache_misses, 3);
        assert_eq!(s.sheds, 4);
        assert_eq!(s.panics, 1);
        assert_eq!(s.queries, 199);
        assert_eq!(s.errors, 0);
        assert_eq!(s.updates, 0);
        assert_eq!(s.final_epoch, 3);
        assert!((s.qps - 99.5).abs() < 1e-9);
        // p50 lands in the ~1 µs bucket, p99 well below the 1 ms request,
        // which only the p100-ish tail sees.
        assert!(s.p50_us <= 3.0, "p50 {} µs", s.p50_us);
        assert!(s.p99_us <= 3.0, "p99 {} µs", s.p99_us);
        assert_eq!(s.workers[1].connections, 1);
        assert!(s.workers[1].busy_seconds > 0.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[], 0.0, 0, 0, 0);
        assert_eq!(s.queries, 0);
        assert_eq!(s.sheds, 0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.p50_us, 0.0);
    }

    #[test]
    fn extreme_latencies_clamp_to_last_bucket() {
        let w = WorkerMetrics::default();
        w.record_request(u64::MAX, 1);
        w.record_request(0, 1); // clamps to bucket 0 via max(1)
        let s = summarize(std::slice::from_ref(&w), 1.0, 0, 0, 0);
        assert_eq!(s.requests, 2);
        assert!(s.p99_us > 0.0);
    }
}
