//! Per-worker hot-pair answer cache.
//!
//! Repeated queries for the same few vertex pairs (hot landmarks,
//! polling clients) re-run the label merge every time even though the
//! served index is immutable between epochs. Each worker thread owns a
//! small direct-mapped [`AnswerCache`] keyed by `(s, t)` and tagged
//! with the epoch the answer was computed under: a hit must match the
//! *current* snapshot's epoch, so a hot-swap (`UPDATE` publishing epoch
//! `e+1`) implicitly invalidates every cached answer without any
//! cross-thread coordination. The cache is worker-local and never
//! shared — no locks, no false sharing, bounded memory
//! ([`ANSWER_CACHE_SLOTS`] × 24 bytes per worker).
//!
//! Only `QUERY`/`BATCH` distance answers are cached (the wire `u64`,
//! `u64::MAX` = unreachable); errors and `PATH`/`CONNECTED` responses
//! are not. Correctness does not depend on hit rate: a stale-epoch or
//! colliding entry is simply a miss and the query recomputes.

/// Slots per worker cache. Power of two so the slot index is a mask.
pub const ANSWER_CACHE_SLOTS: usize = 1024;

#[derive(Clone, Copy)]
struct Entry {
    s: u32,
    t: u32,
    /// Epoch the answer was computed under; `u64::MAX` marks an empty
    /// slot (epochs count up from 0 and can never reach it).
    epoch: u64,
    /// Wire-encoded distance (`u64::MAX` = unreachable).
    dist: u64,
}

const EMPTY: Entry = Entry {
    s: 0,
    t: 0,
    epoch: u64::MAX,
    dist: 0,
};

/// Direct-mapped, epoch-tagged `(s, t) → distance` cache (see the
/// module docs for the invalidation model).
pub struct AnswerCache {
    slots: Box<[Entry; ANSWER_CACHE_SLOTS]>,
}

impl Default for AnswerCache {
    fn default() -> Self {
        AnswerCache {
            slots: Box::new([EMPTY; ANSWER_CACHE_SLOTS]),
        }
    }
}

/// splitmix64 finalizer — full-avalanche mix so nearby vertex ids do
/// not collide into neighbouring slots.
fn mix(s: u32, t: u32) -> u64 {
    let mut z = ((s as u64) << 32 | t as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl AnswerCache {
    fn slot(s: u32, t: u32) -> usize {
        (mix(s, t) as usize) & (ANSWER_CACHE_SLOTS - 1)
    }

    /// The cached wire distance for `(s, t)` computed under `epoch`, or
    /// `None` on a miss (empty slot, different pair, or older epoch).
    pub fn get(&self, epoch: u64, s: u32, t: u32) -> Option<u64> {
        let e = &self.slots[Self::slot(s, t)];
        (e.epoch == epoch && e.s == s && e.t == t).then_some(e.dist)
    }

    /// Records `(s, t) → dist` as computed under `epoch`, evicting
    /// whatever occupied the slot.
    pub fn put(&mut self, epoch: u64, s: u32, t: u32, dist: u64) {
        self.slots[Self::slot(s, t)] = Entry { s, t, epoch, dist };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_pair_and_epoch() {
        let mut c = AnswerCache::default();
        assert_eq!(c.get(0, 3, 7), None);
        c.put(0, 3, 7, 42);
        assert_eq!(c.get(0, 3, 7), Some(42));
        // Asymmetric key: (t, s) is a different pair.
        assert_eq!(c.get(0, 7, 3), None);
        // A published epoch invalidates without any explicit flush.
        assert_eq!(c.get(1, 3, 7), None);
        c.put(1, 3, 7, 41);
        assert_eq!(c.get(1, 3, 7), Some(41));
    }

    #[test]
    fn unreachable_and_zero_are_cacheable_values() {
        let mut c = AnswerCache::default();
        c.put(5, 1, 2, u64::MAX);
        c.put(5, 2, 2, 0);
        assert_eq!(c.get(5, 1, 2), Some(u64::MAX));
        assert_eq!(c.get(5, 2, 2), Some(0));
    }

    #[test]
    fn colliding_pairs_evict_rather_than_corrupt() {
        let mut c = AnswerCache::default();
        // Find two pairs sharing a slot.
        let a = (0u32, 1u32);
        let mut collider = None;
        'outer: for s in 0..256u32 {
            for t in 0..256u32 {
                if (s, t) != a && AnswerCache::slot(s, t) == AnswerCache::slot(a.0, a.1) {
                    collider = Some((s, t));
                    break 'outer;
                }
            }
        }
        let (b, bt) = collider.expect("65536 pairs over 1024 slots must collide");
        c.put(0, a.0, a.1, 10);
        c.put(0, b, bt, 20);
        assert_eq!(c.get(0, b, bt), Some(20));
        assert_eq!(c.get(0, a.0, a.1), None, "evicted, not corrupted");
    }
}
