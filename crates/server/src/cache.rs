//! Per-worker hot-pair answer cache with per-vertex generations.
//!
//! Repeated queries for the same few vertex pairs (hot landmarks,
//! polling clients) re-run the label merge every time even though most
//! of the index never changes. Each worker thread owns a small
//! direct-mapped [`AnswerCache`] keyed by `(s, t)` and tagged with the
//! epoch the answer was computed under. Validity is decided against the
//! shared per-vertex **generation table**: the updater records, for
//! every vertex whose labels or bit-parallel words an UPDATE batch
//! touched, the epoch that batch published (before the swap-cell
//! store, so the cell's lock publishes the generations along with the
//! index). A cached entry is live iff neither endpoint has been touched
//! since it was computed:
//!
//! ```text
//! hit(s, t)  ⇔  gen[s] ≤ entry.epoch  ∧  gen[t] ≤ entry.epoch
//! ```
//!
//! This is sound because a distance answer is a function of the two
//! endpoints' label sets and bit-parallel rows only — if a pair's
//! distance changed, one endpoint was touched (see
//! `DynamicIndex::touched_vertices`), its generation moved past every
//! older entry's epoch, and the entry misses. Under overlay-direct
//! serving the epoch bumps on *every* batch, so the old exact-epoch
//! test would pin the hit rate at 0% under update load; endpoint
//! generations invalidate only what actually changed. A static server
//! passes an empty generation table and entries simply never expire.
//!
//! Only `QUERY`/`BATCH` distance answers are cached (the wire `u64`,
//! `u64::MAX` = unreachable); errors and `PATH`/`CONNECTED` responses
//! are not. Correctness does not depend on hit rate: a colliding or
//! expired entry is simply a miss and the query recomputes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slots per worker cache. Power of two so the slot index is a mask.
pub const ANSWER_CACHE_SLOTS: usize = 1024;

#[derive(Clone, Copy)]
struct Entry {
    s: u32,
    t: u32,
    /// Epoch the answer was computed under; `u64::MAX` marks an empty
    /// slot (epochs count up from 0 and can never reach it).
    epoch: u64,
    /// Wire-encoded distance (`u64::MAX` = unreachable).
    dist: u64,
}

const EMPTY: Entry = Entry {
    s: 0,
    t: 0,
    epoch: u64::MAX,
    dist: 0,
};

/// Direct-mapped, generation-checked `(s, t) → distance` cache (see the
/// module docs for the invalidation model).
pub struct AnswerCache {
    slots: Box<[Entry; ANSWER_CACHE_SLOTS]>,
}

impl Default for AnswerCache {
    fn default() -> Self {
        AnswerCache {
            slots: Box::new([EMPTY; ANSWER_CACHE_SLOTS]),
        }
    }
}

/// splitmix64 finalizer — full-avalanche mix so nearby vertex ids do
/// not collide into neighbouring slots.
fn mix(s: u32, t: u32) -> u64 {
    let mut z = ((s as u64) << 32 | t as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Last-touched epoch of vertex `v`, 0 when the table is absent
/// (static serving: nothing is ever touched).
fn generation(gens: &[AtomicU64], v: u32) -> u64 {
    gens.get(v as usize)
        // ORDERING: Acquire — pairs with the updater's Release stores;
        // the real happens-before edge is the swap cell's RwLock
        // (generations are written before the publish, read after the
        // snapshot load), this load just keeps the per-cell reads from
        // being torn or reordered past it.
        .map_or(0, |g| g.load(Ordering::Acquire))
}

impl AnswerCache {
    fn slot(s: u32, t: u32) -> usize {
        (mix(s, t) as usize) & (ANSWER_CACHE_SLOTS - 1)
    }

    /// The cached wire distance for `(s, t)`, or `None` on a miss
    /// (empty slot, different pair, or an endpoint touched after the
    /// entry was computed).
    pub fn get(&self, gens: &[AtomicU64], s: u32, t: u32) -> Option<u64> {
        let e = &self.slots[Self::slot(s, t)];
        (e.epoch != u64::MAX
            && e.s == s
            && e.t == t
            && generation(gens, s) <= e.epoch
            && generation(gens, t) <= e.epoch)
            .then_some(e.dist)
    }

    /// Records `(s, t) → dist` as computed under `epoch` (the snapshot
    /// epoch the answer came from), evicting whatever occupied the slot.
    /// Returns `true` when a *live* entry for a different pair was
    /// evicted (a direct-mapped collision — the signal behind the
    /// `pll_cache_evictions_total` metric); overwriting an empty slot,
    /// the same pair, or an already-expired entry is not an eviction.
    pub fn put(&mut self, gens: &[AtomicU64], epoch: u64, s: u32, t: u32, dist: u64) -> bool {
        debug_assert_ne!(epoch, u64::MAX, "u64::MAX marks empty slots");
        let slot = Self::slot(s, t);
        let old = self.slots[slot];
        let evicted = old.epoch != u64::MAX
            && (old.s, old.t) != (s, t)
            && generation(gens, old.s) <= old.epoch
            && generation(gens, old.t) <= old.epoch;
        self.slots[slot] = Entry { s, t, epoch, dist };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gens(n: usize) -> Vec<AtomicU64> {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    }

    #[test]
    fn hit_requires_matching_pair() {
        let g = gens(16);
        let mut c = AnswerCache::default();
        assert_eq!(c.get(&g, 3, 7), None);
        c.put(&g, 0, 3, 7, 42);
        assert_eq!(c.get(&g, 3, 7), Some(42));
        // Asymmetric key: (t, s) is a different pair.
        assert_eq!(c.get(&g, 7, 3), None);
    }

    #[test]
    fn entries_survive_epochs_until_an_endpoint_is_touched() {
        let g = gens(16);
        let mut c = AnswerCache::default();
        c.put(&g, 0, 3, 7, 42);
        c.put(&g, 0, 4, 8, 9);
        // Epochs advance; untouched pairs stay hot.
        g[1].store(5, Ordering::Release);
        assert_eq!(c.get(&g, 3, 7), Some(42));
        assert_eq!(c.get(&g, 4, 8), Some(9));
        // Touching either endpoint kills exactly that pair's entry.
        g[7].store(6, Ordering::Release);
        assert_eq!(c.get(&g, 3, 7), None);
        assert_eq!(c.get(&g, 4, 8), Some(9));
        // A fresh answer computed at/after the touch is valid again.
        c.put(&g, 6, 3, 7, 41);
        assert_eq!(c.get(&g, 3, 7), Some(41));
    }

    #[test]
    fn static_serving_uses_an_empty_generation_table() {
        let mut c = AnswerCache::default();
        c.put(&[], 0, 1, 2, u64::MAX);
        c.put(&[], 0, 2, 2, 0);
        assert_eq!(c.get(&[], 1, 2), Some(u64::MAX), "unreachable is cacheable");
        assert_eq!(c.get(&[], 2, 2), Some(0), "zero is cacheable");
    }

    #[test]
    fn colliding_pairs_evict_rather_than_corrupt() {
        let g = gens(256);
        let mut c = AnswerCache::default();
        // Find two pairs sharing a slot.
        let a = (0u32, 1u32);
        let mut collider = None;
        'outer: for s in 0..256u32 {
            for t in 0..256u32 {
                if (s, t) != a && AnswerCache::slot(s, t) == AnswerCache::slot(a.0, a.1) {
                    collider = Some((s, t));
                    break 'outer;
                }
            }
        }
        let (b, bt) = collider.expect("65536 pairs over 1024 slots must collide");
        assert!(!c.put(&g, 0, a.0, a.1, 10), "empty slot is not an eviction");
        assert!(c.put(&g, 0, b, bt, 20), "live collider is an eviction");
        assert_eq!(c.get(&g, b, bt), Some(20));
        assert_eq!(c.get(&g, a.0, a.1), None, "evicted, not corrupted");
    }
}
