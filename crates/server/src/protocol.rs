//! The `pll serve` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload. A request payload is one opcode byte plus its body; a
//! response payload is one status byte plus its body:
//!
//! ```text
//! request           body
//!   0x01 QUERY      u32 s, u32 t
//!   0x02 BATCH      u32 count, count × (u32 s, u32 t)
//!   0x03 INFO       —
//!   0x04 SHUTDOWN   —
//!   0x05 PATH       u32 s, u32 t
//!   0x06 CONNECTED  u32 s, u32 t
//!   0x07 UPDATE     u32 count, count × (u32 u, u32 v)
//!   0x08 STATS      —
//!
//! response (status 0x00 = OK)     body
//!   QUERY                         u64 distance (u64::MAX = unreachable)
//!   BATCH                         u32 count, count × u64
//!   INFO                          u64 n, u8 format code, u8 format version,
//!                                 u64 epoch, u8 dynamic (1 = UPDATE enabled),
//!                                 u64 overlay_entries (delta label entries
//!                                 currently served from the overlay),
//!                                 u64 flattens (background flatten
//!                                 generations completed),
//!                                 u64 uptime_seconds,
//!                                 u64 flatten_threshold (0 = static server)
//!   STATS                         versioned pll-obs metrics snapshot (see
//!                                 `pll_obs::Snapshot::decode`): u16 wire
//!                                 version, u32 sample count, then per
//!                                 sample name, help, kind and value
//!   SHUTDOWN                      —
//!   PATH                          u32 count, count × u32 vertex
//!                                 (count 0 = unreachable; paths have ≥ 1 vertex)
//!   CONNECTED                     u8 (1 = same component / reachable)
//!   UPDATE                        u64 epoch, u32 applied, u32 skipped,
//!                                 u32 apply_us, u32 flatten_us, u32 publish_us
//! response (status != 0)          UTF-8 error message
//!   0x01 BAD_REQUEST   malformed request frame
//!   0x02 QUERY_ERROR   the operation itself failed
//!   0x03 UNSUPPORTED   op not supported by the served index
//!   0x04 BUSY          overloaded: connection shed before any request
//!                      was read; reconnect with backoff (see
//!                      [`RetryClient`])
//! ```
//!
//! Distances are widened to `u64` on the wire so one protocol covers the
//! unweighted (`u32`) and weighted (`u64`) index families;
//! [`UNREACHABLE`] marks a disconnected pair. Frames are capped at
//! [`MAX_FRAME_LEN`] and batches at [`MAX_BATCH`] so a malicious length
//! prefix cannot drive an allocation.
//!
//! `UPDATE` inserts edges into the served graph: the server applies them
//! to its dynamic overlay and atomically swaps the served index to a new
//! *epoch* — in-flight requests finish on the old epoch, subsequent ones
//! see the new one, and `INFO` makes the swap observable from the client
//! side. The overlay is served directly (queries run the base⊕delta
//! merge); a background thread flattens it into a fresh base off the
//! request path once it crosses the server's `--flatten-threshold`, which
//! `INFO`'s `overlay_entries`/`flattens` fields make observable. The ack
//! carries a per-phase timing split (`apply_us`/`flatten_us`/`publish_us`;
//! `flatten_us` is 0 under overlay-direct serving because the flatten is
//! amortized off-path). Servers started without a graph (or over a
//! non-undirected index) answer `UPDATE` with [`STATUS_UNSUPPORTED`].

use std::io::{Read, Write};
use std::net::TcpStream;

/// Single-pair distance query.
pub const OP_QUERY: u8 = 0x01;
/// Batched distance query.
pub const OP_BATCH: u8 = 0x02;
/// Index metadata (vertex count, family, format generation).
pub const OP_INFO: u8 = 0x03;
/// Ask the server to stop accepting connections and drain.
pub const OP_SHUTDOWN: u8 = 0x04;
/// Shortest-*path* reconstruction (undirected indices with parents).
pub const OP_PATH: u8 = 0x05;
/// Same-component / reachability check.
pub const OP_CONNECTED: u8 = 0x06;
/// Insert edges into the served graph and hot-swap to a new epoch.
pub const OP_UPDATE: u8 = 0x07;
/// Live metrics snapshot (versioned `pll-obs` wire encoding).
pub const OP_STATS: u8 = 0x08;

/// Response status: success.
pub const STATUS_OK: u8 = 0x00;
/// Response status: malformed request frame.
pub const STATUS_BAD_REQUEST: u8 = 0x01;
/// Response status: the query itself failed (e.g. vertex out of range).
pub const STATUS_QUERY_ERROR: u8 = 0x02;
/// Response status: the op is not supported by the served index (PATH
/// without parents / non-undirected, UPDATE without `--graph`).
pub const STATUS_UNSUPPORTED: u8 = 0x03;
/// Response status: the server is overloaded and shed this connection
/// before reading any request (bounded work queue full). The connection
/// is closed after this frame; clients should reconnect with capped
/// jittered backoff ([`RetryClient`] does).
pub const STATUS_BUSY: u8 = 0x04;

/// Wire marker for "unreachable" (`None` distances).
pub const UNREACHABLE: u64 = u64::MAX;

/// Upper bound on a frame payload (1 MiB headroom over [`MAX_BATCH`]).
pub const MAX_FRAME_LEN: u32 = (8 * MAX_BATCH + 1024) as u32;
/// Upper bound on pairs per batch request.
pub const MAX_BATCH: usize = 1 << 16;

/// Protocol-level failure on the client side.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure.
    Io(std::io::Error),
    /// The peer sent a malformed or oversized frame.
    Malformed(String),
    /// The server answered with an error status.
    Server {
        /// The response status byte.
        status: u8,
        /// The server's error message.
        message: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "I/O error: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtocolError::Server { status, message } => {
                write!(f, "server error (status {status}): {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary.
pub fn read_frame<R: Read>(mut r: R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Malformed(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Canonical answer-line formats shared by `pll query` (the offline
/// path) and `serve_load --answers-out` (the online path). The smoke
/// tests byte-diff the two outputs, so both sides MUST print through
/// these helpers — the contract is structural, not a comment.
pub mod answers {
    /// `s<TAB>t<TAB>d`, or `unreachable` for a disconnected pair.
    pub fn distance_line(s: u32, t: u32, d: Option<u64>) -> String {
        match d {
            Some(d) => format!("{s}\t{t}\t{d}"),
            None => format!("{s}\t{t}\tunreachable"),
        }
    }

    /// `s<TAB>t<TAB>v0 v1 … vk`, or `unreachable`.
    pub fn path_line(s: u32, t: u32, path: Option<&[u32]>) -> String {
        match path {
            Some(path) => {
                let joined: Vec<String> = path.iter().map(|v| v.to_string()).collect();
                format!("{s}\t{t}\t{}", joined.join(" "))
            }
            None => format!("{s}\t{t}\tunreachable"),
        }
    }

    /// `s<TAB>t<TAB>connected|disconnected`.
    pub fn connected_line(s: u32, t: u32, connected: bool) -> String {
        format!(
            "{s}\t{t}\t{}",
            if connected {
                "connected"
            } else {
                "disconnected"
            }
        )
    }
}

/// Index metadata returned by [`OP_INFO`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexInfo {
    /// Number of indexed vertices.
    pub num_vertices: u64,
    /// Index family code (see [`format_code`]).
    pub format: u8,
    /// On-disk format generation the index was loaded from (1 or 2).
    pub format_version: u8,
    /// Served index generation: 0 at startup, bumped by every applied
    /// `UPDATE` hot-swap.
    pub epoch: u64,
    /// Whether this server accepts `UPDATE` frames.
    pub dynamic: bool,
    /// Delta label entries the served snapshot answers from the overlay
    /// (0 when a flat base is being served, always 0 on a static server).
    pub overlay_entries: u64,
    /// Background flatten generations completed since startup.
    pub flattens: u64,
    /// Whole seconds the server has been up.
    pub uptime_seconds: u64,
    /// Overlay size (delta label entries) at which the background
    /// flattener kicks in; 0 on a static server.
    pub flatten_threshold: u64,
}

/// Acknowledgement of an applied [`OP_UPDATE`] batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateAck {
    /// Served epoch after the batch (unchanged if nothing was applied).
    pub epoch: u64,
    /// Edges actually inserted.
    pub applied: u32,
    /// Self-loops and already-present edges skipped.
    pub skipped: u32,
    /// Microseconds spent applying the resumed-BFS delta.
    pub apply_us: u32,
    /// Microseconds spent flattening on the request path (0 under
    /// overlay-direct serving — the flatten is amortized off-path).
    pub flatten_us: u32,
    /// Microseconds spent snapshotting the overlay and publishing the
    /// new epoch (includes journaling the commit marker).
    pub publish_us: u32,
}

/// Wire code of an index family.
pub fn format_code(format: pll_core::IndexFormat) -> u8 {
    match format {
        pll_core::IndexFormat::Undirected => 0,
        pll_core::IndexFormat::Directed => 1,
        pll_core::IndexFormat::Weighted => 2,
        pll_core::IndexFormat::WeightedDirected => 3,
    }
}

/// A blocking client connection speaking the `pll serve` protocol. Used
/// by the load generator, the smoke tests and anything else that wants
/// programmatic access to a running server.
pub struct Client {
    stream: TcpStream,
}

/// Little-endian u32 at `off`. Callers validate the body length first;
/// indexing keeps response parsing free of `try_into().expect(…)`, which
/// the panic-hygiene audit bans from frame-handling paths.
fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Little-endian u64 at `off` (same contract as [`read_u32`]).
fn read_u64(b: &[u8], off: usize) -> u64 {
    let lo = read_u32(b, off) as u64;
    let hi = read_u32(b, off + 4) as u64;
    lo | (hi << 32)
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> Result<Client, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        write_frame(&mut self.stream, request)?;
        let response = read_frame(&mut self.stream)?
            .ok_or_else(|| ProtocolError::Malformed("connection closed mid-request".into()))?;
        let (&status, body) = response
            .split_first()
            .ok_or_else(|| ProtocolError::Malformed("empty response frame".into()))?;
        if status != STATUS_OK {
            return Err(ProtocolError::Server {
                status,
                message: String::from_utf8_lossy(body).into_owned(),
            });
        }
        Ok(body.to_vec())
    }

    /// Single-pair distance query; `None` when unreachable.
    pub fn query(&mut self, s: u32, t: u32) -> Result<Option<u64>, ProtocolError> {
        let mut req = Vec::with_capacity(9);
        req.push(OP_QUERY);
        req.extend_from_slice(&s.to_le_bytes());
        req.extend_from_slice(&t.to_le_bytes());
        let body = self.roundtrip(&req)?;
        if body.len() != 8 {
            return Err(ProtocolError::Malformed(format!(
                "QUERY response body of {} bytes, expected 8",
                body.len()
            )));
        }
        let d = read_u64(&body, 0);
        Ok((d != UNREACHABLE).then_some(d))
    }

    /// Batched distance query; one `Option<u64>` per input pair, in
    /// order.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<Option<u64>>, ProtocolError> {
        if pairs.len() > MAX_BATCH {
            return Err(ProtocolError::Malformed(format!(
                "batch of {} pairs exceeds the {MAX_BATCH}-pair cap",
                pairs.len()
            )));
        }
        let mut req = Vec::with_capacity(5 + pairs.len() * 8);
        req.push(OP_BATCH);
        req.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for &(s, t) in pairs {
            req.extend_from_slice(&s.to_le_bytes());
            req.extend_from_slice(&t.to_le_bytes());
        }
        let body = self.roundtrip(&req)?;
        if body.len() < 4 {
            return Err(ProtocolError::Malformed("short BATCH response".into()));
        }
        let count = read_u32(&body, 0) as usize;
        if count != pairs.len() || body.len() != 4 + count * 8 {
            return Err(ProtocolError::Malformed(format!(
                "BATCH response of {} bytes for {count} answers",
                body.len()
            )));
        }
        Ok(body[4..]
            .chunks_exact(8)
            .map(|c| {
                let d = read_u64(c, 0);
                (d != UNREACHABLE).then_some(d)
            })
            .collect())
    }

    /// Fetches the served index's metadata.
    pub fn info(&mut self) -> Result<IndexInfo, ProtocolError> {
        let body = self.roundtrip(&[OP_INFO])?;
        if body.len() != 51 {
            return Err(ProtocolError::Malformed(format!(
                "INFO response body of {} bytes, expected 51",
                body.len()
            )));
        }
        Ok(IndexInfo {
            num_vertices: read_u64(&body, 0),
            format: body[8],
            format_version: body[9],
            epoch: read_u64(&body, 10),
            dynamic: body[18] != 0,
            overlay_entries: read_u64(&body, 19),
            flattens: read_u64(&body, 27),
            uptime_seconds: read_u64(&body, 35),
            flatten_threshold: read_u64(&body, 43),
        })
    }

    /// Fetches a live metrics snapshot (the observability substrate's
    /// versioned wire encoding; every registered counter, gauge and
    /// histogram at one scrape instant).
    pub fn stats(&mut self) -> Result<pll_obs::Snapshot, ProtocolError> {
        let body = self.roundtrip(&[OP_STATS])?;
        pll_obs::Snapshot::decode(&body)
            .map_err(|why| ProtocolError::Malformed(format!("STATS response: {why}")))
    }

    /// Reconstructs one shortest path; `None` when the pair is
    /// disconnected. The server answers [`STATUS_UNSUPPORTED`] when the
    /// served index stores no parent pointers.
    pub fn path(&mut self, s: u32, t: u32) -> Result<Option<Vec<u32>>, ProtocolError> {
        let mut req = Vec::with_capacity(9);
        req.push(OP_PATH);
        req.extend_from_slice(&s.to_le_bytes());
        req.extend_from_slice(&t.to_le_bytes());
        let body = self.roundtrip(&req)?;
        if body.len() < 4 {
            return Err(ProtocolError::Malformed("short PATH response".into()));
        }
        let count = read_u32(&body, 0) as usize;
        if body.len() != 4 + count * 4 {
            return Err(ProtocolError::Malformed(format!(
                "PATH response of {} bytes for {count} vertices",
                body.len()
            )));
        }
        if count == 0 {
            return Ok(None); // reachable paths always have ≥ 1 vertex
        }
        Ok(Some(
            body[4..].chunks_exact(4).map(|c| read_u32(c, 0)).collect(),
        ))
    }

    /// Same-component (undirected) / reachability (directed) check.
    pub fn connected(&mut self, s: u32, t: u32) -> Result<bool, ProtocolError> {
        let mut req = Vec::with_capacity(9);
        req.push(OP_CONNECTED);
        req.extend_from_slice(&s.to_le_bytes());
        req.extend_from_slice(&t.to_le_bytes());
        let body = self.roundtrip(&req)?;
        if body.len() != 1 {
            return Err(ProtocolError::Malformed(format!(
                "CONNECTED response body of {} bytes, expected 1",
                body.len()
            )));
        }
        Ok(body[0] != 0)
    }

    /// Inserts edges into the served graph; on success the server has
    /// already hot-swapped to the acknowledged epoch (serving the delta
    /// overlay directly; the flatten happens in the background).
    pub fn update(&mut self, edges: &[(u32, u32)]) -> Result<UpdateAck, ProtocolError> {
        if edges.len() > MAX_BATCH {
            return Err(ProtocolError::Malformed(format!(
                "update of {} edges exceeds the {MAX_BATCH}-edge cap",
                edges.len()
            )));
        }
        let mut req = Vec::with_capacity(5 + edges.len() * 8);
        req.push(OP_UPDATE);
        req.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            req.extend_from_slice(&u.to_le_bytes());
            req.extend_from_slice(&v.to_le_bytes());
        }
        let body = self.roundtrip(&req)?;
        if body.len() != 28 {
            return Err(ProtocolError::Malformed(format!(
                "UPDATE response body of {} bytes, expected 28",
                body.len()
            )));
        }
        Ok(UpdateAck {
            epoch: read_u64(&body, 0),
            applied: read_u32(&body, 8),
            skipped: read_u32(&body, 12),
            apply_us: read_u32(&body, 16),
            flatten_us: read_u32(&body, 20),
            publish_us: read_u32(&body, 24),
        })
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        self.roundtrip(&[OP_SHUTDOWN]).map(|_| ())
    }
}

/// Backoff parameters for [`RetryClient`]: capped jittered exponential
/// backoff, the standard answer to a shedding server (retrying instantly
/// would re-flood it; synchronised retries would thundering-herd it).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up (first try included).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt; doubles per attempt.
    pub base_delay: std::time::Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: std::time::Duration,
    /// Seed for the jitter PRNG (vary per connection so concurrent
    /// clients desynchronise).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: std::time::Duration::from_millis(10),
            max_delay: std::time::Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): exponential in
    /// `attempt`, capped at `max_delay`, jittered uniformly into the upper
    /// half of the window so concurrent clients spread out.
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> std::time::Duration {
        let exp = self
            .base_delay
            .saturating_mul(
                1u32.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.max_delay);
        // splitmix64 step: good-enough jitter without a rand dependency.
        *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let nanos = exp.as_nanos() as u64;
        let jittered = nanos / 2 + (z % (nanos / 2 + 1));
        std::time::Duration::from_nanos(jittered)
    }

    /// Whether `error` is worth a reconnect-and-retry: `STATUS_BUSY` (the
    /// server shed us by design) and transport errors (connect refused
    /// mid-restart, connection reset by a shed or dying server). Other
    /// server statuses are deterministic rejections — retrying cannot
    /// change the answer.
    pub fn is_retryable(error: &ProtocolError) -> bool {
        match error {
            ProtocolError::Io(_) => true,
            ProtocolError::Server { status, .. } => *status == STATUS_BUSY,
            // A closed-mid-request connection is how a shed or restarting
            // server looks when the BUSY frame itself is lost.
            ProtocolError::Malformed(m) => m.contains("connection closed mid-request"),
        }
    }
}

/// Counters accumulated by a [`RetryClient`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryStats {
    /// Total retries performed (attempts beyond each operation's first).
    pub retries: u64,
    /// Retries caused specifically by a `STATUS_BUSY` shed.
    pub busy: u64,
    /// Retries caused by transport errors (connect/reset/closed).
    pub io: u64,
}

/// A [`Client`] wrapper that reconnects and retries shed or failed
/// operations with capped jittered exponential backoff. Safe for every
/// protocol op: queries are read-only and `UPDATE` is idempotent (an
/// already-inserted edge is skipped), so at-least-once delivery converges
/// to the same state.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    rng: u64,
    client: Option<Client>,
    stats: RetryStats,
}

impl RetryClient {
    /// Creates a lazy retrying client for `addr`; no connection is made
    /// until the first operation.
    pub fn new(addr: &str, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            policy,
            rng: policy.seed,
            client: None,
            stats: RetryStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    fn run<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ProtocolError>,
    ) -> Result<T, ProtocolError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.client.as_mut() {
                Some(client) => op(client),
                None => match Client::connect(&self.addr) {
                    Ok(mut client) => {
                        let result = op(&mut client);
                        self.client = Some(client);
                        result
                    }
                    Err(e) => Err(e),
                },
            };
            match result {
                Ok(value) => return Ok(value),
                Err(e) if RetryPolicy::is_retryable(&e) && attempt < self.policy.max_attempts => {
                    // The connection is in an unknown state (mid-frame,
                    // shed, reset): always reconnect.
                    self.client = None;
                    self.stats.retries += 1;
                    match &e {
                        ProtocolError::Server { .. } => self.stats.busy += 1,
                        _ => self.stats.io += 1,
                    }
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
                }
                Err(e) => {
                    self.client = None;
                    return Err(e);
                }
            }
        }
    }

    /// [`Client::query`] with retry.
    pub fn query(&mut self, s: u32, t: u32) -> Result<Option<u64>, ProtocolError> {
        self.run(|c| c.query(s, t))
    }

    /// [`Client::batch`] with retry.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<Option<u64>>, ProtocolError> {
        self.run(|c| c.batch(pairs))
    }

    /// [`Client::info`] with retry.
    pub fn info(&mut self) -> Result<IndexInfo, ProtocolError> {
        self.run(|c| c.info())
    }

    /// [`Client::stats`] (metrics snapshot) with retry.
    pub fn metrics_snapshot(&mut self) -> Result<pll_obs::Snapshot, ProtocolError> {
        self.run(|c| c.stats())
    }

    /// [`Client::path`] with retry.
    pub fn path(&mut self, s: u32, t: u32) -> Result<Option<Vec<u32>>, ProtocolError> {
        self.run(|c| c.path(s, t))
    }

    /// [`Client::connected`] with retry.
    pub fn connected(&mut self, s: u32, t: u32) -> Result<bool, ProtocolError> {
        self.run(|c| c.connected(s, t))
    }

    /// [`Client::update`] with retry (idempotent: re-delivered edges are
    /// skipped as already present).
    pub fn update(&mut self, edges: &[(u32, u32)]) -> Result<UpdateAck, ProtocolError> {
        self.run(|c| c.update(edges))
    }

    /// [`Client::shutdown_server`] with retry.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        self.run(|c| c.shutdown_server())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let got = read_frame(buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, b"hello");
        // Clean EOF at a boundary reads as None.
        assert!(read_frame(&b""[..]).unwrap().is_none());
        // Truncated payload is an error, not a hang or a panic.
        let truncated = &buf[..buf.len() - 2];
        assert!(read_frame(truncated).is_err());
        // Oversized length prefix is rejected before any allocation.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&huge[..]),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn backoff_is_capped_jittered_and_monotonic_in_expectation() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: std::time::Duration::from_millis(10),
            max_delay: std::time::Duration::from_millis(500),
            seed: 1,
        };
        let mut rng = policy.seed;
        for attempt in 1..=12 {
            let exp = policy
                .base_delay
                .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
                .min(policy.max_delay);
            let d = policy.backoff(attempt, &mut rng);
            assert!(d <= exp, "attempt {attempt}: {d:?} above the cap {exp:?}");
            assert!(
                d >= exp / 2,
                "attempt {attempt}: {d:?} below half the window {exp:?}"
            );
        }
        // Different seeds must produce different jitter (desynchronise
        // concurrent clients).
        let mut a = 1u64;
        let mut b = 2u64;
        assert_ne!(policy.backoff(3, &mut a), policy.backoff(3, &mut b));
    }

    #[test]
    fn retryable_classification() {
        assert!(RetryPolicy::is_retryable(&ProtocolError::Io(
            std::io::Error::other("reset")
        )));
        assert!(RetryPolicy::is_retryable(&ProtocolError::Server {
            status: STATUS_BUSY,
            message: "busy".into(),
        }));
        assert!(RetryPolicy::is_retryable(&ProtocolError::Malformed(
            "connection closed mid-request".into()
        )));
        assert!(!RetryPolicy::is_retryable(&ProtocolError::Server {
            status: STATUS_BAD_REQUEST,
            message: "bad".into(),
        }));
        assert!(!RetryPolicy::is_retryable(&ProtocolError::Malformed(
            "short BATCH response".into()
        )));
    }

    #[test]
    fn format_codes_are_stable() {
        assert_eq!(format_code(pll_core::IndexFormat::Undirected), 0);
        assert_eq!(format_code(pll_core::IndexFormat::Directed), 1);
        assert_eq!(format_code(pll_core::IndexFormat::Weighted), 2);
        assert_eq!(format_code(pll_core::IndexFormat::WeightedDirected), 3);
    }
}
