//! The `pll serve` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload. A request payload is one opcode byte plus its body; a
//! response payload is one status byte plus its body:
//!
//! ```text
//! request           body
//!   0x01 QUERY      u32 s, u32 t
//!   0x02 BATCH      u32 count, count × (u32 s, u32 t)
//!   0x03 INFO       —
//!   0x04 SHUTDOWN   —
//!   0x05 PATH       u32 s, u32 t
//!   0x06 CONNECTED  u32 s, u32 t
//!   0x07 UPDATE     u32 count, count × (u32 u, u32 v)
//!
//! response (status 0x00 = OK)     body
//!   QUERY                         u64 distance (u64::MAX = unreachable)
//!   BATCH                         u32 count, count × u64
//!   INFO                          u64 n, u8 format code, u8 format version,
//!                                 u64 epoch, u8 dynamic (1 = UPDATE enabled)
//!   SHUTDOWN                      —
//!   PATH                          u32 count, count × u32 vertex
//!                                 (count 0 = unreachable; paths have ≥ 1 vertex)
//!   CONNECTED                     u8 (1 = same component / reachable)
//!   UPDATE                        u64 epoch, u32 applied, u32 skipped
//! response (status != 0)          UTF-8 error message
//! ```
//!
//! Distances are widened to `u64` on the wire so one protocol covers the
//! unweighted (`u32`) and weighted (`u64`) index families;
//! [`UNREACHABLE`] marks a disconnected pair. Frames are capped at
//! [`MAX_FRAME_LEN`] and batches at [`MAX_BATCH`] so a malicious length
//! prefix cannot drive an allocation.
//!
//! `UPDATE` inserts edges into the served graph: the server applies them
//! to its dynamic overlay, flattens, and atomically swaps the served
//! index to a new *epoch* — in-flight requests finish on the old epoch,
//! subsequent ones see the new one, and `INFO` makes the swap observable
//! from the client side. Servers started without a graph (or over a
//! non-undirected index) answer `UPDATE` with
//! [`STATUS_UNSUPPORTED`].

use std::io::{Read, Write};
use std::net::TcpStream;

/// Single-pair distance query.
pub const OP_QUERY: u8 = 0x01;
/// Batched distance query.
pub const OP_BATCH: u8 = 0x02;
/// Index metadata (vertex count, family, format generation).
pub const OP_INFO: u8 = 0x03;
/// Ask the server to stop accepting connections and drain.
pub const OP_SHUTDOWN: u8 = 0x04;
/// Shortest-*path* reconstruction (undirected indices with parents).
pub const OP_PATH: u8 = 0x05;
/// Same-component / reachability check.
pub const OP_CONNECTED: u8 = 0x06;
/// Insert edges into the served graph and hot-swap to a new epoch.
pub const OP_UPDATE: u8 = 0x07;

/// Response status: success.
pub const STATUS_OK: u8 = 0x00;
/// Response status: malformed request frame.
pub const STATUS_BAD_REQUEST: u8 = 0x01;
/// Response status: the query itself failed (e.g. vertex out of range).
pub const STATUS_QUERY_ERROR: u8 = 0x02;
/// Response status: the op is not supported by the served index (PATH
/// without parents / non-undirected, UPDATE without `--graph`).
pub const STATUS_UNSUPPORTED: u8 = 0x03;

/// Wire marker for "unreachable" (`None` distances).
pub const UNREACHABLE: u64 = u64::MAX;

/// Upper bound on a frame payload (1 MiB headroom over [`MAX_BATCH`]).
pub const MAX_FRAME_LEN: u32 = (8 * MAX_BATCH + 1024) as u32;
/// Upper bound on pairs per batch request.
pub const MAX_BATCH: usize = 1 << 16;

/// Protocol-level failure on the client side.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure.
    Io(std::io::Error),
    /// The peer sent a malformed or oversized frame.
    Malformed(String),
    /// The server answered with an error status.
    Server {
        /// The response status byte.
        status: u8,
        /// The server's error message.
        message: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "I/O error: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtocolError::Server { status, message } => {
                write!(f, "server error (status {status}): {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary.
pub fn read_frame<R: Read>(mut r: R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Malformed(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Canonical answer-line formats shared by `pll query` (the offline
/// path) and `serve_load --answers-out` (the online path). The smoke
/// tests byte-diff the two outputs, so both sides MUST print through
/// these helpers — the contract is structural, not a comment.
pub mod answers {
    /// `s<TAB>t<TAB>d`, or `unreachable` for a disconnected pair.
    pub fn distance_line(s: u32, t: u32, d: Option<u64>) -> String {
        match d {
            Some(d) => format!("{s}\t{t}\t{d}"),
            None => format!("{s}\t{t}\tunreachable"),
        }
    }

    /// `s<TAB>t<TAB>v0 v1 … vk`, or `unreachable`.
    pub fn path_line(s: u32, t: u32, path: Option<&[u32]>) -> String {
        match path {
            Some(path) => {
                let joined: Vec<String> = path.iter().map(|v| v.to_string()).collect();
                format!("{s}\t{t}\t{}", joined.join(" "))
            }
            None => format!("{s}\t{t}\tunreachable"),
        }
    }

    /// `s<TAB>t<TAB>connected|disconnected`.
    pub fn connected_line(s: u32, t: u32, connected: bool) -> String {
        format!(
            "{s}\t{t}\t{}",
            if connected {
                "connected"
            } else {
                "disconnected"
            }
        )
    }
}

/// Index metadata returned by [`OP_INFO`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexInfo {
    /// Number of indexed vertices.
    pub num_vertices: u64,
    /// Index family code (see [`format_code`]).
    pub format: u8,
    /// On-disk format generation the index was loaded from (1 or 2).
    pub format_version: u8,
    /// Served index generation: 0 at startup, bumped by every applied
    /// `UPDATE` hot-swap.
    pub epoch: u64,
    /// Whether this server accepts `UPDATE` frames.
    pub dynamic: bool,
}

/// Acknowledgement of an applied [`OP_UPDATE`] batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateAck {
    /// Served epoch after the batch (unchanged if nothing was applied).
    pub epoch: u64,
    /// Edges actually inserted.
    pub applied: u32,
    /// Self-loops and already-present edges skipped.
    pub skipped: u32,
}

/// Wire code of an index family.
pub fn format_code(format: pll_core::IndexFormat) -> u8 {
    match format {
        pll_core::IndexFormat::Undirected => 0,
        pll_core::IndexFormat::Directed => 1,
        pll_core::IndexFormat::Weighted => 2,
        pll_core::IndexFormat::WeightedDirected => 3,
    }
}

/// A blocking client connection speaking the `pll serve` protocol. Used
/// by the load generator, the smoke tests and anything else that wants
/// programmatic access to a running server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> Result<Client, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        write_frame(&mut self.stream, request)?;
        let response = read_frame(&mut self.stream)?
            .ok_or_else(|| ProtocolError::Malformed("connection closed mid-request".into()))?;
        let (&status, body) = response
            .split_first()
            .ok_or_else(|| ProtocolError::Malformed("empty response frame".into()))?;
        if status != STATUS_OK {
            return Err(ProtocolError::Server {
                status,
                message: String::from_utf8_lossy(body).into_owned(),
            });
        }
        Ok(body.to_vec())
    }

    /// Single-pair distance query; `None` when unreachable.
    pub fn query(&mut self, s: u32, t: u32) -> Result<Option<u64>, ProtocolError> {
        let mut req = Vec::with_capacity(9);
        req.push(OP_QUERY);
        req.extend_from_slice(&s.to_le_bytes());
        req.extend_from_slice(&t.to_le_bytes());
        let body = self.roundtrip(&req)?;
        if body.len() != 8 {
            return Err(ProtocolError::Malformed(format!(
                "QUERY response body of {} bytes, expected 8",
                body.len()
            )));
        }
        let d = u64::from_le_bytes(body.try_into().expect("8 bytes"));
        Ok((d != UNREACHABLE).then_some(d))
    }

    /// Batched distance query; one `Option<u64>` per input pair, in
    /// order.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<Option<u64>>, ProtocolError> {
        if pairs.len() > MAX_BATCH {
            return Err(ProtocolError::Malformed(format!(
                "batch of {} pairs exceeds the {MAX_BATCH}-pair cap",
                pairs.len()
            )));
        }
        let mut req = Vec::with_capacity(5 + pairs.len() * 8);
        req.push(OP_BATCH);
        req.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for &(s, t) in pairs {
            req.extend_from_slice(&s.to_le_bytes());
            req.extend_from_slice(&t.to_le_bytes());
        }
        let body = self.roundtrip(&req)?;
        if body.len() < 4 {
            return Err(ProtocolError::Malformed("short BATCH response".into()));
        }
        let count = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
        if count != pairs.len() || body.len() != 4 + count * 8 {
            return Err(ProtocolError::Malformed(format!(
                "BATCH response of {} bytes for {count} answers",
                body.len()
            )));
        }
        Ok(body[4..]
            .chunks_exact(8)
            .map(|c| {
                let d = u64::from_le_bytes(c.try_into().expect("8 bytes"));
                (d != UNREACHABLE).then_some(d)
            })
            .collect())
    }

    /// Fetches the served index's metadata.
    pub fn info(&mut self) -> Result<IndexInfo, ProtocolError> {
        let body = self.roundtrip(&[OP_INFO])?;
        if body.len() != 19 {
            return Err(ProtocolError::Malformed(format!(
                "INFO response body of {} bytes, expected 19",
                body.len()
            )));
        }
        Ok(IndexInfo {
            num_vertices: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
            format: body[8],
            format_version: body[9],
            epoch: u64::from_le_bytes(body[10..18].try_into().expect("8 bytes")),
            dynamic: body[18] != 0,
        })
    }

    /// Reconstructs one shortest path; `None` when the pair is
    /// disconnected. The server answers [`STATUS_UNSUPPORTED`] when the
    /// served index stores no parent pointers.
    pub fn path(&mut self, s: u32, t: u32) -> Result<Option<Vec<u32>>, ProtocolError> {
        let mut req = Vec::with_capacity(9);
        req.push(OP_PATH);
        req.extend_from_slice(&s.to_le_bytes());
        req.extend_from_slice(&t.to_le_bytes());
        let body = self.roundtrip(&req)?;
        if body.len() < 4 {
            return Err(ProtocolError::Malformed("short PATH response".into()));
        }
        let count = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
        if body.len() != 4 + count * 4 {
            return Err(ProtocolError::Malformed(format!(
                "PATH response of {} bytes for {count} vertices",
                body.len()
            )));
        }
        if count == 0 {
            return Ok(None); // reachable paths always have ≥ 1 vertex
        }
        Ok(Some(
            body[4..]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        ))
    }

    /// Same-component (undirected) / reachability (directed) check.
    pub fn connected(&mut self, s: u32, t: u32) -> Result<bool, ProtocolError> {
        let mut req = Vec::with_capacity(9);
        req.push(OP_CONNECTED);
        req.extend_from_slice(&s.to_le_bytes());
        req.extend_from_slice(&t.to_le_bytes());
        let body = self.roundtrip(&req)?;
        if body.len() != 1 {
            return Err(ProtocolError::Malformed(format!(
                "CONNECTED response body of {} bytes, expected 1",
                body.len()
            )));
        }
        Ok(body[0] != 0)
    }

    /// Inserts edges into the served graph; on success the server has
    /// already flattened and hot-swapped to the acknowledged epoch.
    pub fn update(&mut self, edges: &[(u32, u32)]) -> Result<UpdateAck, ProtocolError> {
        if edges.len() > MAX_BATCH {
            return Err(ProtocolError::Malformed(format!(
                "update of {} edges exceeds the {MAX_BATCH}-edge cap",
                edges.len()
            )));
        }
        let mut req = Vec::with_capacity(5 + edges.len() * 8);
        req.push(OP_UPDATE);
        req.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            req.extend_from_slice(&u.to_le_bytes());
            req.extend_from_slice(&v.to_le_bytes());
        }
        let body = self.roundtrip(&req)?;
        if body.len() != 16 {
            return Err(ProtocolError::Malformed(format!(
                "UPDATE response body of {} bytes, expected 16",
                body.len()
            )));
        }
        Ok(UpdateAck {
            epoch: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
            applied: u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")),
            skipped: u32::from_le_bytes(body[12..16].try_into().expect("4 bytes")),
        })
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        self.roundtrip(&[OP_SHUTDOWN]).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let got = read_frame(buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, b"hello");
        // Clean EOF at a boundary reads as None.
        assert!(read_frame(&b""[..]).unwrap().is_none());
        // Truncated payload is an error, not a hang or a panic.
        let truncated = &buf[..buf.len() - 2];
        assert!(read_frame(truncated).is_err());
        // Oversized length prefix is rejected before any allocation.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&huge[..]),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn format_codes_are_stable() {
        assert_eq!(format_code(pll_core::IndexFormat::Undirected), 0);
        assert_eq!(format_code(pll_core::IndexFormat::Directed), 1);
        assert_eq!(format_code(pll_core::IndexFormat::Weighted), 2);
        assert_eq!(format_code(pll_core::IndexFormat::WeightedDirected), 3);
    }
}
