//! A concurrent TCP query service over a shared pruned landmark
//! labeling index — the serving half of the paper's story: once built,
//! the index answers each query from two contiguous regions in
//! microseconds, so one process can sustain heavy query traffic.
//!
//! Architecture (std-only, no async runtime):
//!
//! * the listener thread accepts connections and feeds them to a
//!   fixed-size worker pool over an `mpsc` channel;
//! * each worker owns one connection at a time and serves its stream of
//!   length-prefixed requests ([`protocol`]) against the served
//!   [`AnyIndex`] — zero-copy v2 indices are queried in place, so workers
//!   share one buffer with no per-query allocation beyond the response
//!   frame;
//! * the served index lives in an **epoch-tagged swap cell**
//!   ([`SwapCell`], an `ArcSwap`-style `RwLock<Arc<_>>`): every request
//!   pins one immutable snapshot, so an [`protocol::OP_UPDATE`] — which
//!   applies edge insertions to a [`pll_core::DynamicIndex`] overlay,
//!   flattens, and stores the new index — swaps **atomically**: requests
//!   in flight finish on the epoch they started on, later requests see
//!   the new epoch, and no connection is ever dropped. `INFO` reports
//!   the epoch, making hot-swaps observable from the client side;
//! * per-worker [`metrics::WorkerMetrics`] (relaxed atomics) record
//!   QPS, applied updates and a log₂ service-latency histogram;
//! * graceful shutdown: an [`protocol::OP_SHUTDOWN`] request (or
//!   [`ServerHandle::shutdown`]) stops the accept loop, drains queued
//!   connections, lets in-flight requests finish, and
//!   [`ServerHandle::join`] returns a [`metrics::ServerSummary`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;

use metrics::{summarize, ServerSummary, WorkerMetrics};
use pll_core::{AnyIndex, DynamicIndex};
use pll_graph::CsrGraph;
use protocol::{
    format_code, write_frame, ProtocolError, MAX_BATCH, OP_BATCH, OP_CONNECTED, OP_INFO, OP_PATH,
    OP_QUERY, OP_SHUTDOWN, OP_UPDATE, STATUS_BAD_REQUEST, STATUS_OK, STATUS_QUERY_ERROR,
    STATUS_UNSUPPORTED, UNREACHABLE,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How long a worker blocks on a quiet connection before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4717` (port 0 picks a free port;
    /// read the bound address back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per CPU).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4717".into(),
            threads: 0,
        }
    }
}

/// Errors starting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind or accept.
    Io(std::io::Error),
    /// Could not set up the dynamic-update state (wrong index family or
    /// a graph that does not match the index).
    Dynamic(pll_core::PllError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server I/O error: {e}"),
            ServeError::Dynamic(e) => write!(f, "cannot enable dynamic updates: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One served index generation: the epoch tag plus the immutable index
/// every request of that generation answers from.
#[derive(Debug)]
pub struct EpochIndex {
    /// Generation counter: 0 at startup, +1 per applied `UPDATE` swap.
    pub epoch: u64,
    /// The index served at this epoch.
    pub index: Arc<AnyIndex>,
}

/// An `ArcSwap`-style cell holding the currently served [`EpochIndex`].
///
/// Readers take a snapshot `Arc` (one brief read lock, then lock-free
/// use); a swap replaces the `Arc` under a write lock that is held only
/// for the pointer exchange. Requests already holding a snapshot keep
/// answering on their epoch — nothing blocks, nothing drops.
#[derive(Debug)]
pub struct SwapCell {
    inner: RwLock<Arc<EpochIndex>>,
}

impl SwapCell {
    /// Wraps `index` as epoch 0.
    pub fn new(index: Arc<AnyIndex>) -> SwapCell {
        SwapCell {
            inner: RwLock::new(Arc::new(EpochIndex { epoch: 0, index })),
        }
    }

    /// Pins the current generation.
    pub fn load(&self) -> Arc<EpochIndex> {
        Arc::clone(&self.inner.read().expect("swap cell poisoned"))
    }

    /// Atomically publishes `index` as generation `epoch`.
    pub fn store(&self, epoch: u64, index: Arc<AnyIndex>) {
        *self.inner.write().expect("swap cell poisoned") = Arc::new(EpochIndex { epoch, index });
    }
}

/// The dynamic-update overlay plus its health: a mid-batch failure
/// (e.g. an 8-bit distance overflow halfway through `apply`) leaves the
/// overlay partially updated, and flattening such state would publish a
/// *wrong* index — so the first failure poisons the updater and every
/// later `UPDATE` is refused while the already-published epochs keep
/// serving untouched.
struct UpdaterState {
    dynamic: DynamicIndex,
    poisoned: Option<String>,
}

/// State shared by every worker: the swap cell and, when the server was
/// started with the graph, the dynamic-update overlay behind a mutex
/// (updates serialise; queries never take it).
struct ServeShared {
    cell: SwapCell,
    updater: Option<Mutex<UpdaterState>>,
    flatten_threads: usize,
}

/// A running server: owns the listener and worker threads.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener_thread: std::thread::JoinHandle<()>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    worker_metrics: Arc<Vec<WorkerMetrics>>,
    shared: Arc<ServeShared>,
    started: Instant,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.worker_metrics.len()
    }

    /// Requests a graceful shutdown (same effect as a client sending
    /// [`OP_SHUTDOWN`]).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The currently served index generation (epoch 0 until the first
    /// applied `UPDATE`).
    pub fn current_epoch(&self) -> u64 {
        self.shared.cell.load().epoch
    }

    /// Whether this server accepts `UPDATE` frames.
    pub fn is_dynamic(&self) -> bool {
        self.shared.updater.is_some()
    }

    /// Waits for the accept loop and every worker to finish (i.e. until
    /// someone requests shutdown and in-flight connections drain), then
    /// returns the aggregated metrics.
    pub fn join(self) -> ServerSummary {
        self.listener_thread.join().expect("listener thread");
        for w in self.worker_threads {
            w.join().expect("worker thread");
        }
        summarize(
            &self.worker_metrics,
            self.started.elapsed().as_secs_f64(),
            self.shared.cell.load().epoch,
        )
    }
}

/// Starts a read-only service: binds `config.addr`, spawns the worker
/// pool and the accept loop, and returns immediately with a
/// [`ServerHandle`]. `UPDATE` frames answer
/// [`protocol::STATUS_UNSUPPORTED`]; use [`serve_dynamic`] with the
/// graph to enable them.
///
/// The index is shared read-only across workers; for a v2 (zero-copy)
/// index that means all workers answer from the same mapped buffer.
pub fn serve(index: Arc<AnyIndex>, config: &ServerConfig) -> Result<ServerHandle, ServeError> {
    serve_dynamic(index, None, config)
}

/// Starts the service with dynamic updates enabled when `graph` is
/// provided: `UPDATE` frames apply edge insertions to a
/// [`DynamicIndex`] overlay, flatten, and hot-swap the served index to
/// the next epoch while in-flight requests drain on the old one.
///
/// `graph` must be the (undirected) graph `index` was built from; the
/// overlay constructor rejects mismatches and non-undirected families.
/// Indices with parent pointers are rejected too: the post-update
/// flatten drops parents, so the first applied `UPDATE` would silently
/// turn `PATH` off mid-session — serve those read-only instead.
pub fn serve_dynamic(
    index: Arc<AnyIndex>,
    graph: Option<&CsrGraph>,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    let updater = match graph {
        Some(g) => {
            if index.supports_paths() {
                return Err(ServeError::Dynamic(pll_core::PllError::Unsupported {
                    message: "this index stores parent pointers, which dynamic updates \
                              cannot maintain (the post-update flatten drops them, \
                              disabling PATH mid-session); serve it without --graph, or \
                              rebuild without --store-parents to serve dynamically"
                        .into(),
                }));
            }
            Some(Mutex::new(UpdaterState {
                dynamic: DynamicIndex::new(Arc::clone(&index), g).map_err(ServeError::Dynamic)?,
                poisoned: None,
            }))
        }
        None => None,
    };
    let shared = Arc::new(ServeShared {
        cell: SwapCell::new(index),
        updater,
        flatten_threads: config.threads,
    });
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        config.threads
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let worker_metrics: Arc<Vec<WorkerMetrics>> =
        Arc::new((0..threads).map(|_| WorkerMetrics::default()).collect());

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_threads = Vec::with_capacity(threads);
    for worker_id in 0..threads {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&worker_metrics);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("pll-serve-{worker_id}"))
                .spawn(move || {
                    loop {
                        // Block on the shared queue; a closed channel
                        // (listener gone) ends the worker.
                        let conn = {
                            let guard = rx.lock().expect("connection queue poisoned");
                            guard.recv()
                        };
                        match conn {
                            Ok(stream) => {
                                serve_connection(&shared, stream, &metrics[worker_id], &shutdown);
                                metrics[worker_id]
                                    .connections
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }

    let listener_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("pll-serve-accept".into())
            .spawn(move || {
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // The accepted socket must be blocking even
                            // though the listener polls.
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
                // Dropping the sender ends every idle worker.
                drop(tx);
            })
            .expect("spawn listener")
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        listener_thread,
        worker_threads,
        worker_metrics,
        shared,
        started: Instant::now(),
    })
}

/// How long a peer may stall *inside* a frame before the connection is
/// declared dead. Distinct from [`READ_POLL`]: between frames a timeout
/// just means "idle, re-check shutdown", but once a frame has started a
/// stall means a broken or malicious peer.
const MID_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Reads one frame, polling the shutdown flag while the connection is
/// idle. Socket read timeouts are only ever allowed to fire *between*
/// frames: a plain timeout-driven `read_frame` loop would discard
/// partially-read bytes on a slow link and permanently desync the
/// stream, so the idle wait covers exactly the first byte of the length
/// prefix, and the rest of the frame is read under a single generous
/// deadline.
///
/// Returns `Ok(None)` on clean EOF or shutdown, `Err` on a dead or
/// misbehaving peer.
fn read_frame_shutdown_aware(
    reader: &mut std::io::BufReader<TcpStream>,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    use std::io::Read;
    // Phase 1: await the first byte of the length prefix (idle wait).
    let mut first = [0u8; 1];
    loop {
        match reader.read_exact(&mut first) {
            Ok(()) => break,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    // Phase 2: the frame has started — read the rest under one deadline.
    let _ = reader.get_ref().set_read_timeout(Some(MID_FRAME_TIMEOUT));
    let result = (|| {
        let mut rest = [0u8; 3];
        reader.read_exact(&mut rest)?;
        let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
        if len > protocol::MAX_FRAME_LEN {
            return Err(ProtocolError::Malformed(format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                protocol::MAX_FRAME_LEN
            )));
        }
        let mut payload = vec![0u8; len as usize];
        reader.read_exact(&mut payload)?;
        Ok(Some(payload))
    })();
    let _ = reader.get_ref().set_read_timeout(Some(READ_POLL));
    result
}

/// Serves one connection until EOF, a transport error, or shutdown.
fn serve_connection(
    shared: &ServeShared,
    stream: TcpStream,
    metrics: &WorkerMetrics,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let frame = match read_frame_shutdown_aware(&mut reader, shutdown) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF or shutdown while idle
            Err(_) => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        let started = Instant::now();
        let r = handle_request(shared, &frame, shutdown);
        if r.payload[0] != STATUS_OK {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if r.updates > 0 {
            metrics.updates.fetch_add(r.updates, Ordering::Relaxed);
        }
        if write_frame(&mut writer, &r.payload).is_err() {
            break;
        }
        metrics.record_request(started.elapsed().as_nanos() as u64, r.queries);
        if r.close {
            break;
        }
    }
}

fn error_response(status: u8, message: &str) -> Response {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(status);
    out.extend_from_slice(message.as_bytes());
    Response {
        payload: out,
        queries: 0,
        updates: 0,
        close: false,
    }
}

/// One dispatched request's outcome.
struct Response {
    /// Response frame payload (status byte first).
    payload: Vec<u8>,
    /// Distance/path/connectivity queries answered (for QPS metrics).
    queries: u64,
    /// UPDATE batches applied.
    updates: u64,
    /// Close the connection after responding.
    close: bool,
}

fn ok_response(payload: Vec<u8>, queries: u64) -> Response {
    Response {
        payload,
        queries,
        updates: 0,
        close: false,
    }
}

/// Maps a query-time error to its wire status.
fn query_error(e: pll_core::PllError) -> Response {
    use pll_core::PllError;
    let status = match &e {
        PllError::Unsupported { .. } | PllError::ParentsNotStored => STATUS_UNSUPPORTED,
        _ => STATUS_QUERY_ERROR,
    };
    error_response(status, &e.to_string())
}

/// Dispatches one request frame against a pinned snapshot of the served
/// index. Every op except `UPDATE` runs on the snapshot alone; `UPDATE`
/// takes the updater mutex, applies + flattens, and publishes the next
/// epoch to the swap cell.
fn handle_request(shared: &ServeShared, frame: &[u8], shutdown: &AtomicBool) -> Response {
    let Some((&op, body)) = frame.split_first() else {
        return error_response(STATUS_BAD_REQUEST, "empty request frame");
    };
    let snapshot = shared.cell.load();
    let index = &*snapshot.index;
    let pair = |body: &[u8]| -> (u32, u32) {
        (
            u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")),
        )
    };
    match op {
        OP_QUERY => {
            if body.len() != 8 {
                return error_response(STATUS_BAD_REQUEST, "QUERY body must be 8 bytes");
            }
            let (s, t) = pair(body);
            match index.try_distance(s, t) {
                Ok(d) => {
                    let mut out = Vec::with_capacity(9);
                    out.push(STATUS_OK);
                    out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes());
                    ok_response(out, 1)
                }
                Err(e) => query_error(e),
            }
        }
        OP_BATCH => {
            if body.len() < 4 {
                return error_response(STATUS_BAD_REQUEST, "BATCH body too short");
            }
            let count = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
            if count > MAX_BATCH || body.len() != 4 + count * 8 {
                return error_response(STATUS_BAD_REQUEST, "BATCH count disagrees with body");
            }
            let mut out = Vec::with_capacity(5 + count * 8);
            out.push(STATUS_OK);
            out.extend_from_slice(&(count as u32).to_le_bytes());
            for chunk in body[4..].chunks_exact(8) {
                let (s, t) = pair(chunk);
                match index.try_distance(s, t) {
                    Ok(d) => out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes()),
                    Err(e) => return query_error(e),
                }
            }
            ok_response(out, count as u64)
        }
        OP_PATH => {
            if body.len() != 8 {
                return error_response(STATUS_BAD_REQUEST, "PATH body must be 8 bytes");
            }
            let (s, t) = pair(body);
            match index.shortest_path(s, t) {
                Ok(path) => {
                    let path = path.unwrap_or_default();
                    let mut out = Vec::with_capacity(5 + path.len() * 4);
                    out.push(STATUS_OK);
                    out.extend_from_slice(&(path.len() as u32).to_le_bytes());
                    for v in path {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    ok_response(out, 1)
                }
                Err(e) => query_error(e),
            }
        }
        OP_CONNECTED => {
            if body.len() != 8 {
                return error_response(STATUS_BAD_REQUEST, "CONNECTED body must be 8 bytes");
            }
            let (s, t) = pair(body);
            match index.try_connected(s, t) {
                Ok(c) => ok_response(vec![STATUS_OK, c as u8], 1),
                Err(e) => query_error(e),
            }
        }
        OP_UPDATE => {
            if body.len() < 4 {
                return error_response(STATUS_BAD_REQUEST, "UPDATE body too short");
            }
            let count = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
            if count > MAX_BATCH || body.len() != 4 + count * 8 {
                return error_response(STATUS_BAD_REQUEST, "UPDATE count disagrees with body");
            }
            let Some(updater) = &shared.updater else {
                return error_response(
                    STATUS_UNSUPPORTED,
                    "server was started without the graph (pll serve --graph) or over a \
                     non-undirected index; UPDATE is disabled",
                );
            };
            let edges: Vec<(u32, u32)> = body[4..].chunks_exact(8).map(pair).collect();
            // Updates serialise on the mutex; queries keep flowing on
            // the snapshot they pinned.
            let mut state = updater.lock().expect("updater mutex poisoned");
            if let Some(why) = &state.poisoned {
                return error_response(
                    STATUS_UNSUPPORTED,
                    &format!(
                        "updates disabled: an earlier UPDATE failed mid-batch and left \
                         the overlay inconsistent ({why}); already-published epochs keep \
                         serving — rebuild and restart to update again"
                    ),
                );
            }
            let stats = match state.dynamic.apply(&edges) {
                Ok(stats) => stats,
                Err(e) => {
                    // A failed apply may have mutated part of the
                    // overlay; never flatten/publish it again.
                    state.poisoned = Some(e.to_string());
                    return query_error(e);
                }
            };
            if stats.edges_applied > 0 {
                let flat = match state.dynamic.flatten(shared.flatten_threads) {
                    Ok(flat) => flat,
                    Err(e) => {
                        state.poisoned = Some(e.to_string());
                        return query_error(e);
                    }
                };
                shared
                    .cell
                    .store(state.dynamic.epoch(), Arc::new(AnyIndex::Undirected(flat)));
            }
            let epoch = state.dynamic.epoch();
            drop(state);
            let mut out = Vec::with_capacity(17);
            out.push(STATUS_OK);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&(stats.edges_applied as u32).to_le_bytes());
            out.extend_from_slice(&(stats.edges_skipped as u32).to_le_bytes());
            Response {
                payload: out,
                queries: 0,
                updates: u64::from(stats.edges_applied > 0),
                close: false,
            }
        }
        OP_INFO => {
            let mut out = Vec::with_capacity(20);
            out.push(STATUS_OK);
            out.extend_from_slice(&(index.num_vertices() as u64).to_le_bytes());
            out.push(format_code(index.format()));
            out.push(index.format_version());
            out.extend_from_slice(&snapshot.epoch.to_le_bytes());
            out.push(shared.updater.is_some() as u8);
            ok_response(out, 0)
        }
        OP_SHUTDOWN => {
            shutdown.store(true, Ordering::SeqCst);
            Response {
                payload: vec![STATUS_OK],
                queries: 0,
                updates: 0,
                close: true,
            }
        }
        other => error_response(STATUS_BAD_REQUEST, &format!("unknown opcode {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_core::IndexBuilder;
    use pll_graph::gen;
    use protocol::read_frame;

    fn served_index() -> Arc<AnyIndex> {
        // Round-trip through the v2 format so the server exercises the
        // zero-copy path, exactly as `pll serve` does.
        let g = gen::barabasi_albert(120, 3, 9).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let mut buf = Vec::new();
        pll_core::v2::save_v2_index(&idx, &mut buf).unwrap();
        let aligned = std::sync::Arc::new(pll_core::AlignedBytes::from_bytes(&buf));
        Arc::new(pll_core::v2::open_v2_bytes(aligned).unwrap())
    }

    fn start(threads: usize) -> (ServerHandle, Arc<AnyIndex>) {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads,
            },
        )
        .unwrap();
        (handle, index)
    }

    #[test]
    fn serves_singles_batches_info_and_shuts_down() {
        let (handle, index) = start(2);
        assert_eq!(handle.num_workers(), 2);
        let addr = handle.local_addr().to_string();
        let mut client = protocol::Client::connect(&addr).unwrap();

        let info = client.info().unwrap();
        assert_eq!(info.num_vertices, 120);
        assert_eq!(info.format, 0);
        assert_eq!(info.format_version, 2);
        assert_eq!(info.epoch, 0);
        assert!(!info.dynamic, "no graph given, updates disabled");

        let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, (i * 7 + 3) % 120)).collect();
        for &(s, t) in &pairs[..10] {
            assert_eq!(
                client.query(s, t).unwrap(),
                index.distance(s, t),
                "single ({s}, {t})"
            );
        }
        let answers = client.batch(&pairs).unwrap();
        for (&(s, t), got) in pairs.iter().zip(&answers) {
            assert_eq!(*got, index.distance(s, t), "batch ({s}, {t})");
        }

        // Out-of-range queries answer an error status, not a hangup.
        let err = client.query(0, 10_000).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Server {
                status: STATUS_QUERY_ERROR,
                ..
            }
        ));
        // The connection is still usable afterwards.
        assert_eq!(client.query(0, 1).unwrap(), index.distance(0, 1));

        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert!(summary.queries >= 51);
        assert!(summary.requests >= 13);
        assert_eq!(summary.errors, 1);
        assert!(summary.qps > 0.0);
        assert!(summary.p99_us > 0.0);
        assert_eq!(summary.workers.len(), 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let (handle, index) = start(4);
        let addr = handle.local_addr().to_string();
        let mut joins = Vec::new();
        for c in 0..4u32 {
            let addr = addr.clone();
            let index = Arc::clone(&index);
            joins.push(std::thread::spawn(move || {
                let mut client = protocol::Client::connect(&addr).unwrap();
                let pairs: Vec<(u32, u32)> = (0..200u32)
                    .map(|i| ((i + c * 31) % 120, (i * 17 + c) % 120))
                    .collect();
                let answers = client.batch(&pairs).unwrap();
                for (&(s, t), got) in pairs.iter().zip(&answers) {
                    assert_eq!(*got, index.distance(s, t), "client {c} pair ({s}, {t})");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.queries, 4 * 200);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn path_connected_and_update_ops() {
        // A parents index serves PATH; CONNECTED works everywhere; an
        // UPDATE without --graph answers UNSUPPORTED.
        let g = pll_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let index = Arc::new(AnyIndex::Undirected(idx));
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
            },
        )
        .unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();

        assert_eq!(client.path(0, 3).unwrap(), Some(vec![0, 1, 2, 3]));
        assert_eq!(client.path(2, 2).unwrap(), Some(vec![2]));
        assert_eq!(client.path(0, 5).unwrap(), None, "disconnected pair");
        assert!(client.connected(0, 3).unwrap());
        assert!(!client.connected(0, 4).unwrap());
        assert!(client.connected(5, 5).unwrap());
        // Out-of-range endpoints: QUERY_ERROR, connection stays usable.
        assert!(matches!(
            client.connected(0, 99).unwrap_err(),
            ProtocolError::Server {
                status: STATUS_QUERY_ERROR,
                ..
            }
        ));
        // UPDATE on a static server: UNSUPPORTED, connection usable.
        assert!(matches!(
            client.update(&[(0, 3)]).unwrap_err(),
            ProtocolError::Server {
                status: STATUS_UNSUPPORTED,
                ..
            }
        ));
        assert_eq!(client.query(0, 3).unwrap(), Some(3));
        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert_eq!(summary.final_epoch, 0);
        assert_eq!(summary.updates, 0);
        assert_eq!(summary.errors, 2);
    }

    #[test]
    fn parents_index_cannot_be_served_dynamically() {
        // The post-update flatten drops parent pointers, which would
        // silently turn PATH off mid-session — so --graph over a
        // parents index must be refused at startup, not discovered by
        // a failing client later.
        let g = pll_graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let err = match serve_dynamic(
            Arc::new(AnyIndex::Undirected(idx)),
            Some(&g),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("parents + --graph must be refused"),
        };
        assert!(matches!(err, ServeError::Dynamic(_)), "got {err}");
        assert!(err.to_string().contains("parent pointers"));
    }

    #[test]
    fn update_hot_swaps_epochs_under_concurrent_queries() {
        // Start a dynamic server over a ring missing its chords, hammer
        // it with query threads while the main thread applies UPDATE
        // batches, and require (a) zero transport/query errors — no
        // connection is dropped by a swap — and (b) post-swap answers
        // equal to a from-scratch rebuild on the updated graph.
        let n = 60u32;
        let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let chords: Vec<(u32, u32)> = (0..n / 2).step_by(5).map(|i| (i, i + n / 2)).collect();
        let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(2)
            .build(&g)
            .unwrap();
        let index = Arc::new(AnyIndex::Undirected(idx));
        let handle = serve_dynamic(
            Arc::clone(&index),
            Some(&g),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
            },
        )
        .unwrap();
        assert!(handle.is_dynamic());
        assert_eq!(handle.current_epoch(), 0);
        let addr = handle.local_addr().to_string();

        let stop = Arc::new(AtomicBool::new(false));
        let mut query_threads = Vec::new();
        for c in 0..2u32 {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            query_threads.push(std::thread::spawn(move || {
                let mut client = protocol::Client::connect(&addr).unwrap();
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let pairs: Vec<(u32, u32)> = (0..32u32)
                        .map(|i| ((i * 7 + c) % n, (i * 13 + 5) % n))
                        .collect();
                    // Distances may shrink mid-loop (that is the point);
                    // the transport must never error.
                    let answers = client.batch(&pairs).unwrap();
                    assert!(answers.iter().all(|d| d.is_some()), "ring is connected");
                    served += answers.len() as u64;
                }
                served
            }));
        }

        let mut control = protocol::Client::connect(&addr).unwrap();
        let info0 = control.info().unwrap();
        assert!(info0.dynamic);
        assert_eq!(info0.epoch, 0);
        for (i, chunk) in chords.chunks(3).enumerate() {
            let ack = control.update(chunk).unwrap();
            assert_eq!(ack.applied as usize, chunk.len());
            assert_eq!(ack.skipped, 0);
            assert_eq!(ack.epoch, i as u64 + 1);
        }
        // Re-applying the same edges is a visible no-op.
        let ack = control.update(&chords).unwrap();
        assert_eq!(ack.applied, 0);
        assert_eq!(ack.skipped as usize, chords.len());
        let epochs = chords.chunks(3).count() as u64;
        assert_eq!(ack.epoch, epochs);
        let info1 = control.info().unwrap();
        assert_eq!(info1.epoch, epochs, "INFO observes the hot-swap");
        assert_eq!(handle.current_epoch(), epochs);

        stop.store(true, Ordering::SeqCst);
        for t in query_threads {
            assert!(t.join().unwrap() > 0);
        }

        // Post-swap answers equal a from-scratch rebuild of the updated
        // graph.
        let mut full = ring.clone();
        full.extend_from_slice(&chords);
        let updated = pll_graph::CsrGraph::from_edges(n as usize, &full).unwrap();
        let rebuilt = pll_core::IndexBuilder::new()
            .bit_parallel_roots(2)
            .build(&updated)
            .unwrap();
        for s in 0..n {
            for t in (0..n).step_by(7) {
                assert_eq!(
                    control.query(s, t).unwrap(),
                    rebuilt.distance(s, t).map(u64::from),
                    "post-swap pair ({s}, {t})"
                );
            }
        }
        control.shutdown_server().unwrap();
        let summary = handle.join();
        assert_eq!(summary.errors, 0, "no dropped connections, no errors");
        assert_eq!(summary.updates, epochs);
        assert_eq!(summary.final_epoch, epochs);
    }

    #[test]
    fn malformed_frames_get_bad_request() {
        let (handle, _index) = start(1);
        let addr = handle.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Unknown opcode.
        write_frame(&mut stream, &[0xEE]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        // Short QUERY body.
        write_frame(&mut stream, &[OP_QUERY, 1, 2]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        // Empty frame.
        write_frame(&mut stream, &[]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        drop(stream);
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.errors, 3);
    }
}
