//! A concurrent TCP query service over a shared pruned landmark
//! labeling index — the serving half of the paper's story: once built,
//! the index answers each query from two contiguous regions in
//! microseconds, so one process can sustain heavy query traffic.
//!
//! Architecture (std-only, no async runtime):
//!
//! * the listener thread accepts connections and feeds them to a
//!   fixed-size worker pool over an `mpsc` channel;
//! * each worker owns one connection at a time and serves its stream of
//!   length-prefixed requests ([`protocol`]) against the served
//!   [`AnyIndex`] — zero-copy v2 indices are queried in place, so workers
//!   share one buffer with no per-query allocation beyond the response
//!   frame;
//! * the served index lives in an **epoch-tagged swap cell**
//!   ([`SwapCell`], an `ArcSwap`-style `RwLock<Arc<_>>`): every request
//!   pins one immutable snapshot — either a flat base index or a frozen
//!   **delta-overlay snapshot** ([`Served`]) — so an
//!   [`protocol::OP_UPDATE`] swaps **atomically**: requests in flight
//!   finish on the epoch they started on, later requests see the new
//!   epoch, and no connection is ever dropped. `INFO` reports the
//!   epoch, making hot-swaps observable from the client side;
//! * `UPDATE` is **overlay-direct**: a batch applies the resumed-BFS
//!   delta to the [`pll_core::DynamicIndex`], publishes a frozen
//!   [`pll_core::OverlaySnapshot`] (queries answer via the base⊕delta
//!   merge-join), and acks — no flatten on the request path, so batch
//!   latency is proportional to the delta, not the index. A dedicated
//!   **flattener thread**, fed by a bounded nudge channel, folds the
//!   overlay into a fresh flat base off-path once it crosses
//!   [`ServerConfig::flatten_threshold`] delta entries (or a WAL
//!   snapshot falls due), rebases the live overlay onto it, and swaps
//!   the result in — `UPDATE` and `QUERY` workers never stall on a
//!   flatten;
//! * per-worker answer caches are invalidated by **per-vertex
//!   generations** ([`cache`]): an `UPDATE` only expires cached pairs
//!   whose endpoints its delta touched, so the hit rate survives
//!   epoch-per-batch serving;
//! * per-worker [`metrics::WorkerMetrics`] (relaxed atomics) record
//!   QPS, applied updates and a log₂ service-latency histogram;
//! * graceful shutdown: an [`protocol::OP_SHUTDOWN`] request (or
//!   [`ServerHandle::shutdown`]) stops the accept loop, drains queued
//!   connections, lets in-flight requests finish, and
//!   [`ServerHandle::join`] returns a [`metrics::ServerSummary`];
//! * durability ([`WalConfig`]): every `UPDATE` batch is validated and
//!   then journaled to an fsync'd write-ahead log ([`pll_core::wal`])
//!   *before* it applies — validation first, so only batches guaranteed
//!   to replay are made durable — and marked committed after its epoch
//!   publishes; startup replays the log so a `kill -9`'d server answers
//!   identically after restart, a record that still fails to replay (a
//!   foreign or hand-edited WAL) degrades the server to read-only
//!   serving instead of refusing to start, and periodic
//!   snapshot-compaction atomically persists the flattened index and
//!   resets the log;
//! * overload protection: a bounded hand-off queue sheds excess
//!   connections with [`protocol::STATUS_BUSY`] instead of stalling the
//!   accept loop; per-connection write timeouts drop dead peers; worker
//!   panics are caught and the swap cell / updater recover their locks,
//!   so one bad connection cannot wedge the server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod protocol;

use cache::AnswerCache;
use metrics::{summarize, ServeCounters, ServerSummary, WorkerMetrics};
use pll_core::wal::{self, WalRecord, WalWriter};
use pll_core::{fail, AnyIndex, DynamicIndex, OverlaySnapshot};
use pll_graph::CsrGraph;
use pll_obs::{EventKind, FlightRecorder, Registry};
use protocol::{
    format_code, write_frame, ProtocolError, MAX_BATCH, OP_BATCH, OP_CONNECTED, OP_INFO, OP_PATH,
    OP_QUERY, OP_SHUTDOWN, OP_STATS, OP_UPDATE, STATUS_BAD_REQUEST, STATUS_BUSY, STATUS_OK,
    STATUS_QUERY_ERROR, STATUS_UNSUPPORTED, UNREACHABLE,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// How long a worker blocks on a quiet connection before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4717` (port 0 picks a free port;
    /// read the bound address back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per CPU).
    pub threads: usize,
    /// Accepted connections queued for a free worker before new arrivals
    /// are shed with [`STATUS_BUSY`] (0 = `4 × workers + 16`). Bounding
    /// the hand-off queue is the overload valve: without it a flood
    /// queues unboundedly and every client stalls instead of a few being
    /// told to back off.
    pub max_pending: usize,
    /// Per-connection socket write timeout: a peer that stops reading
    /// (dead, or slow-loris-ing the response path) is disconnected
    /// instead of pinning its worker forever.
    pub write_timeout: Duration,
    /// How long a peer may stall *inside* a started frame before the
    /// connection is declared dead. Distinct from the idle read poll:
    /// between frames a timeout just means "idle, re-check shutdown",
    /// but once a frame has started a stall means a broken, dead or
    /// slow-loris peer.
    pub mid_frame_timeout: Duration,
    /// Durability: journal `UPDATE` batches to a write-ahead log and
    /// periodically snapshot-compact. Requires a dynamic server (a
    /// graph passed to [`serve_dynamic`]).
    pub wal: Option<WalConfig>,
    /// Background-flatten trigger: once the served overlay holds at
    /// least this many delta label entries, the flattener thread folds
    /// it into a fresh flat base off the request path. `1` flattens
    /// after every batch (0 is treated as 1); `u64::MAX` ("never")
    /// serves the overlay indefinitely. `None` picks an adaptive
    /// default — a quarter of the base index's label entries, floored
    /// at 1024 — so a flatten pass (whose cost is proportional to the
    /// base) only runs once the overlay has grown enough to amortize
    /// it, instead of contending with every batch for CPU. Only
    /// meaningful on a dynamic server.
    pub flatten_threshold: Option<u64>,
    /// Observability sidecar: when set, a `pll-obs` HTTP exporter binds
    /// this address and answers `GET /metrics` with the Prometheus
    /// rendering of the server's registry (port 0 picks a free port;
    /// read it back from [`ServerHandle::metrics_addr`]). The wire
    /// `STATS` op serves the same registry without the sidecar.
    pub metrics_addr: Option<String>,
    /// When set, every flight-recorder event is also appended to this
    /// file as one JSON line (the `pll serve --trace-log` tee).
    pub trace_log: Option<PathBuf>,
    /// Requests slower than this are counted
    /// (`pll_slow_requests_total`) and logged to the flight recorder.
    pub slow_request_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4717".into(),
            threads: 0,
            max_pending: 0,
            write_timeout: Duration::from_secs(10),
            mid_frame_timeout: MID_FRAME_TIMEOUT,
            wal: None,
            flatten_threshold: None,
            metrics_addr: None,
            trace_log: None,
            slow_request_threshold: Duration::from_millis(100),
        }
    }
}

/// Durability configuration for a dynamic server.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// The write-ahead log file (created if missing; replayed if found).
    pub wal_path: PathBuf,
    /// The served index file. Recovery fingerprints it to check the WAL
    /// belongs to it, and snapshot-compaction atomically rewrites it.
    pub index_path: PathBuf,
    /// Snapshot-compact after this many published batches (0 = never):
    /// the flattened index is written atomically and the WAL is reset to
    /// a single `Rebase` record, bounding both recovery time and log
    /// growth.
    pub snapshot_every: u64,
}

/// What WAL recovery did at startup.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Complete `Update` records replayed through the overlay.
    pub replayed_batches: u64,
    /// Edges those batches actually inserted on replay.
    pub replayed_edges: u64,
    /// Replayed records that had no commit marker (journaled, then the
    /// crash hit before — or just after — the epoch published). Replay
    /// applies them anyway: journaling happens before apply, so an
    /// uncommitted record is at-least-once delivery of an acknowledged
    /// request, and re-inserting an existing edge is skipped.
    pub uncommitted_batches: u64,
    /// Edges replayed from a snapshot `Rebase` record (0 unless the
    /// crash landed between a WAL reset and its snapshot rename).
    pub rebase_edges: u64,
    /// Torn-tail bytes truncated from the log (a crash mid-append).
    pub truncated_bytes: u64,
    /// Served epoch after replay — identical to the pre-crash epoch,
    /// because replay is deterministic.
    pub recovered_epoch: u64,
    /// Wall-clock seconds recovery took (replay + flatten).
    pub seconds: f64,
    /// Set when replay stopped early because a record failed to apply
    /// (a WAL written by a different build, or hand-edited). The server
    /// still starts and answers queries from the state recovered before
    /// the failing record; the updater is poisoned, so further `UPDATE`s
    /// are refused until the WAL is repaired or removed.
    pub replay_error: Option<String>,
}

/// Errors starting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind or accept.
    Io(std::io::Error),
    /// Could not set up the dynamic-update state (wrong index family or
    /// a graph that does not match the index).
    Dynamic(pll_core::PllError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server I/O error: {e}"),
            ServeError::Dynamic(e) => write!(f, "cannot enable dynamic updates: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// What a generation serves: a flat base index, or a frozen delta
/// overlay (base ⊕ delta answered by the merge-join kernel).
///
/// Overlay-direct serving is what keeps `UPDATE` latency proportional
/// to the delta: a batch publishes an [`OverlaySnapshot`] immediately
/// and the expensive flatten happens in the background, after which the
/// flattener swaps a `Flat` generation back in. Both variants answer
/// identically — the flatten is proven answer-preserving — so a request
/// never observes which side of the pipeline it landed on.
#[derive(Clone, Debug)]
pub enum Served {
    /// A flat index: every label lives in one contiguous store.
    Flat(Arc<AnyIndex>),
    /// A frozen overlay: base labels merged with a delta at query time.
    Overlay(Arc<OverlaySnapshot>),
}

impl Served {
    /// The underlying flat base (for an overlay: the base it extends).
    pub fn base(&self) -> &Arc<AnyIndex> {
        match self {
            Served::Flat(index) => index,
            Served::Overlay(snap) => snap.base(),
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            Served::Flat(index) => index.num_vertices(),
            Served::Overlay(snap) => snap.num_vertices(),
        }
    }

    /// Delta label entries answered from the overlay (0 when flat).
    pub fn overlay_entries(&self) -> u64 {
        match self {
            Served::Flat(_) => 0,
            Served::Overlay(snap) => snap.delta_entries() as u64,
        }
    }

    /// Exact distance on the wire scale (`None` = disconnected).
    pub fn try_distance(&self, s: u32, t: u32) -> Result<Option<u64>, pll_core::PllError> {
        match self {
            Served::Flat(index) => index.try_distance(s, t),
            Served::Overlay(snap) => Ok(snap.try_distance(s, t)?.map(u64::from)),
        }
    }

    /// Same-component check with range validation.
    pub fn try_connected(&self, s: u32, t: u32) -> Result<bool, pll_core::PllError> {
        match self {
            Served::Flat(index) => index.try_connected(s, t),
            Served::Overlay(snap) => Ok(snap.try_distance(s, t)?.is_some()),
        }
    }

    /// Shortest-path reconstruction. Overlay generations never store
    /// parent pointers (dynamic serving rejects parents indices at
    /// startup), so they answer the same error a parentless flat index
    /// does.
    pub fn shortest_path(&self, s: u32, t: u32) -> Result<Option<Vec<u32>>, pll_core::PllError> {
        match self {
            Served::Flat(index) => index.shortest_path(s, t),
            Served::Overlay(_) => Err(pll_core::PllError::ParentsNotStored),
        }
    }

    /// Warms the caches for an upcoming query; overlays prefetch their
    /// base labels (the delta is small and hot by construction).
    pub fn prefetch_query(&self, s: u32, t: u32) {
        self.base().prefetch_query(s, t);
    }
}

/// One served index generation: the epoch tag plus the immutable
/// snapshot every request of that generation answers from.
#[derive(Debug)]
pub struct EpochIndex {
    /// Generation counter: 0 at startup, +1 per applied `UPDATE` swap.
    pub epoch: u64,
    /// What this epoch serves (flat base or frozen overlay).
    pub served: Served,
}

/// An `ArcSwap`-style cell holding the currently served [`EpochIndex`].
///
/// Readers take a snapshot `Arc` (one brief read lock, then lock-free
/// use); a swap replaces the `Arc` under a write lock that is held only
/// for the pointer exchange. Requests already holding a snapshot keep
/// answering on their epoch — nothing blocks, nothing drops.
#[derive(Debug)]
pub struct SwapCell {
    inner: RwLock<Arc<EpochIndex>>,
}

impl SwapCell {
    /// Wraps `index` as a flat epoch 0.
    pub fn new(index: Arc<AnyIndex>) -> SwapCell {
        SwapCell {
            inner: RwLock::new(Arc::new(EpochIndex {
                epoch: 0,
                served: Served::Flat(index),
            })),
        }
    }

    /// Pins the current generation.
    ///
    /// Lock poisoning is deliberately ignored: the protected value is a
    /// single `Arc` pointer, which is replaced atomically and is
    /// therefore consistent no matter where a holder panicked — so one
    /// panicking worker must not cascade into every later connection
    /// dying on an `expect`.
    pub fn load(&self) -> Arc<EpochIndex> {
        let guard = self
            .inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(&guard)
    }

    /// Atomically publishes `served` as generation `epoch`. Recovers
    /// from a poisoned lock for the same reason as [`SwapCell::load`].
    pub fn store(&self, epoch: u64, served: Served) {
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard = Arc::new(EpochIndex { epoch, served });
    }
}

/// The dynamic-update overlay plus its health: a mid-batch failure
/// (e.g. an 8-bit distance overflow halfway through `apply`) leaves the
/// overlay partially updated, and flattening such state would publish a
/// *wrong* index — so the first failure poisons the updater and every
/// later `UPDATE` is refused while the already-published epochs keep
/// serving untouched.
struct UpdaterState {
    dynamic: DynamicIndex,
    poisoned: Option<String>,
    wal: Option<WalState>,
}

/// Mutable durability state, living inside the updater mutex so WAL
/// appends, applies and publishes stay ordered.
struct WalState {
    writer: WalWriter,
    config: WalConfig,
    /// Fingerprint of the index file generation currently on disk;
    /// recorded as `prev_fingerprint` at the next snapshot so recovery
    /// can identify a crash between WAL reset and snapshot rename.
    fingerprint: u64,
    /// Sequence number the next `Update` record will get (0-based,
    /// counting `Update` records since the last WAL reset).
    next_seq: u64,
    /// Published batches since the last snapshot compaction.
    batches_since_snapshot: u64,
}

/// Takes the updater lock, recovering from poison. The std poison flag
/// is exactly the signal we want — a worker panicked while holding the
/// lock, so the overlay may be half-mutated — but the response is to
/// refuse *updates* while queries keep serving published epochs, not to
/// panic every later connection.
fn lock_updater(updater: &Mutex<UpdaterState>) -> MutexGuard<'_, UpdaterState> {
    match updater.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            if guard.poisoned.is_none() {
                guard.poisoned =
                    Some("a worker panicked while applying an earlier UPDATE".to_string());
            }
            guard
        }
    }
}

/// State shared by every worker: the swap cell and, when the server was
/// started with the graph, the dynamic-update overlay behind a mutex
/// (updates serialise; queries never take it).
struct ServeShared {
    cell: SwapCell,
    updater: Option<Mutex<UpdaterState>>,
    /// Per-vertex answer-cache generations: `gens[v]` is the epoch of
    /// the last `UPDATE` whose delta touched `v` (labels or BP words).
    /// Written under the updater mutex *before* the epoch publishes, so
    /// the swap cell's lock carries the happens-before edge to readers;
    /// empty on a static server (nothing is ever touched). See [`cache`]
    /// for the validity rule.
    gens: Vec<AtomicU64>,
    flatten_threads: usize,
    /// Delta entries that trigger a background flatten (≥ 1;
    /// `u64::MAX` = never).
    flatten_threshold: u64,
    /// Nudges the flattener thread; capacity 1, so a pending token
    /// coalesces with new ones (`None` on a static server).
    flatten_tx: Option<mpsc::SyncSender<()>>,
    write_timeout: Duration,
    mid_frame_timeout: Duration,
    /// Serve-level counters (flatten pipeline, sheds, panics, WAL,
    /// apply path) — the audited home for these atomics lives in
    /// [`metrics`]; every hot-path bump goes through `metrics::add`.
    counters: Arc<ServeCounters>,
    /// Live metric registry behind the `STATS` op and `/metrics`.
    registry: Arc<Registry>,
    /// Ring of recent structured events, dumped on panic, degraded
    /// recovery and shutdown.
    recorder: Arc<FlightRecorder>,
    /// Server start time (INFO's `uptime_seconds`, the uptime gauge).
    started: Instant,
    /// [`ServerConfig::slow_request_threshold`] in nanoseconds.
    slow_request_nanos: u64,
}

/// Records a [`EventKind::FailpointHit`] flight event when `site` is
/// armed, *before* the site fires — an `abort`/`exit` action never
/// returns, so this is the only trace of which injection site killed
/// the process. Free in production: without the `failpoints` feature
/// the whole check compiles away alongside [`fail::point`] itself.
fn note_failpoint(shared: &ServeShared, site: &str) {
    #[cfg(feature = "failpoints")]
    if fail::armed(site) {
        let (a, b) = pll_obs::pack_site(site);
        shared.recorder.record(EventKind::FailpointHit, a, b);
    }
    #[cfg(not(feature = "failpoints"))]
    let _ = (shared, site);
}

/// A running server: owns the listener, worker and flattener threads.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener_thread: std::thread::JoinHandle<()>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    /// Background flatten pipeline (dynamic servers only). Stopped by
    /// [`ServerHandle::join`] *after* the workers drain, so its final
    /// pass observes the last applied batch.
    flattener_thread: Option<std::thread::JoinHandle<()>>,
    flatten_stop: Arc<AtomicBool>,
    worker_metrics: Arc<Vec<WorkerMetrics>>,
    shared: Arc<ServeShared>,
    started: Instant,
    recovery: Option<RecoveryStats>,
    /// The `/metrics` HTTP sidecar: bound address, its stop flag and
    /// the serving thread (`None` without `--metrics-addr`).
    metrics_exporter: Option<(SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>)>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.worker_metrics.len()
    }

    /// Requests a graceful shutdown (same effect as a client sending
    /// [`OP_SHUTDOWN`]).
    pub fn shutdown(&self) {
        // ORDERING: SeqCst — the shutdown flag is a cross-thread control
        // edge (listener + every worker poll it); sequential consistency
        // keeps it totally ordered against the epoch swaps and makes the
        // "no frame after shutdown observed" reasoning trivial. It is
        // stored once per server lifetime, so strength costs nothing.
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        // ORDERING: SeqCst — pairs with the store in `shutdown()` above.
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The currently served index generation (epoch 0 until the first
    /// applied `UPDATE`).
    pub fn current_epoch(&self) -> u64 {
        self.shared.cell.load().epoch
    }

    /// Whether this server accepts `UPDATE` frames.
    pub fn is_dynamic(&self) -> bool {
        self.shared.updater.is_some()
    }

    /// What WAL recovery replayed at startup (`None` when the server
    /// started without a [`WalConfig`]).
    pub fn recovery(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// The address the `/metrics` HTTP sidecar bound (resolves port 0;
    /// `None` when the server started without
    /// [`ServerConfig::metrics_addr`]).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_exporter.as_ref().map(|(addr, _, _)| *addr)
    }

    /// The live metric registry — the same one the wire `STATS` op and
    /// the `/metrics` sidecar scrape.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// The flight recorder (recent structured events, see
    /// [`pll_obs::FlightRecorder`]).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// Waits for the accept loop and every worker to finish (i.e. until
    /// someone requests shutdown and in-flight connections drain), then
    /// returns the aggregated metrics. A worker that died panicking is
    /// counted, not propagated — shutdown must summarise what happened,
    /// not crash the supervisor.
    pub fn join(self) -> ServerSummary {
        let mut escaped_panics = 0u64;
        if self.listener_thread.join().is_err() {
            escaped_panics += 1;
        }
        for w in self.worker_threads {
            if w.join().is_err() {
                escaped_panics += 1;
            }
        }
        // The workers have drained: stop the flattener, whose final
        // pass then sees the last applied batch (and compacts the WAL
        // if a snapshot is outstanding).
        // ORDERING: SeqCst — cross-thread shutdown control edge, same
        // discipline as the main shutdown flag.
        self.flatten_stop.store(true, Ordering::SeqCst);
        if let Some(f) = self.flattener_thread {
            if f.join().is_err() {
                escaped_panics += 1;
            }
        }
        if let Some((_, stop, thread)) = self.metrics_exporter {
            // ORDERING: Release — pairs with the exporter's Acquire
            // poll, so its final scrape (if any) observes every counter
            // written before this point.
            stop.store(true, Ordering::Release);
            let _ = thread.join();
        }
        if self.shared.recorder.recorded() > 0 {
            self.shared.recorder.dump_stderr("shutdown");
        }
        summarize(
            &self.worker_metrics,
            self.started.elapsed().as_secs_f64(),
            self.shared.cell.load().epoch,
            // The thread joins above are the happens-before edge that
            // makes every worker's final increment visible here.
            metrics::get(&self.shared.counters.sheds),
            metrics::get(&self.shared.counters.panics) + escaped_panics,
        )
    }
}

/// Starts a read-only service: binds `config.addr`, spawns the worker
/// pool and the accept loop, and returns immediately with a
/// [`ServerHandle`]. `UPDATE` frames answer
/// [`protocol::STATUS_UNSUPPORTED`]; use [`serve_dynamic`] with the
/// graph to enable them.
///
/// The index is shared read-only across workers; for a v2 (zero-copy)
/// index that means all workers answer from the same mapped buffer.
pub fn serve(index: Arc<AnyIndex>, config: &ServerConfig) -> Result<ServerHandle, ServeError> {
    serve_dynamic(index, None, config)
}

/// Starts the service with dynamic updates enabled when `graph` is
/// provided: `UPDATE` frames apply edge insertions to a
/// [`DynamicIndex`] overlay, flatten, and hot-swap the served index to
/// the next epoch while in-flight requests drain on the old one.
///
/// `graph` must be the (undirected) graph `index` was built from; the
/// overlay constructor rejects mismatches and non-undirected families.
/// Indices with parent pointers are rejected too: the post-update
/// flatten drops parents, so the first applied `UPDATE` would silently
/// turn `PATH` off mid-session — serve those read-only instead.
pub fn serve_dynamic(
    index: Arc<AnyIndex>,
    graph: Option<&CsrGraph>,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    if config.wal.is_some() && graph.is_none() {
        return Err(ServeError::Dynamic(pll_core::PllError::Unsupported {
            message: "a WAL journals UPDATE batches, which only a dynamic server \
                      accepts; pass the graph (serve_dynamic / pll serve --graph) \
                      to enable durability"
                .into(),
        }));
    }
    let mut initial = index;
    let mut recovery: Option<RecoveryStats> = None;
    let counters = Arc::new(ServeCounters::default());
    let recorder = Arc::new(FlightRecorder::new(256));
    if let Some(path) = &config.trace_log {
        recorder.tee_to_path(path)?;
    }
    pll_obs::dump_on_panic(&recorder);
    let updater = match graph {
        Some(g) => {
            if initial.supports_paths() {
                return Err(ServeError::Dynamic(pll_core::PllError::Unsupported {
                    message: "this index stores parent pointers, which dynamic updates \
                              cannot maintain (the post-update flatten drops them, \
                              disabling PATH mid-session); serve it without --graph, or \
                              rebuild without --store-parents to serve dynamically"
                        .into(),
                }));
            }
            let mut dynamic =
                DynamicIndex::new(Arc::clone(&initial), g).map_err(ServeError::Dynamic)?;
            let wal_state = match &config.wal {
                Some(wal_config) => {
                    let recovery_started = Instant::now();
                    let (state, mut stats) = recover_wal(&mut dynamic, &initial, g, wal_config)
                        .map_err(ServeError::Dynamic)?;
                    if dynamic.epoch() > 0 {
                        // Something was replayed: serve the recovered
                        // state, not the stale base index — and rebase
                        // the overlay onto the recovered flatten so the
                        // server starts with an empty delta.
                        let flat = dynamic
                            .flatten(config.threads)
                            .map_err(ServeError::Dynamic)?;
                        initial = Arc::new(AnyIndex::Undirected(flat));
                        let absorbed = dynamic.inserted_edges().len();
                        dynamic
                            .rebase(Arc::clone(&initial), absorbed)
                            .map_err(ServeError::Dynamic)?;
                    }
                    stats.recovered_epoch = dynamic.epoch();
                    stats.seconds = recovery_started.elapsed().as_secs_f64();
                    metrics::add(
                        &counters.wal_recovered_records,
                        stats.replayed_batches + u64::from(stats.rebase_edges > 0),
                    );
                    if stats.replay_error.is_some() {
                        metrics::add(&counters.wal_recovery_degraded, 1);
                        let wal_bytes =
                            std::fs::metadata(&wal_config.wal_path).map_or(0, |m| m.len());
                        recorder.record(
                            EventKind::DegradedRecovery,
                            stats.replayed_batches,
                            wal_bytes,
                        );
                        recorder.dump_stderr("degraded recovery");
                    }
                    recovery = Some(stats);
                    Some(state)
                }
                None => None,
            };
            // A replay that stopped early leaves the server answering
            // queries from the recovered prefix, but the journal no
            // longer matches the overlay — refuse further updates.
            let poisoned = recovery.as_ref().and_then(|r| r.replay_error.clone());
            Some(Mutex::new(UpdaterState {
                dynamic,
                poisoned,
                wal: wal_state,
            }))
        }
        None => None,
    };
    let recovered_epoch = recovery.as_ref().map_or(0, |r| r.recovered_epoch);
    // Resolve the adaptive flatten default against the base actually
    // being served: a pass re-flattens the whole base, so the overlay
    // should earn it by growing to a fixed fraction of the base's label
    // mass first. The 1024 floor keeps tiny indices from flattening on
    // every inserted edge.
    let flatten_threshold = config.flatten_threshold.unwrap_or_else(|| {
        let total = (initial.avg_label_size() * initial.num_vertices() as f64) as u64;
        (total / 4).max(1024)
    });
    let cell = SwapCell::new(Arc::clone(&initial));
    if recovered_epoch > 0 {
        cell.store(recovered_epoch, Served::Flat(initial));
    }
    // Cache generations are only meaningful when updates can touch
    // vertices; a static server's empty table reads as generation 0
    // everywhere, so entries never expire.
    let gens: Vec<AtomicU64> = if updater.is_some() {
        metrics::generation_counters(cell.load().served.num_vertices())
    } else {
        Vec::new()
    };
    let (flatten_tx, flatten_rx) = if updater.is_some() {
        let (tx, rx) = mpsc::sync_channel::<()>(1);
        (Some(tx), Some(rx))
    } else {
        (None, None)
    };
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        config.threads
    };
    let worker_metrics: Arc<Vec<WorkerMetrics>> =
        Arc::new((0..threads).map(|_| WorkerMetrics::default()).collect());
    let registry = Arc::new(Registry::new());
    metrics::register_server_metrics(&registry, &worker_metrics, &counters);
    let shared = Arc::new(ServeShared {
        cell,
        updater,
        gens,
        flatten_threads: config.threads,
        flatten_threshold: flatten_threshold.max(1),
        flatten_tx,
        write_timeout: config.write_timeout,
        mid_frame_timeout: config.mid_frame_timeout,
        counters,
        registry: Arc::clone(&registry),
        recorder,
        started: Instant::now(),
        slow_request_nanos: config.slow_request_threshold.as_nanos() as u64,
    });
    register_shared_gauges(&registry, &shared);
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let max_pending = if config.max_pending == 0 {
        threads * 4 + 16
    } else {
        config.max_pending
    };
    let shutdown = Arc::new(AtomicBool::new(false));

    // Bounded hand-off: when every worker is busy and `max_pending`
    // connections already wait, the accept loop sheds instead of
    // queueing unboundedly.
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(max_pending);
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_threads = Vec::with_capacity(threads);
    for worker_id in 0..threads {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&worker_metrics);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("pll-serve-{worker_id}"))
                .spawn(move || {
                    // Worker-local hot-pair answer cache; epoch tags
                    // invalidate it across UPDATE hot-swaps, so it can
                    // safely outlive individual connections.
                    let mut cache = AnswerCache::default();
                    loop {
                        // Block on the shared queue; a closed channel
                        // (listener gone) ends the worker. Recover the
                        // lock from a sibling's panic: the receiver
                        // itself is always in a consistent state.
                        let conn = {
                            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                            guard.recv()
                        };
                        match conn {
                            Ok(stream) => {
                                // One panicking connection must not take
                                // the worker (and with it the whole
                                // accept pipeline) down.
                                let caught = catch_unwind(AssertUnwindSafe(|| {
                                    serve_connection(
                                        &shared,
                                        stream,
                                        &metrics[worker_id],
                                        &shutdown,
                                        &mut cache,
                                    );
                                }));
                                if caught.is_err() {
                                    metrics::add(&shared.counters.panics, 1);
                                    metrics::add(&metrics[worker_id].errors, 1);
                                }
                                metrics::add(&metrics[worker_id].connections, 1);
                            }
                            Err(_) => break,
                        }
                    }
                })?,
        );
    }

    let listener_thread = {
        let shutdown = Arc::clone(&shutdown);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pll-serve-accept".into())
            .spawn(move || {
                loop {
                    // ORDERING: SeqCst — pairs with ServerHandle::shutdown
                    // and the OP_SHUTDOWN handler; the accept loop must
                    // observe the flag on its next poll tick.
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // The accepted socket must be blocking even
                            // though the listener polls.
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(mpsc::TrySendError::Full(stream)) => {
                                    shed_busy(stream);
                                    metrics::add(&shared.counters.sheds, 1);
                                    shared.recorder.record(
                                        EventKind::ConnectionShed,
                                        metrics::get(&shared.counters.sheds),
                                        max_pending as u64,
                                    );
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
                // Dropping the sender ends every idle worker.
                drop(tx);
            })?
    };

    // The background flatten pipeline: one dedicated thread dozes on
    // the nudge channel and folds the served overlay into a fresh flat
    // base whenever a pass's trigger check fires. The timeout re-check
    // makes the pipeline self-healing — a missed or coalesced token
    // only delays a flatten by one poll tick, never loses it.
    let flatten_stop = Arc::new(AtomicBool::new(false));
    let flattener_thread = match flatten_rx {
        Some(rx) => {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&flatten_stop);
            Some(
                std::thread::Builder::new()
                    .name("pll-serve-flatten".into())
                    .spawn(move || loop {
                        // ORDERING: SeqCst — cross-thread shutdown
                        // control edge; set by join() after the workers
                        // drain, so a final pass here sees every batch.
                        let draining = stop.load(Ordering::SeqCst);
                        flatten_pass(&shared, draining);
                        if draining {
                            break;
                        }
                        let _ = rx.recv_timeout(FLATTEN_POLL);
                    })?,
            )
        }
        None => None,
    };

    let metrics_exporter = match &config.metrics_addr {
        Some(addr) => {
            let stop = Arc::new(AtomicBool::new(false));
            let (bound, thread) =
                pll_obs::spawn_http_exporter(addr, Arc::clone(&registry), Arc::clone(&stop))?;
            Some((bound, stop, thread))
        }
        None => None,
    };
    Ok(ServerHandle {
        local_addr,
        shutdown,
        listener_thread,
        worker_threads,
        flattener_thread,
        flatten_stop,
        worker_metrics,
        shared,
        started: Instant::now(),
        recovery,
        metrics_exporter,
    })
}

/// Registers the point-in-time gauges that read live server state at
/// scrape time: the served epoch, overlay size, uptime, the flatten
/// trigger and the flight-recorder event count. Held through a `Weak`
/// so the registry (kept alive by a scraper) cannot keep a finished
/// server's index alive; a gauge whose server is gone reads 0. Each
/// collector is a wait-free read or one brief swap-cell read lock —
/// never the updater mutex — per the `pll-obs` collector contract.
fn register_shared_gauges(registry: &Registry, shared: &Arc<ServeShared>) {
    let weak = |f: fn(&ServeShared) -> u64| {
        let w = Arc::downgrade(shared);
        move || w.upgrade().map_or(0, |s| f(&s))
    };
    registry.gauge_fn(
        "pll_epoch",
        "Served index generation (0 until the first applied UPDATE)",
        weak(|s| s.cell.load().epoch),
    );
    registry.gauge_fn(
        "pll_overlay_delta_entries",
        "Delta label entries the served snapshot answers from the overlay (0 when flat)",
        weak(|s| s.cell.load().served.overlay_entries()),
    );
    registry.gauge_fn(
        "pll_uptime_seconds",
        "Whole seconds since the server started",
        weak(|s| s.started.elapsed().as_secs()),
    );
    registry.gauge_fn(
        "pll_flatten_threshold",
        "Overlay size that arms the background flattener (0 on a static server)",
        weak(|s| {
            if s.updater.is_some() {
                s.flatten_threshold
            } else {
                0
            }
        }),
    );
    registry.counter_fn(
        "pll_flight_events_total",
        "Flight-recorder events recorded since startup (ring keeps the most recent)",
        weak(|s| s.recorder.recorded()),
    );
}

/// How long the flattener dozes between trigger re-checks when no nudge
/// token arrives (a token only wakes it early).
const FLATTEN_POLL: Duration = Duration::from_millis(100);

/// Poisons the updater from the flattener side: a failed background
/// flatten or rebase must not let a later pass publish from a state
/// whose invariants it cannot trust. Queries keep serving published
/// epochs; `UPDATE`s are refused with the reason.
fn poison_updater(updater: &Mutex<UpdaterState>, why: String) {
    let mut state = lock_updater(updater);
    if state.poisoned.is_none() {
        state.poisoned = Some(why);
    }
}

/// One background flatten generation, structured so the updater lock is
/// never held across the expensive part:
///
/// 1. under the lock: check the trigger (overlay ≥ threshold, or a WAL
///    snapshot due — on the draining pass, any un-snapshotted batch)
///    and freeze an [`OverlaySnapshot`];
/// 2. off the lock: flatten the snapshot with the parallel scatter
///    while `UPDATE` and `QUERY` traffic proceeds;
/// 3. under the lock again: rebase the live overlay onto the new base
///    (keeping any batches that landed mid-flatten as the new, smaller
///    delta), publish — flat if the overlay caught up, a fresh overlay
///    snapshot otherwise — and ride the WAL snapshot-compaction on the
///    same swap.
///
/// `flatten.before_swap` fires between (2) and (3), `flatten.after_swap`
/// after the lock is released: the two failpoint sites bracket exactly
/// the window in which the swap and the WAL reset commute with a crash.
fn flatten_pass(shared: &ServeShared, draining: bool) {
    let Some(updater) = &shared.updater else {
        return;
    };
    let (snap, absorbed, wal_due) = {
        let state = lock_updater(updater);
        if state.poisoned.is_some() {
            return;
        }
        let wal_due = state.wal.as_ref().is_some_and(|w| {
            w.config.snapshot_every > 0
                && (w.batches_since_snapshot >= w.config.snapshot_every
                    || (draining && w.batches_since_snapshot > 0))
        });
        let over = state.dynamic.delta_entries() as u64;
        let threshold_hit = state.dynamic.overlay_dirty() && over >= shared.flatten_threshold;
        if !threshold_hit && !wal_due {
            return;
        }
        (
            state.dynamic.snapshot(),
            state.dynamic.inserted_edges().len(),
            wal_due,
        )
    };
    let flatten_started = Instant::now();
    let flat = match snap.flatten(shared.flatten_threads) {
        Ok(flat) => flat,
        Err(e) => {
            poison_updater(
                updater,
                format!("the background flatten failed ({e}); rebuild and restart to update again"),
            );
            return;
        }
    };
    metrics::add(
        &shared.counters.flatten_nanos,
        flatten_started.elapsed().as_nanos() as u64,
    );
    let flat_any = Arc::new(AnyIndex::Undirected(flat));
    note_failpoint(shared, "flatten.before_swap");
    fail::point("flatten.before_swap");
    {
        let swap_started = Instant::now();
        let mut state = lock_updater(updater);
        if state.poisoned.is_some() {
            return;
        }
        let UpdaterState {
            dynamic,
            poisoned,
            wal,
        } = &mut *state;
        if let Err(e) = dynamic.rebase(Arc::clone(&flat_any), absorbed) {
            *poisoned = Some(format!(
                "the background rebase failed ({e}); rebuild and restart to update again"
            ));
            return;
        }
        // Publish at the *current* epoch: batches that landed while we
        // flattened already bumped it and stay served from the rebased
        // (now smaller) overlay; otherwise the flat base took over.
        let served = if dynamic.overlay_dirty() {
            Served::Overlay(Arc::new(dynamic.snapshot()))
        } else {
            Served::Flat(Arc::clone(&flat_any))
        };
        let delta_entries = dynamic.delta_entries() as u64;
        shared.cell.store(dynamic.epoch(), served);
        metrics::add(&shared.counters.flattens, 1);
        shared
            .recorder
            .record(EventKind::EpochPublish, dynamic.epoch(), delta_entries);
        if wal_due {
            if let Some(w) = wal.as_mut() {
                // A failed snapshot is retried at the next pass;
                // journaling continues either way, so durability is
                // never lost — only compaction is deferred.
                if snapshot_compact(w, dynamic, &flat_any).is_ok() {
                    w.batches_since_snapshot = 0;
                }
            }
        }
        metrics::add(
            &shared.counters.swap_nanos,
            swap_started.elapsed().as_nanos() as u64,
        );
    }
    note_failpoint(shared, "flatten.after_swap");
    fail::point("flatten.after_swap");
}

/// Tells a shed connection why it is being dropped: one `STATUS_BUSY`
/// frame, then close. The client's pending request (if any) was never
/// read, so reconnect-and-retry is always safe.
///
/// The write is best-effort and strictly non-blocking — this runs on the
/// accept-loop thread, and even a short blocking write per shed peer
/// would let a flood of never-reading clients stall accepts, partially
/// re-creating the listener stall the bounded queue exists to prevent. A
/// freshly accepted socket's send buffer is empty, so the single write
/// attempt delivers the whole frame in practice; a peer it cannot reach
/// learns from the close instead.
fn shed_busy(stream: TcpStream) {
    use std::io::Write;
    if stream.set_nonblocking(true).is_err() {
        return; // dropping the stream closes it either way
    }
    let msg: &[u8] = b"server overloaded: connection shed, retry with backoff";
    let mut frame = Vec::with_capacity(4 + 1 + msg.len());
    frame.extend_from_slice(&((1 + msg.len()) as u32).to_le_bytes());
    frame.push(STATUS_BUSY);
    frame.extend_from_slice(msg);
    let _ = (&stream).write(&frame);
    // Dropping the stream closes it.
}

/// Replays `records` through the overlay, accumulating `stats`. Returns
/// the next `Update` sequence number, or the index of the first record
/// whose apply failed together with its error — the overlay may then be
/// partially mutated, which [`recover_wal`] repairs by rebuilding from
/// the base and replaying only the known-good prefix.
fn replay_records(
    dynamic: &mut DynamicIndex,
    records: &[WalRecord],
    header: &wal::WalHeader,
    committed: &std::collections::HashSet<u64>,
    stats: &mut RecoveryStats,
) -> Result<u64, (usize, pll_core::PllError)> {
    let mut seq = 0u64;
    for (at, record) in records.iter().enumerate() {
        match record {
            WalRecord::Rebase { edges } => {
                // Against a landed snapshot these all prune as duplicates;
                // against the previous index (crash between WAL reset and
                // snapshot rename) they genuinely rebuild the missing
                // state. Either way the epoch restarts at the snapshot's.
                dynamic.apply(edges).map_err(|e| (at, e))?;
                dynamic.set_epoch(header.base_epoch);
                stats.rebase_edges += edges.len() as u64;
            }
            WalRecord::Update { edges, .. } => {
                let applied = dynamic.apply(edges).map_err(|e| (at, e))?;
                stats.replayed_batches += 1;
                stats.replayed_edges += applied.edges_applied as u64;
                if !committed.contains(&seq) {
                    stats.uncommitted_batches += 1;
                }
                seq += 1;
            }
            WalRecord::Commit { .. } => {}
        }
    }
    Ok(seq)
}

/// Rebuilds the dynamic overlay from the write-ahead log and prepares
/// the writer for new appends. See [`WalConfig`] and [`RecoveryStats`]
/// for the semantics; the fingerprint check refuses a WAL journaled
/// against a different index.
///
/// A record that fails to apply does **not** refuse startup — that would
/// turn one bad record into a permanently unbootable server, the
/// opposite of what a recovery path is for. Replay stops at the failing
/// record, the overlay is rebuilt from `base` + the known-good prefix
/// (the failed apply may have half-mutated it), and the error is
/// surfaced via [`RecoveryStats::replay_error`] so the caller poisons
/// the updater: queries serve the recovered state, `UPDATE`s are
/// refused.
fn recover_wal(
    dynamic: &mut DynamicIndex,
    base: &Arc<AnyIndex>,
    graph: &CsrGraph,
    config: &WalConfig,
) -> Result<(WalState, RecoveryStats), pll_core::PllError> {
    let disk_fingerprint = wal::fingerprint_file(&config.index_path)?;
    let mut stats = RecoveryStats::default();
    let contents = match wal::read_wal(&config.wal_path)? {
        None => {
            // No log yet: start a fresh one keyed to this index.
            let header = wal::WalHeader {
                fingerprint: disk_fingerprint,
                prev_fingerprint: disk_fingerprint,
                base_epoch: 0,
            };
            let writer = WalWriter::create(&config.wal_path, &header, &[])?;
            return Ok((
                WalState {
                    writer,
                    config: config.clone(),
                    fingerprint: disk_fingerprint,
                    next_seq: 0,
                    batches_since_snapshot: 0,
                },
                stats,
            ));
        }
        Some(contents) => contents,
    };
    let header = contents.header;
    if disk_fingerprint != header.fingerprint && disk_fingerprint != header.prev_fingerprint {
        return Err(pll_core::PllError::Format {
            message: format!(
                "WAL {} was journaled against a different base index (index fingerprint \
                 {disk_fingerprint:016x}, WAL expects {:016x} or {:016x}); delete the WAL \
                 to serve this index without its journal, or restore the matching index",
                config.wal_path.display(),
                header.fingerprint,
                header.prev_fingerprint
            ),
        });
    }
    stats.truncated_bytes = contents.truncated_bytes;
    let committed: std::collections::HashSet<u64> = contents
        .records
        .iter()
        .filter_map(|rec| match rec {
            WalRecord::Commit { seq } => Some(*seq),
            _ => None,
        })
        .collect();
    let seq = match replay_records(dynamic, &contents.records, &header, &committed, &mut stats) {
        Ok(seq) => seq,
        Err((at, e)) => {
            // Degrade, don't refuse startup. The failed apply may have
            // half-mutated the overlay (a mid-batch error), so rebuild
            // from the base and replay only the records before the bad
            // one — those applied once already, so a failure here is
            // real and fatal.
            *dynamic = DynamicIndex::new(Arc::clone(base), graph)?;
            let mut clean = RecoveryStats {
                truncated_bytes: contents.truncated_bytes,
                ..RecoveryStats::default()
            };
            let seq = replay_records(
                dynamic,
                &contents.records[..at],
                &header,
                &committed,
                &mut clean,
            )
            .map_err(|(_, prefix_err)| prefix_err)?;
            clean.replay_error = Some(format!(
                "WAL record {at} of {} failed to replay ({e}); serving the state \
                 recovered before it with updates disabled — repair or remove {} \
                 to update again",
                contents.records.len(),
                config.wal_path.display(),
            ));
            stats = clean;
            seq
        }
    };
    // A rebase-less WAL can still carry a base epoch (defensive; the
    // snapshot path always writes a Rebase record first).
    if dynamic.epoch() < header.base_epoch {
        dynamic.set_epoch(header.base_epoch);
    }
    let writer = WalWriter::open_existing(&config.wal_path, contents.valid_len)?;
    Ok((
        WalState {
            writer,
            config: config.clone(),
            fingerprint: disk_fingerprint,
            next_seq: seq,
            batches_since_snapshot: 0,
        },
        stats,
    ))
}

/// Persists the flattened index atomically and resets the WAL.
///
/// Ordering is the load-bearing part: the WAL is reset *first* (new
/// fingerprint, `Rebase` record carrying every edge inserted since the
/// base graph), the snapshot index is renamed into place *second*. A
/// crash before the reset recovers from the old WAL + old index; a
/// crash between the two finds a new WAL next to the old index, which
/// recovery accepts via `prev_fingerprint` — the `Rebase` record then
/// rebuilds exactly the state the missing snapshot would have held.
fn snapshot_compact(
    wal_state: &mut WalState,
    dynamic: &DynamicIndex,
    flat: &AnyIndex,
) -> Result<(), pll_core::PllError> {
    let AnyIndex::Undirected(index) = flat else {
        return Err(pll_core::PllError::Unsupported {
            message: "snapshot compaction expects the undirected flatten".into(),
        });
    };
    let mut bytes = Vec::new();
    pll_core::v2::save_v2_index(index, &mut bytes)?;
    let new_fingerprint = wal::fingerprint_bytes(&bytes);
    let header = wal::WalHeader {
        fingerprint: new_fingerprint,
        prev_fingerprint: wal_state.fingerprint,
        base_epoch: dynamic.epoch(),
    };
    // The rebase set — every edge inserted since the base graph — grows
    // without bound across server lifetimes, so it is chunked at the WAL
    // record cap rather than encoded as one record whose length prefix
    // would eventually overflow.
    let rebase: Vec<WalRecord> = dynamic
        .inserted_edges()
        .chunks(wal::MAX_RECORD_EDGES)
        .map(|chunk| WalRecord::Rebase {
            edges: chunk.to_vec(),
        })
        .collect();
    // If the reset itself fails the old WAL file is untouched (the new
    // image goes through atomic_write), so bailing out is safe.
    let writer = WalWriter::create(&wal_state.config.wal_path, &header, &rebase)?;
    // The on-disk WAL is now the new one: adopt the writer before
    // attempting the index rename, or a rename failure would leave us
    // appending to the unlinked old file.
    wal_state.writer = writer;
    wal_state.next_seq = 0;
    fail::point("snapshot.before_rename");
    wal::atomic_write(&wal_state.config.index_path, &bytes)?;
    // Only now does the on-disk index carry the new fingerprint; until
    // the rename lands, `fingerprint` must keep describing the old file
    // so a further snapshot records the correct `prev_fingerprint`.
    wal_state.fingerprint = new_fingerprint;
    Ok(())
}

/// Default for [`ServerConfig::mid_frame_timeout`]: how long a peer may
/// stall *inside* a frame before the connection is declared dead.
/// Distinct from [`READ_POLL`]: between frames a timeout just means
/// "idle, re-check shutdown", but once a frame has started a stall
/// means a broken or malicious peer.
const MID_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Reads one frame, polling the shutdown flag while the connection is
/// idle. Socket read timeouts are only ever allowed to fire *between*
/// frames: a plain timeout-driven `read_frame` loop would discard
/// partially-read bytes on a slow link and permanently desync the
/// stream, so the idle wait covers exactly the first byte of the length
/// prefix, and the rest of the frame is read under a single generous
/// deadline.
///
/// Returns `Ok(None)` on clean EOF or shutdown, `Err` on a dead or
/// misbehaving peer.
fn read_frame_shutdown_aware(
    reader: &mut std::io::BufReader<TcpStream>,
    shutdown: &AtomicBool,
    mid_frame_timeout: Duration,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    use std::io::Read;
    // Phase 1: await the first byte of the length prefix (idle wait).
    let mut first = [0u8; 1];
    loop {
        match reader.read_exact(&mut first) {
            Ok(()) => break,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // ORDERING: SeqCst — pairs with ServerHandle::shutdown's
                // store; the idle read loop must observe shutdown promptly.
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    // Phase 2: the frame has started — read the rest under one deadline.
    let _ = reader.get_ref().set_read_timeout(Some(mid_frame_timeout));
    let result = (|| {
        let mut rest = [0u8; 3];
        reader.read_exact(&mut rest)?;
        let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
        if len > protocol::MAX_FRAME_LEN {
            return Err(ProtocolError::Malformed(format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                protocol::MAX_FRAME_LEN
            )));
        }
        let mut payload = vec![0u8; len as usize];
        reader.read_exact(&mut payload)?;
        Ok(Some(payload))
    })();
    let _ = reader.get_ref().set_read_timeout(Some(READ_POLL));
    result
}

/// Serves one connection until EOF, a transport error, or shutdown.
fn serve_connection(
    shared: &ServeShared,
    stream: TcpStream,
    metrics: &WorkerMetrics,
    shutdown: &AtomicBool,
    cache: &mut AnswerCache,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // A peer that stops draining its socket (dead, or deliberately slow)
    // must not pin this worker forever in a blocking write.
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        // ORDERING: Relaxed — per-worker monotonic counters throughout
        // this connection loop; summarize() reads them after join(), and
        // the thread join is the synchronizing edge. (Covers every
        // errors/updates fetch_add below.)
        metrics.errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let frame = match read_frame_shutdown_aware(&mut reader, shutdown, shared.mid_frame_timeout)
        {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF or shutdown while idle
            Err(_) => {
                // ORDERING: Relaxed — counter (see above).
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        let started = Instant::now();
        let r = handle_request(shared, &frame, shutdown, cache);
        // ORDERING: Relaxed — counters (see above).
        if r.payload[0] != STATUS_OK {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if r.updates > 0 {
            metrics.updates.fetch_add(r.updates, Ordering::Relaxed);
        }
        if r.cache_hits > 0 {
            // ORDERING: Relaxed — counter (see above).
            metrics
                .cache_hits
                .fetch_add(r.cache_hits, Ordering::Relaxed);
        }
        if r.cache_misses > 0 {
            // ORDERING: Relaxed — counter (see above).
            metrics
                .cache_misses
                .fetch_add(r.cache_misses, Ordering::Relaxed);
        }
        if r.cache_evictions > 0 {
            metrics::add(&metrics.cache_evictions, r.cache_evictions);
        }
        if write_frame(&mut writer, &r.payload).is_err() {
            // Includes the write timeout: the peer is dead or jammed.
            // ORDERING: Relaxed — counter (see above).
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let nanos = started.elapsed().as_nanos() as u64;
        metrics.record_request(nanos, r.queries);
        if nanos >= shared.slow_request_nanos {
            metrics::add(&shared.counters.slow_requests, 1);
            shared
                .recorder
                .record(EventKind::SlowRequest, nanos / 1_000, r.queries);
        }
        if r.close {
            break;
        }
    }
}

fn error_response(status: u8, message: &str) -> Response {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(status);
    out.extend_from_slice(message.as_bytes());
    Response {
        payload: out,
        queries: 0,
        updates: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        close: false,
    }
}

/// One dispatched request's outcome.
struct Response {
    /// Response frame payload (status byte first).
    payload: Vec<u8>,
    /// Distance/path/connectivity queries answered (for QPS metrics).
    queries: u64,
    /// UPDATE batches applied.
    updates: u64,
    /// Distance answers served from the worker's answer cache.
    cache_hits: u64,
    /// Distance answers that ran the label merge.
    cache_misses: u64,
    /// Live cache entries evicted by colliding pairs.
    cache_evictions: u64,
    /// Close the connection after responding.
    close: bool,
}

fn ok_response(payload: Vec<u8>, queries: u64) -> Response {
    Response {
        payload,
        queries,
        updates: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        close: false,
    }
}

/// Maps a query-time error to its wire status.
fn query_error(e: pll_core::PllError) -> Response {
    use pll_core::PllError;
    let status = match &e {
        PllError::Unsupported { .. } | PllError::ParentsNotStored => STATUS_UNSUPPORTED,
        _ => STATUS_QUERY_ERROR,
    };
    error_response(status, &e.to_string())
}

/// Dispatches one request frame against a pinned snapshot of the served
/// index. Every op except `UPDATE` runs on the snapshot alone; `UPDATE`
/// takes the updater mutex, applies the delta, and publishes the next
/// epoch's overlay to the swap cell (the flatten happens off-path in
/// the flattener thread).
fn handle_request(
    shared: &ServeShared,
    frame: &[u8],
    shutdown: &AtomicBool,
    cache: &mut AnswerCache,
) -> Response {
    let Some((&op, body)) = frame.split_first() else {
        return error_response(STATUS_BAD_REQUEST, "empty request frame");
    };
    let snapshot = shared.cell.load();
    let served = &snapshot.served;
    // Every caller has already validated the body length, so plain
    // indexing (bounds-checked, but never out of bounds here) replaces
    // the `try_into().expect(…)` idiom the panic-hygiene audit forbids.
    let pair = |body: &[u8]| -> (u32, u32) {
        (
            u32::from_le_bytes([body[0], body[1], body[2], body[3]]),
            u32::from_le_bytes([body[4], body[5], body[6], body[7]]),
        )
    };
    match op {
        OP_QUERY => {
            if body.len() != 8 {
                return error_response(STATUS_BAD_REQUEST, "QUERY body must be 8 bytes");
            }
            let (s, t) = pair(body);
            let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
            let wire = match cache.get(&shared.gens, s, t) {
                Some(hit) => {
                    hits = 1;
                    hit
                }
                None => match served.try_distance(s, t) {
                    Ok(d) => {
                        let wire = d.unwrap_or(UNREACHABLE);
                        evictions = u64::from(cache.put(&shared.gens, snapshot.epoch, s, t, wire));
                        misses = 1;
                        wire
                    }
                    Err(e) => return query_error(e),
                },
            };
            let mut out = Vec::with_capacity(9);
            out.push(STATUS_OK);
            out.extend_from_slice(&wire.to_le_bytes());
            Response {
                payload: out,
                queries: 1,
                updates: 0,
                cache_hits: hits,
                cache_misses: misses,
                cache_evictions: evictions,
                close: false,
            }
        }
        OP_BATCH => {
            if body.len() < 4 {
                return error_response(STATUS_BAD_REQUEST, "BATCH body too short");
            }
            let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
            if count > MAX_BATCH || body.len() != 4 + count * 8 {
                return error_response(STATUS_BAD_REQUEST, "BATCH count disagrees with body");
            }
            let mut out = Vec::with_capacity(5 + count * 8);
            out.push(STATUS_OK);
            out.extend_from_slice(&(count as u32).to_le_bytes());
            let pairs = &body[4..];
            let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
            for i in 0..count {
                let (s, t) = pair(&pairs[i * 8..i * 8 + 8]);
                // Overlap the next pair's label-fetch latency with this
                // pair's merge; the hint costs nothing if it misses.
                if i + 1 < count {
                    let (ns, nt) = pair(&pairs[(i + 1) * 8..(i + 1) * 8 + 8]);
                    served.prefetch_query(ns, nt);
                }
                let wire = match cache.get(&shared.gens, s, t) {
                    Some(hit) => {
                        hits += 1;
                        hit
                    }
                    None => match served.try_distance(s, t) {
                        Ok(d) => {
                            let wire = d.unwrap_or(UNREACHABLE);
                            evictions +=
                                u64::from(cache.put(&shared.gens, snapshot.epoch, s, t, wire));
                            misses += 1;
                            wire
                        }
                        Err(e) => return query_error(e),
                    },
                };
                out.extend_from_slice(&wire.to_le_bytes());
            }
            Response {
                payload: out,
                queries: count as u64,
                updates: 0,
                cache_hits: hits,
                cache_misses: misses,
                cache_evictions: evictions,
                close: false,
            }
        }
        OP_PATH => {
            if body.len() != 8 {
                return error_response(STATUS_BAD_REQUEST, "PATH body must be 8 bytes");
            }
            let (s, t) = pair(body);
            match served.shortest_path(s, t) {
                Ok(path) => {
                    let path = path.unwrap_or_default();
                    let mut out = Vec::with_capacity(5 + path.len() * 4);
                    out.push(STATUS_OK);
                    out.extend_from_slice(&(path.len() as u32).to_le_bytes());
                    for v in path {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    ok_response(out, 1)
                }
                Err(e) => query_error(e),
            }
        }
        OP_CONNECTED => {
            if body.len() != 8 {
                return error_response(STATUS_BAD_REQUEST, "CONNECTED body must be 8 bytes");
            }
            let (s, t) = pair(body);
            match served.try_connected(s, t) {
                Ok(c) => ok_response(vec![STATUS_OK, c as u8], 1),
                Err(e) => query_error(e),
            }
        }
        OP_UPDATE => {
            if body.len() < 4 {
                return error_response(STATUS_BAD_REQUEST, "UPDATE body too short");
            }
            let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
            if count > MAX_BATCH || body.len() != 4 + count * 8 {
                return error_response(STATUS_BAD_REQUEST, "UPDATE count disagrees with body");
            }
            let Some(updater) = &shared.updater else {
                return error_response(
                    STATUS_UNSUPPORTED,
                    "server was started without the graph (pll serve --graph) or over a \
                     non-undirected index; UPDATE is disabled",
                );
            };
            let edges: Vec<(u32, u32)> = body[4..].chunks_exact(8).map(pair).collect();
            // Updates serialise on the mutex; queries keep flowing on
            // the snapshot they pinned.
            let mut state = lock_updater(updater);
            if let Some(why) = &state.poisoned {
                return error_response(
                    STATUS_UNSUPPORTED,
                    &format!("updates disabled: {why}; already-published epochs keep serving"),
                );
            }
            // Split the guard so the WAL and the overlay can be borrowed
            // independently below.
            let UpdaterState {
                dynamic,
                poisoned,
                wal: wal_state,
            } = &mut *state;
            // Validate apply's deterministic preconditions *before*
            // journaling: a journaled record must be guaranteed to
            // replay, or one malformed-but-protocol-valid request would
            // durably land in the WAL, fail the same way at every
            // recovery, and leave the server degraded after each restart.
            let n = dynamic.num_vertices();
            if let Some(&(u, v)) = edges
                .iter()
                .find(|&&(u, v)| u as usize >= n || v as usize >= n)
            {
                return error_response(
                    STATUS_BAD_REQUEST,
                    &format!(
                        "UPDATE rejected: edge ({u}, {v}) references a vertex outside \
                         the served graph ({n} vertices); nothing was journaled or applied"
                    ),
                );
            }
            // Journal before apply: a batch that cannot be made durable
            // is refused outright, never half-applied.
            if let Some(w) = wal_state.as_mut() {
                let record = WalRecord::Update {
                    epoch: dynamic.epoch(),
                    edges: edges.clone(),
                };
                let journal_started = Instant::now();
                match w.writer.append(&record) {
                    Ok(receipt) => {
                        metrics::add(&shared.counters.wal_appends, 1);
                        metrics::add(&shared.counters.wal_bytes, receipt.bytes);
                        metrics::add(&shared.counters.wal_fsync_nanos, receipt.fsync_nanos);
                    }
                    Err(e) => {
                        return error_response(
                            STATUS_QUERY_ERROR,
                            &format!(
                                "UPDATE refused: cannot journal the batch to the WAL ({e}); \
                                 nothing was applied"
                            ),
                        );
                    }
                }
                metrics::add(
                    &shared.counters.journal_nanos,
                    journal_started.elapsed().as_nanos() as u64,
                );
                w.next_seq += 1;
                note_failpoint(shared, "wal.after_append");
                fail::point("wal.after_append");
            }
            let apply_started = Instant::now();
            let stats = match dynamic.apply(&edges) {
                Ok(stats) => stats,
                Err(e) => {
                    // A failed apply may have mutated part of the
                    // overlay; never snapshot/publish it again.
                    *poisoned = Some(format!(
                        "an earlier UPDATE failed mid-batch and left the overlay \
                         inconsistent ({e}); rebuild and restart to update again"
                    ));
                    return query_error(e);
                }
            };
            let apply_elapsed = apply_started.elapsed();
            let apply_us = apply_elapsed.as_micros() as u32;
            metrics::add(
                &shared.counters.apply_nanos,
                apply_elapsed.as_nanos() as u64,
            );
            metrics::add(&shared.counters.edges_applied, stats.edges_applied as u64);
            metrics::add(&shared.counters.edges_skipped, stats.edges_skipped as u64);
            metrics::add(&shared.counters.roots_resumed, stats.roots_resumed as u64);
            metrics::add(&shared.counters.vertices_visited, stats.vertices_visited);
            metrics::add(
                &shared.counters.delta_entries_added,
                stats.entries_added as u64,
            );
            metrics::add(
                &shared.counters.bp_repairs,
                stats.bp_columns_repaired as u64,
            );
            let mut publish_us = 0u32;
            if stats.edges_applied > 0 {
                let publish_started = Instant::now();
                let epoch = dynamic.epoch();
                // Expire cached answers whose endpoints this batch
                // touched — and only those — *before* the publish: the
                // swap cell's lock then carries the generation writes to
                // every reader that can see the new epoch.
                for &v in dynamic.touched_vertices() {
                    if let Some(g) = shared.gens.get(v as usize) {
                        // ORDERING: Release — pairs with the cache's
                        // Acquire loads; see the gens field docs for the
                        // real happens-before edge (the cell's RwLock).
                        g.store(epoch, Ordering::Release);
                    }
                }
                // Overlay-direct: publish a frozen snapshot of the
                // overlay instead of flattening on the request path.
                let snap = Arc::new(dynamic.snapshot());
                note_failpoint(shared, "serve.before_publish");
                fail::point("serve.before_publish");
                shared.cell.store(epoch, Served::Overlay(snap));
                shared.recorder.record(
                    EventKind::EpochPublish,
                    epoch,
                    dynamic.delta_entries() as u64,
                );
                if let Some(w) = wal_state.as_mut() {
                    // The commit marker is advisory (recovery replays
                    // complete records either way), so an append failure
                    // must not unpublish the epoch.
                    if let Ok(receipt) = w.writer.append(&WalRecord::Commit {
                        seq: w.next_seq - 1,
                    }) {
                        metrics::add(&shared.counters.wal_appends, 1);
                        metrics::add(&shared.counters.wal_bytes, receipt.bytes);
                        metrics::add(&shared.counters.wal_fsync_nanos, receipt.fsync_nanos);
                    }
                    note_failpoint(shared, "wal.after_commit");
                    fail::point("wal.after_commit");
                    w.batches_since_snapshot += 1;
                }
                let publish_elapsed = publish_started.elapsed();
                publish_us = publish_elapsed.as_micros() as u32;
                metrics::add(
                    &shared.counters.publish_nanos,
                    publish_elapsed.as_nanos() as u64,
                );
                // Nudge the flattener when the overlay crossed the
                // threshold or a WAL snapshot fell due. try_send on the
                // capacity-1 channel: a pending token already covers us.
                let wal_due = wal_state.as_ref().is_some_and(|w| {
                    w.config.snapshot_every > 0
                        && w.batches_since_snapshot >= w.config.snapshot_every
                });
                if wal_due || dynamic.delta_entries() as u64 >= shared.flatten_threshold {
                    if let Some(tx) = &shared.flatten_tx {
                        let _ = tx.try_send(());
                    }
                }
            }
            let epoch = dynamic.epoch();
            drop(state);
            let mut out = Vec::with_capacity(29);
            out.push(STATUS_OK);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&(stats.edges_applied as u32).to_le_bytes());
            out.extend_from_slice(&(stats.edges_skipped as u32).to_le_bytes());
            out.extend_from_slice(&apply_us.to_le_bytes());
            // flatten_us: always 0 under overlay-direct serving — the
            // flatten is amortized in the background. The field stays on
            // the wire so the load report's split is explicit about it.
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&publish_us.to_le_bytes());
            Response {
                payload: out,
                queries: 0,
                updates: u64::from(stats.edges_applied > 0),
                cache_hits: 0,
                cache_misses: 0,
                cache_evictions: 0,
                close: false,
            }
        }
        OP_INFO => {
            let base = served.base();
            let mut out = Vec::with_capacity(52);
            out.push(STATUS_OK);
            out.extend_from_slice(&(served.num_vertices() as u64).to_le_bytes());
            out.push(format_code(base.format()));
            out.push(base.format_version());
            out.extend_from_slice(&snapshot.epoch.to_le_bytes());
            out.push(shared.updater.is_some() as u8);
            out.extend_from_slice(&served.overlay_entries().to_le_bytes());
            out.extend_from_slice(&metrics::get(&shared.counters.flattens).to_le_bytes());
            out.extend_from_slice(&shared.started.elapsed().as_secs().to_le_bytes());
            // Flatten threshold is meaningful only on a dynamic server;
            // 0 tells clients "static, never flattens".
            let threshold = if shared.updater.is_some() {
                shared.flatten_threshold
            } else {
                0
            };
            out.extend_from_slice(&threshold.to_le_bytes());
            ok_response(out, 0)
        }
        OP_STATS => {
            if !body.is_empty() {
                return error_response(STATUS_BAD_REQUEST, "STATS takes no body");
            }
            let mut out = vec![STATUS_OK];
            shared.registry.snapshot().encode_into(&mut out);
            ok_response(out, 0)
        }
        OP_SHUTDOWN => {
            // ORDERING: SeqCst — same control edge as
            // ServerHandle::shutdown; every worker and the accept loop
            // must agree the flag flipped before the OK frame lands.
            shutdown.store(true, Ordering::SeqCst);
            Response {
                payload: vec![STATUS_OK],
                queries: 0,
                updates: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_evictions: 0,
                close: true,
            }
        }
        other => error_response(STATUS_BAD_REQUEST, &format!("unknown opcode {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_core::IndexBuilder;
    use pll_graph::gen;
    use protocol::read_frame;

    fn served_index() -> Arc<AnyIndex> {
        // Round-trip through the v2 format so the server exercises the
        // zero-copy path, exactly as `pll serve` does.
        let g = gen::barabasi_albert(120, 3, 9).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let mut buf = Vec::new();
        pll_core::v2::save_v2_index(&idx, &mut buf).unwrap();
        let aligned = std::sync::Arc::new(pll_core::AlignedBytes::from_bytes(&buf));
        Arc::new(pll_core::v2::open_v2_bytes(aligned).unwrap())
    }

    fn start(threads: usize) -> (ServerHandle, Arc<AnyIndex>) {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        (handle, index)
    }

    #[test]
    fn serves_singles_batches_info_and_shuts_down() {
        let (handle, index) = start(2);
        assert_eq!(handle.num_workers(), 2);
        let addr = handle.local_addr().to_string();
        let mut client = protocol::Client::connect(&addr).unwrap();

        let info = client.info().unwrap();
        assert_eq!(info.num_vertices, 120);
        assert_eq!(info.format, 0);
        assert_eq!(info.format_version, 2);
        assert_eq!(info.epoch, 0);
        assert!(!info.dynamic, "no graph given, updates disabled");

        let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, (i * 7 + 3) % 120)).collect();
        for &(s, t) in &pairs[..10] {
            assert_eq!(
                client.query(s, t).unwrap(),
                index.distance(s, t),
                "single ({s}, {t})"
            );
        }
        let answers = client.batch(&pairs).unwrap();
        for (&(s, t), got) in pairs.iter().zip(&answers) {
            assert_eq!(*got, index.distance(s, t), "batch ({s}, {t})");
        }

        // Out-of-range queries answer an error status, not a hangup.
        let err = client.query(0, 10_000).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Server {
                status: STATUS_QUERY_ERROR,
                ..
            }
        ));
        // The connection is still usable afterwards.
        assert_eq!(client.query(0, 1).unwrap(), index.distance(0, 1));

        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert!(summary.queries >= 51);
        assert!(summary.requests >= 13);
        assert_eq!(summary.errors, 1);
        assert!(summary.qps > 0.0);
        assert!(summary.p99_us > 0.0);
        assert_eq!(summary.workers.len(), 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let (handle, index) = start(4);
        let addr = handle.local_addr().to_string();
        let mut joins = Vec::new();
        for c in 0..4u32 {
            let addr = addr.clone();
            let index = Arc::clone(&index);
            joins.push(std::thread::spawn(move || {
                let mut client = protocol::Client::connect(&addr).unwrap();
                let pairs: Vec<(u32, u32)> = (0..200u32)
                    .map(|i| ((i + c * 31) % 120, (i * 17 + c) % 120))
                    .collect();
                let answers = client.batch(&pairs).unwrap();
                for (&(s, t), got) in pairs.iter().zip(&answers) {
                    assert_eq!(*got, index.distance(s, t), "client {c} pair ({s}, {t})");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.queries, 4 * 200);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn path_connected_and_update_ops() {
        // A parents index serves PATH; CONNECTED works everywhere; an
        // UPDATE without --graph answers UNSUPPORTED.
        let g = pll_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let index = Arc::new(AnyIndex::Undirected(idx));
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();

        assert_eq!(client.path(0, 3).unwrap(), Some(vec![0, 1, 2, 3]));
        assert_eq!(client.path(2, 2).unwrap(), Some(vec![2]));
        assert_eq!(client.path(0, 5).unwrap(), None, "disconnected pair");
        assert!(client.connected(0, 3).unwrap());
        assert!(!client.connected(0, 4).unwrap());
        assert!(client.connected(5, 5).unwrap());
        // Out-of-range endpoints: QUERY_ERROR, connection stays usable.
        assert!(matches!(
            client.connected(0, 99).unwrap_err(),
            ProtocolError::Server {
                status: STATUS_QUERY_ERROR,
                ..
            }
        ));
        // UPDATE on a static server: UNSUPPORTED, connection usable.
        assert!(matches!(
            client.update(&[(0, 3)]).unwrap_err(),
            ProtocolError::Server {
                status: STATUS_UNSUPPORTED,
                ..
            }
        ));
        assert_eq!(client.query(0, 3).unwrap(), Some(3));
        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert_eq!(summary.final_epoch, 0);
        assert_eq!(summary.updates, 0);
        assert_eq!(summary.errors, 2);
    }

    #[test]
    fn parents_index_cannot_be_served_dynamically() {
        // The post-update flatten drops parent pointers, which would
        // silently turn PATH off mid-session — so --graph over a
        // parents index must be refused at startup, not discovered by
        // a failing client later.
        let g = pll_graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let err = match serve_dynamic(
            Arc::new(AnyIndex::Undirected(idx)),
            Some(&g),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                ..ServerConfig::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("parents + --graph must be refused"),
        };
        assert!(matches!(err, ServeError::Dynamic(_)), "got {err}");
        assert!(err.to_string().contains("parent pointers"));
    }

    #[test]
    fn update_hot_swaps_epochs_under_concurrent_queries() {
        // Start a dynamic server over a ring missing its chords, hammer
        // it with query threads while the main thread applies UPDATE
        // batches, and require (a) zero transport/query errors — no
        // connection is dropped by a swap — and (b) post-swap answers
        // equal to a from-scratch rebuild on the updated graph.
        let n = 60u32;
        let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let chords: Vec<(u32, u32)> = (0..n / 2).step_by(5).map(|i| (i, i + n / 2)).collect();
        let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(2)
            .build(&g)
            .unwrap();
        let index = Arc::new(AnyIndex::Undirected(idx));
        let handle = serve_dynamic(
            Arc::clone(&index),
            Some(&g),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert!(handle.is_dynamic());
        assert_eq!(handle.current_epoch(), 0);
        let addr = handle.local_addr().to_string();

        let stop = Arc::new(AtomicBool::new(false));
        let mut query_threads = Vec::new();
        for c in 0..2u32 {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            query_threads.push(std::thread::spawn(move || {
                let mut client = protocol::Client::connect(&addr).unwrap();
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let pairs: Vec<(u32, u32)> = (0..32u32)
                        .map(|i| ((i * 7 + c) % n, (i * 13 + 5) % n))
                        .collect();
                    // Distances may shrink mid-loop (that is the point);
                    // the transport must never error.
                    let answers = client.batch(&pairs).unwrap();
                    assert!(answers.iter().all(|d| d.is_some()), "ring is connected");
                    served += answers.len() as u64;
                }
                served
            }));
        }

        let mut control = protocol::Client::connect(&addr).unwrap();
        let info0 = control.info().unwrap();
        assert!(info0.dynamic);
        assert_eq!(info0.epoch, 0);
        for (i, chunk) in chords.chunks(3).enumerate() {
            let ack = control.update(chunk).unwrap();
            assert_eq!(ack.applied as usize, chunk.len());
            assert_eq!(ack.skipped, 0);
            assert_eq!(ack.epoch, i as u64 + 1);
        }
        // Re-applying the same edges is a visible no-op.
        let ack = control.update(&chords).unwrap();
        assert_eq!(ack.applied, 0);
        assert_eq!(ack.skipped as usize, chords.len());
        let epochs = chords.chunks(3).count() as u64;
        assert_eq!(ack.epoch, epochs);
        let info1 = control.info().unwrap();
        assert_eq!(info1.epoch, epochs, "INFO observes the hot-swap");
        assert_eq!(handle.current_epoch(), epochs);

        stop.store(true, Ordering::SeqCst);
        for t in query_threads {
            assert!(t.join().unwrap() > 0);
        }

        // Post-swap answers equal a from-scratch rebuild of the updated
        // graph.
        let mut full = ring.clone();
        full.extend_from_slice(&chords);
        let updated = pll_graph::CsrGraph::from_edges(n as usize, &full).unwrap();
        let rebuilt = pll_core::IndexBuilder::new()
            .bit_parallel_roots(2)
            .build(&updated)
            .unwrap();
        for s in 0..n {
            for t in (0..n).step_by(7) {
                assert_eq!(
                    control.query(s, t).unwrap(),
                    rebuilt.distance(s, t).map(u64::from),
                    "post-swap pair ({s}, {t})"
                );
            }
        }
        control.shutdown_server().unwrap();
        let summary = handle.join();
        assert_eq!(summary.errors, 0, "no dropped connections, no errors");
        assert_eq!(summary.updates, epochs);
        assert_eq!(summary.final_epoch, epochs);
    }

    #[test]
    fn background_flatten_hammer_matches_offline_replay() {
        // Overlay-direct serving with flatten_threshold 1: every batch
        // arms the background flattener. Three waves of insertions, each
        // ending with a drain back to a flat base (INFO overlay_entries
        // == 0, flatten generation advanced), race against hammer query
        // threads; after every wave the full answer stream is byte-diffed
        // against an offline DynamicIndex replay of the same edges. The
        // hammer threads cross at least three swap generations.
        let n = 48u32;
        let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let chords: Vec<(u32, u32)> = (0..n / 2).map(|i| (i, i + n / 2)).collect();
        let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
        let idx = pll_core::IndexBuilder::new()
            .bit_parallel_roots(2)
            .build(&g)
            .unwrap();
        let index = Arc::new(AnyIndex::Undirected(idx));
        let handle = serve_dynamic(
            Arc::clone(&index),
            Some(&g),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
                flatten_threshold: Some(1),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr().to_string();

        let stop = Arc::new(AtomicBool::new(false));
        let mut hammers = Vec::new();
        for c in 0..2u32 {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            hammers.push(std::thread::spawn(move || {
                let mut client = protocol::Client::connect(&addr).unwrap();
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let pairs: Vec<(u32, u32)> = (0..24u32)
                        .map(|i| ((i * 5 + c) % n, (i * 11 + 3) % n))
                        .collect();
                    // Racing the publishes and base swaps below; the
                    // transport must never error and the ring stays
                    // connected throughout.
                    let answers = client.batch(&pairs).unwrap();
                    assert!(answers.iter().all(|d| d.is_some()));
                    served += answers.len() as u64;
                }
                served
            }));
        }

        // The offline replay shadows the served index wave by wave.
        let mut offline = DynamicIndex::new(Arc::clone(&index), &g).unwrap();
        let mut control = protocol::Client::connect(&addr).unwrap();
        let waves: Vec<&[(u32, u32)]> = chords.chunks(chords.len().div_ceil(3)).collect();
        assert!(waves.len() >= 3, "need three flatten generations");
        let mut flattens_seen = 0u64;
        for wave in waves {
            for batch in wave.chunks(2) {
                let ack = control.update(batch).unwrap();
                assert_eq!(ack.applied as usize, batch.len());
                assert_eq!(ack.flatten_us, 0, "no flatten on the request path");
            }
            offline.apply(wave).unwrap();
            // Wait for the flattener to fold the overlay into a fresh
            // flat base — one swap generation completes.
            let deadline = Instant::now() + Duration::from_secs(30);
            let info = loop {
                let info = control.info().unwrap();
                if info.overlay_entries == 0 && info.flattens > flattens_seen {
                    break info;
                }
                assert!(
                    Instant::now() < deadline,
                    "flattener never caught up: {info:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            };
            flattens_seen = info.flattens;
            // Byte-diff the full answer stream against the replay.
            for s in 0..n {
                for t in 0..n {
                    assert_eq!(
                        protocol::answers::distance_line(s, t, control.query(s, t).unwrap()),
                        protocol::answers::distance_line(
                            s,
                            t,
                            offline.distance(s, t).map(u64::from)
                        ),
                        "wave answers diverge at ({s}, {t})"
                    );
                }
            }
        }
        assert!(flattens_seen >= 3, "flattens {flattens_seen}");

        stop.store(true, Ordering::SeqCst);
        for h in hammers {
            assert!(h.join().unwrap() > 0);
        }
        control.shutdown_server().unwrap();
        let summary = handle.join();
        assert_eq!(summary.errors, 0, "no dropped connections, no errors");
        assert_eq!(summary.panics, 0);
        assert!(
            summary.cache_hits + summary.cache_misses > 0,
            "the hammer exercised the answer cache"
        );
    }

    #[test]
    fn malformed_frames_get_bad_request() {
        let (handle, _index) = start(1);
        let addr = handle.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Unknown opcode.
        write_frame(&mut stream, &[0xEE]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        // Short QUERY body.
        write_frame(&mut stream, &[OP_QUERY, 1, 2]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        // Empty frame.
        write_frame(&mut stream, &[]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        drop(stream);
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.errors, 3);
    }

    /// Temp-file path unique to this process and call site.
    fn temp_path(name: &str) -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("pll_server_test_{}_{n}_{name}", std::process::id()))
    }

    fn wal_server_config(wal: &std::path::Path, index: &std::path::Path) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            wal: Some(WalConfig {
                wal_path: wal.to_path_buf(),
                index_path: index.to_path_buf(),
                snapshot_every: 0,
            }),
            ..ServerConfig::default()
        }
    }

    /// Builds a ring index, persists it to `index_path` (recovery
    /// fingerprints the real file), and returns the ring graph plus the
    /// chord edges the tests insert.
    fn ring_fixture(index_path: &std::path::Path) -> (pll_graph::CsrGraph, Vec<(u32, u32)>) {
        let n = 40u32;
        let ring: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let chords: Vec<(u32, u32)> = (0..n / 2).map(|i| (i, i + n / 2)).collect();
        let g = pll_graph::CsrGraph::from_edges(n as usize, &ring).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let mut bytes = Vec::new();
        pll_core::v2::save_v2_index(&idx, &mut bytes).unwrap();
        wal::atomic_write(index_path, &bytes).unwrap();
        (g, chords)
    }

    fn load_index(path: &std::path::Path) -> Arc<AnyIndex> {
        let bytes = std::fs::read(path).unwrap();
        let aligned = Arc::new(pll_core::AlignedBytes::from_bytes(&bytes));
        Arc::new(pll_core::v2::open_v2_bytes(aligned).unwrap())
    }

    #[test]
    fn swap_cell_recovers_from_poisoned_locks() {
        let cell = Arc::new(SwapCell::new(served_index()));
        // Poison the lock: a thread panics while holding the write guard.
        let poisoner = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.write().unwrap();
            panic!("simulated worker panic during a swap");
        })
        .join();
        assert!(cell.inner.is_poisoned());
        // Load and store keep working: the protected Arc pointer is
        // replaced atomically, so it is consistent no matter where the
        // panicking holder died.
        let before = cell.load();
        assert_eq!(before.epoch, 0);
        cell.store(7, before.served.clone());
        assert_eq!(cell.load().epoch, 7);
    }

    #[test]
    fn overload_sheds_busy_and_retry_client_converges() {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                max_pending: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr().to_string();

        // Pin the single worker with a served connection...
        let mut pinned = protocol::Client::connect(&addr).unwrap();
        assert!(pinned.query(0, 1).is_ok());
        // ...fill the one-slot hand-off queue...
        let queued = protocol::Client::connect(&addr).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // ...so the next arrival is shed: the accept loop writes one
        // unsolicited STATUS_BUSY frame and closes.
        let shed = TcpStream::connect(handle.local_addr()).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let frame = read_frame(&shed).unwrap().unwrap();
        assert_eq!(frame[0], STATUS_BUSY, "shed connections are told why");
        drop(shed);

        // A retrying client that arrives during the overload converges
        // once capacity frees up, with at least one backoff retry.
        let retry_thread = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = protocol::RetryClient::new(
                    &addr,
                    protocol::RetryPolicy {
                        max_attempts: 12,
                        ..protocol::RetryPolicy::default()
                    },
                );
                let d = client.query(0, 1).unwrap();
                (d, client.stats())
            })
        };
        std::thread::sleep(Duration::from_millis(150));
        drop(pinned);
        drop(queued);
        let (d, stats) = retry_thread.join().unwrap();
        assert_eq!(d, index.distance(0, 1));
        assert!(stats.retries >= 1, "stats {stats:?}");

        let mut control = protocol::Client::connect(&addr).unwrap();
        control.shutdown_server().unwrap();
        let summary = handle.join();
        assert!(summary.sheds >= 2, "sheds {}", summary.sheds);
    }

    #[test]
    fn slow_loris_is_disconnected_mid_frame() {
        use std::io::{Read, Write};
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                mid_frame_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr();

        // Open a frame (one byte of the length prefix), then stall.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(&[9]).unwrap();
        // The server declares the peer dead after `mid_frame_timeout` and
        // frees its (only) worker: a well-behaved client gets served.
        std::thread::sleep(Duration::from_millis(400));
        let mut client = protocol::Client::connect(&addr.to_string()).unwrap();
        assert_eq!(client.query(0, 1).unwrap(), index.distance(0, 1));
        // The stalled connection was closed server-side, never answered.
        loris
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 16];
        match loris.read(&mut buf) {
            Ok(0) | Err(_) => {} // clean close or reset
            Ok(n) => panic!("server answered {n} bytes to a half-frame"),
        }
        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert!(summary.errors >= 1, "the loris drop is counted");
    }

    #[test]
    fn dead_peer_write_timeout_frees_the_worker() {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                write_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr();

        // Pipeline large BATCH requests and never read a response: the
        // kernel buffers fill, the server's writes block, and the write
        // timeout must break the connection instead of pinning the worker
        // forever.
        let dead = TcpStream::connect(addr).unwrap();
        dead.set_write_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let count = 16_384u32;
        let mut request = Vec::with_capacity(5 + count as usize * 8);
        request.push(OP_BATCH);
        request.extend_from_slice(&count.to_le_bytes());
        for i in 0..count {
            request.extend_from_slice(&(i % 120).to_le_bytes());
            request.extend_from_slice(&((i * 7 + 3) % 120).to_le_bytes());
        }
        for _ in 0..256 {
            // Our own write erroring means both directions are jammed —
            // the server is certainly stuck in its (timed-out) write.
            if write_frame(&dead, &request).is_err() {
                break;
            }
        }
        // This connect queues behind the jammed connection and is served
        // as soon as the server's write timeout breaks it.
        let mut client = protocol::Client::connect(&addr.to_string()).unwrap();
        assert_eq!(client.query(2, 3).unwrap(), index.distance(2, 3));
        drop(dead);
        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert!(summary.errors >= 1, "the dead peer is counted");
    }

    #[test]
    fn wal_replay_restores_state_after_restart() {
        let wal_path = temp_path("restart.wal");
        let index_path = temp_path("restart.idx");
        let (g, chords) = ring_fixture(&index_path);
        let config = wal_server_config(&wal_path, &index_path);

        // First life: apply three batches and record the answers. With
        // `snapshot_every: 0` nothing is ever compacted, so the restart
        // must reconstruct everything from the journal alone.
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        assert_eq!(handle.recovery().unwrap().replayed_batches, 0);
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        for chunk in chords.chunks(7) {
            client.update(chunk).unwrap();
        }
        let epochs = chords.chunks(7).count() as u64;
        let pairs: Vec<(u32, u32)> = (0..40u32)
            .flat_map(|s| [(s, (s * 3 + 1) % 40), (s, (s + 20) % 40)])
            .collect();
        let before = client.batch(&pairs).unwrap();
        client.shutdown_server().unwrap();
        handle.join();

        // Second life over the same files: recovery replays every batch
        // and resumes at the pre-shutdown epoch with identical answers.
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let recovery = handle.recovery().unwrap().clone();
        assert_eq!(recovery.replayed_batches, epochs);
        assert!(recovery.replayed_edges > 0);
        assert_eq!(
            recovery.uncommitted_batches, 0,
            "clean shutdown committed all"
        );
        assert_eq!(recovery.recovered_epoch, epochs);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(handle.current_epoch(), epochs);
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        assert_eq!(client.info().unwrap().epoch, epochs);
        assert_eq!(
            client.batch(&pairs).unwrap(),
            before,
            "answers survive the restart"
        );
        // Epoch numbering continues; it does not restart at 1.
        let ack = client.update(&[(1, 30)]).unwrap();
        assert_eq!(ack.epoch, epochs + 1);
        client.shutdown_server().unwrap();
        handle.join();
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&index_path);
    }

    #[test]
    fn snapshot_compaction_truncates_the_wal_and_survives_restart() {
        let wal_path = temp_path("snap.wal");
        let index_path = temp_path("snap.idx");
        let (g, chords) = ring_fixture(&index_path);
        let original_fingerprint = wal::fingerprint_file(&index_path).unwrap();
        let mut config = wal_server_config(&wal_path, &index_path);
        config.wal.as_mut().unwrap().snapshot_every = 2;

        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        for chunk in chords.chunks(5) {
            client.update(chunk).unwrap();
        }
        // 4 batches with snapshot_every = 2: the second snapshot lands on
        // the final batch, so the WAL ends compacted.
        let epochs = chords.chunks(5).count() as u64;
        let pairs: Vec<(u32, u32)> = (0..40u32).map(|s| (s, (s * 7 + 3) % 40)).collect();
        let before = client.batch(&pairs).unwrap();
        client.shutdown_server().unwrap();
        handle.join();

        // The snapshot rewrote the index file and reset the WAL to a
        // single Rebase record carrying every inserted edge.
        assert_ne!(
            wal::fingerprint_file(&index_path).unwrap(),
            original_fingerprint,
            "snapshot must replace the index file"
        );
        let contents = wal::read_wal(&wal_path).unwrap().unwrap();
        assert_eq!(contents.header.base_epoch, epochs);
        assert_eq!(contents.records.len(), 1, "compacted to the Rebase record");
        assert!(
            matches!(&contents.records[0], WalRecord::Rebase { edges } if edges.len() == chords.len())
        );

        // Restart: no batches to replay; the rebase edges all prune as
        // duplicates against the snapshot; answers are identical and the
        // epoch resumes where it left off.
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let recovery = handle.recovery().unwrap().clone();
        assert_eq!(recovery.replayed_batches, 0);
        assert_eq!(recovery.rebase_edges, chords.len() as u64);
        assert_eq!(recovery.recovered_epoch, epochs);
        assert_eq!(handle.current_epoch(), epochs);
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        assert_eq!(client.batch(&pairs).unwrap(), before);
        client.shutdown_server().unwrap();
        handle.join();
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&index_path);
    }

    #[test]
    fn out_of_range_update_is_rejected_before_journaling() {
        let wal_path = temp_path("validate.wal");
        let index_path = temp_path("validate.idx");
        let (g, chords) = ring_fixture(&index_path);
        let config = wal_server_config(&wal_path, &index_path);
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();

        // An edge past the vertex count must be refused as a bad request
        // *before* the batch reaches the WAL: a journaled record that
        // cannot replay would fail recovery at every later restart.
        let err = client.update(&[(0, 1000)]).unwrap_err();
        assert!(
            matches!(
                err,
                ProtocolError::Server {
                    status: STATUS_BAD_REQUEST,
                    ..
                }
            ),
            "got {err}"
        );
        // The rejection is clean: the updater is not poisoned, so a valid
        // batch still applies…
        let ack = client.update(&chords[..5]).unwrap();
        assert_eq!(ack.applied, 5);
        assert_eq!(ack.epoch, 1);
        client.shutdown_server().unwrap();
        handle.join();

        // …and the rejected batch left no trace in the journal.
        let contents = wal::read_wal(&wal_path).unwrap().unwrap();
        let updates = contents
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Update { .. }))
            .count();
        assert_eq!(updates, 1, "only the valid batch was journaled");

        // A restart replays cleanly — no degraded recovery.
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let recovery = handle.recovery().unwrap().clone();
        assert!(recovery.replay_error.is_none());
        assert_eq!(recovery.replayed_batches, 1);
        assert_eq!(recovery.recovered_epoch, 1);
        handle.shutdown();
        handle.join();
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&index_path);
    }

    #[test]
    fn unreplayable_wal_record_degrades_instead_of_refusing_startup() {
        let wal_path = temp_path("degrade.wal");
        let index_path = temp_path("degrade.idx");
        let (g, chords) = ring_fixture(&index_path);
        let config = wal_server_config(&wal_path, &index_path);

        // First life: one good batch, then a clean shutdown.
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        client.update(&chords[..7]).unwrap();
        let pairs: Vec<(u32, u32)> = (0..40u32).map(|s| (s, (s + 20) % 40)).collect();
        let before = client.batch(&pairs).unwrap();
        client.shutdown_server().unwrap();
        handle.join();

        // Corrupt the journal semantically (as a WAL from a different
        // build would): a structurally valid record that cannot apply,
        // followed by a record that could.
        let contents = wal::read_wal(&wal_path).unwrap().unwrap();
        let good_records = contents.records.len();
        let mut writer = WalWriter::open_existing(&wal_path, contents.valid_len).unwrap();
        writer
            .append(&WalRecord::Update {
                epoch: 99,
                edges: vec![(0, 40)], // vertex 40 out of range for n = 40
            })
            .unwrap();
        writer
            .append(&WalRecord::Update {
                epoch: 100,
                edges: vec![(0, 2)],
            })
            .unwrap();
        drop(writer);

        // Second life: the server must start anyway, serve the state
        // recovered before the bad record, and refuse further updates.
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let recovery = handle.recovery().unwrap().clone();
        let err = recovery
            .replay_error
            .expect("replay must report the bad record");
        assert!(err.contains(&format!("WAL record {good_records}")), "{err}");
        assert_eq!(
            recovery.replayed_batches, 1,
            "replay stops at the bad record; the record after it is not applied"
        );
        assert_eq!(recovery.recovered_epoch, 1);
        assert_eq!(handle.current_epoch(), 1);
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        assert_eq!(
            client.batch(&pairs).unwrap(),
            before,
            "queries answer from the recovered prefix"
        );
        assert!(matches!(
            client.update(&[(1, 21)]).unwrap_err(),
            ProtocolError::Server {
                status: STATUS_UNSUPPORTED,
                ..
            }
        ));
        client.shutdown_server().unwrap();
        handle.join();
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&index_path);
    }

    #[test]
    fn recovery_applies_chunked_rebase_records() {
        // snapshot_compact chunks an oversized rebase set into several
        // Rebase records; recovery must treat a multi-record rebase
        // exactly like a single one.
        let wal_path = temp_path("chunked.wal");
        let index_path = temp_path("chunked.idx");
        let (g, chords) = ring_fixture(&index_path);
        let fingerprint = wal::fingerprint_file(&index_path).unwrap();
        let header = wal::WalHeader {
            fingerprint,
            prev_fingerprint: fingerprint,
            base_epoch: 5,
        };
        let (first, second) = chords.split_at(chords.len() / 2);
        let records = vec![
            WalRecord::Rebase {
                edges: first.to_vec(),
            },
            WalRecord::Rebase {
                edges: second.to_vec(),
            },
        ];
        drop(WalWriter::create(&wal_path, &header, &records).unwrap());

        let config = wal_server_config(&wal_path, &index_path);
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let recovery = handle.recovery().unwrap().clone();
        assert!(recovery.replay_error.is_none());
        assert_eq!(recovery.rebase_edges, chords.len() as u64);
        assert_eq!(
            recovery.recovered_epoch, 5,
            "epoch restarts at the snapshot's"
        );

        // Answers equal a from-scratch build over ring + all chords.
        let n = 40u32;
        let mut full: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        full.extend_from_slice(&chords);
        let updated = pll_graph::CsrGraph::from_edges(n as usize, &full).unwrap();
        let rebuilt = IndexBuilder::new()
            .bit_parallel_roots(2)
            .build(&updated)
            .unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        for s in (0..n).step_by(3) {
            for t in (0..n).step_by(7) {
                assert_eq!(
                    client.query(s, t).unwrap(),
                    rebuilt.distance(s, t).map(u64::from),
                    "pair ({s}, {t})"
                );
            }
        }
        client.shutdown_server().unwrap();
        handle.join();
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&index_path);
    }

    #[test]
    fn wal_without_graph_is_refused() {
        let config = wal_server_config(&temp_path("nograph.wal"), &temp_path("nograph.idx"));
        match serve(served_index(), &config) {
            Err(err @ ServeError::Dynamic(_)) => {
                assert!(err.to_string().contains("dynamic"), "{err}");
            }
            Err(other) => panic!("expected a Dynamic error, got {other}"),
            Ok(_) => panic!("a WAL on a static server must be refused"),
        }
    }

    #[test]
    fn wal_for_a_different_index_is_refused() {
        let wal_path = temp_path("mismatch.wal");
        let index_path = temp_path("mismatch.idx");
        let (g, chords) = ring_fixture(&index_path);
        let config = wal_server_config(&wal_path, &index_path);
        // First life journals a batch...
        let handle = serve_dynamic(load_index(&index_path), Some(&g), &config).unwrap();
        let mut client = protocol::Client::connect(&handle.local_addr().to_string()).unwrap();
        client.update(&chords[..3]).unwrap();
        client.shutdown_server().unwrap();
        handle.join();
        // ...then the index file is swapped out from under the WAL.
        let other = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let mut bytes = Vec::new();
        pll_core::v2::save_v2_index(&other, &mut bytes).unwrap();
        wal::atomic_write(&index_path, &bytes).unwrap();
        let err = match serve_dynamic(load_index(&index_path), Some(&g), &config) {
            Err(e) => e,
            Ok(_) => panic!("a WAL for a different index must be refused"),
        };
        assert!(err.to_string().contains("different base index"), "{err}");
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&index_path);
    }
}
