//! A concurrent TCP query service over a shared, read-only pruned
//! landmark labeling index — the serving half of the paper's story: once
//! built, the index answers each query from two contiguous regions in
//! microseconds, so one process can sustain heavy query traffic.
//!
//! Architecture (std-only, no async runtime):
//!
//! * the listener thread accepts connections and feeds them to a
//!   fixed-size worker pool over an `mpsc` channel;
//! * each worker owns one connection at a time and serves its stream of
//!   length-prefixed requests ([`protocol`]) against the shared
//!   [`AnyIndex`] — zero-copy v2 indices are queried in place, so workers
//!   share one buffer with no per-query allocation beyond the response
//!   frame;
//! * per-worker [`metrics::WorkerMetrics`] (relaxed atomics) record
//!   QPS and a log₂ service-latency histogram;
//! * graceful shutdown: an [`protocol::OP_SHUTDOWN`] request (or
//!   [`ServerHandle::shutdown`]) stops the accept loop, drains queued
//!   connections, lets in-flight requests finish, and
//!   [`ServerHandle::join`] returns a [`metrics::ServerSummary`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;

use metrics::{summarize, ServerSummary, WorkerMetrics};
use pll_core::AnyIndex;
use protocol::{
    format_code, write_frame, ProtocolError, MAX_BATCH, OP_BATCH, OP_INFO, OP_QUERY, OP_SHUTDOWN,
    STATUS_BAD_REQUEST, STATUS_OK, STATUS_QUERY_ERROR, UNREACHABLE,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a worker blocks on a quiet connection before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4717` (port 0 picks a free port;
    /// read the bound address back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per CPU).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4717".into(),
            threads: 0,
        }
    }
}

/// Errors starting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind or accept.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running server: owns the listener and worker threads.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener_thread: std::thread::JoinHandle<()>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    worker_metrics: Arc<Vec<WorkerMetrics>>,
    started: Instant,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.worker_metrics.len()
    }

    /// Requests a graceful shutdown (same effect as a client sending
    /// [`OP_SHUTDOWN`]).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop and every worker to finish (i.e. until
    /// someone requests shutdown and in-flight connections drain), then
    /// returns the aggregated metrics.
    pub fn join(self) -> ServerSummary {
        self.listener_thread.join().expect("listener thread");
        for w in self.worker_threads {
            w.join().expect("worker thread");
        }
        summarize(&self.worker_metrics, self.started.elapsed().as_secs_f64())
    }
}

/// Starts the service: binds `config.addr`, spawns the worker pool and
/// the accept loop, and returns immediately with a [`ServerHandle`].
///
/// The index is shared read-only across workers; for a v2 (zero-copy)
/// index that means all workers answer from the same mapped buffer.
pub fn serve(index: Arc<AnyIndex>, config: &ServerConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        config.threads
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let worker_metrics: Arc<Vec<WorkerMetrics>> =
        Arc::new((0..threads).map(|_| WorkerMetrics::default()).collect());

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_threads = Vec::with_capacity(threads);
    for worker_id in 0..threads {
        let rx = Arc::clone(&rx);
        let index = Arc::clone(&index);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&worker_metrics);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("pll-serve-{worker_id}"))
                .spawn(move || {
                    loop {
                        // Block on the shared queue; a closed channel
                        // (listener gone) ends the worker.
                        let conn = {
                            let guard = rx.lock().expect("connection queue poisoned");
                            guard.recv()
                        };
                        match conn {
                            Ok(stream) => {
                                serve_connection(&index, stream, &metrics[worker_id], &shutdown);
                                metrics[worker_id]
                                    .connections
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }

    let listener_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("pll-serve-accept".into())
            .spawn(move || {
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // The accepted socket must be blocking even
                            // though the listener polls.
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
                // Dropping the sender ends every idle worker.
                drop(tx);
            })
            .expect("spawn listener")
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        listener_thread,
        worker_threads,
        worker_metrics,
        started: Instant::now(),
    })
}

/// How long a peer may stall *inside* a frame before the connection is
/// declared dead. Distinct from [`READ_POLL`]: between frames a timeout
/// just means "idle, re-check shutdown", but once a frame has started a
/// stall means a broken or malicious peer.
const MID_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Reads one frame, polling the shutdown flag while the connection is
/// idle. Socket read timeouts are only ever allowed to fire *between*
/// frames: a plain timeout-driven `read_frame` loop would discard
/// partially-read bytes on a slow link and permanently desync the
/// stream, so the idle wait covers exactly the first byte of the length
/// prefix, and the rest of the frame is read under a single generous
/// deadline.
///
/// Returns `Ok(None)` on clean EOF or shutdown, `Err` on a dead or
/// misbehaving peer.
fn read_frame_shutdown_aware(
    reader: &mut std::io::BufReader<TcpStream>,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    use std::io::Read;
    // Phase 1: await the first byte of the length prefix (idle wait).
    let mut first = [0u8; 1];
    loop {
        match reader.read_exact(&mut first) {
            Ok(()) => break,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    // Phase 2: the frame has started — read the rest under one deadline.
    let _ = reader.get_ref().set_read_timeout(Some(MID_FRAME_TIMEOUT));
    let result = (|| {
        let mut rest = [0u8; 3];
        reader.read_exact(&mut rest)?;
        let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
        if len > protocol::MAX_FRAME_LEN {
            return Err(ProtocolError::Malformed(format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                protocol::MAX_FRAME_LEN
            )));
        }
        let mut payload = vec![0u8; len as usize];
        reader.read_exact(&mut payload)?;
        Ok(Some(payload))
    })();
    let _ = reader.get_ref().set_read_timeout(Some(READ_POLL));
    result
}

/// Serves one connection until EOF, a transport error, or shutdown.
fn serve_connection(
    index: &AnyIndex,
    stream: TcpStream,
    metrics: &WorkerMetrics,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let frame = match read_frame_shutdown_aware(&mut reader, shutdown) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF or shutdown while idle
            Err(_) => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        let started = Instant::now();
        let (response, queries, stop) = handle_request(index, &frame, shutdown);
        if response[0] != STATUS_OK {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut writer, &response).is_err() {
            break;
        }
        metrics.record_request(started.elapsed().as_nanos() as u64, queries);
        if stop {
            break;
        }
    }
}

fn error_response(status: u8, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(status);
    out.extend_from_slice(message.as_bytes());
    out
}

/// Dispatches one request frame. Returns `(response payload, distance
/// queries answered, close connection after responding)`.
fn handle_request(index: &AnyIndex, frame: &[u8], shutdown: &AtomicBool) -> (Vec<u8>, u64, bool) {
    let Some((&op, body)) = frame.split_first() else {
        return (
            error_response(STATUS_BAD_REQUEST, "empty request frame"),
            0,
            false,
        );
    };
    match op {
        OP_QUERY => {
            if body.len() != 8 {
                return (
                    error_response(STATUS_BAD_REQUEST, "QUERY body must be 8 bytes"),
                    0,
                    false,
                );
            }
            let s = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
            let t = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
            match index.try_distance(s, t) {
                Ok(d) => {
                    let mut out = Vec::with_capacity(9);
                    out.push(STATUS_OK);
                    out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes());
                    (out, 1, false)
                }
                Err(e) => (error_response(STATUS_QUERY_ERROR, &e.to_string()), 0, false),
            }
        }
        OP_BATCH => {
            if body.len() < 4 {
                return (
                    error_response(STATUS_BAD_REQUEST, "BATCH body too short"),
                    0,
                    false,
                );
            }
            let count = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
            if count > MAX_BATCH || body.len() != 4 + count * 8 {
                return (
                    error_response(STATUS_BAD_REQUEST, "BATCH count disagrees with body"),
                    0,
                    false,
                );
            }
            let mut out = Vec::with_capacity(5 + count * 8);
            out.push(STATUS_OK);
            out.extend_from_slice(&(count as u32).to_le_bytes());
            for pair in body[4..].chunks_exact(8) {
                let s = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
                let t = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
                match index.try_distance(s, t) {
                    Ok(d) => out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes()),
                    Err(e) => {
                        return (error_response(STATUS_QUERY_ERROR, &e.to_string()), 0, false)
                    }
                }
            }
            (out, count as u64, false)
        }
        OP_INFO => {
            let mut out = Vec::with_capacity(11);
            out.push(STATUS_OK);
            out.extend_from_slice(&(index.num_vertices() as u64).to_le_bytes());
            out.push(format_code(index.format()));
            out.push(index.format_version());
            (out, 0, false)
        }
        OP_SHUTDOWN => {
            shutdown.store(true, Ordering::SeqCst);
            (vec![STATUS_OK], 0, true)
        }
        other => (
            error_response(STATUS_BAD_REQUEST, &format!("unknown opcode {other}")),
            0,
            false,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_core::IndexBuilder;
    use pll_graph::gen;
    use protocol::read_frame;

    fn served_index() -> Arc<AnyIndex> {
        // Round-trip through the v2 format so the server exercises the
        // zero-copy path, exactly as `pll serve` does.
        let g = gen::barabasi_albert(120, 3, 9).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let mut buf = Vec::new();
        pll_core::v2::save_v2_index(&idx, &mut buf).unwrap();
        let aligned = std::sync::Arc::new(pll_core::AlignedBytes::from_bytes(&buf));
        Arc::new(pll_core::v2::open_v2_bytes(aligned).unwrap())
    }

    fn start(threads: usize) -> (ServerHandle, Arc<AnyIndex>) {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads,
            },
        )
        .unwrap();
        (handle, index)
    }

    #[test]
    fn serves_singles_batches_info_and_shuts_down() {
        let (handle, index) = start(2);
        assert_eq!(handle.num_workers(), 2);
        let addr = handle.local_addr().to_string();
        let mut client = protocol::Client::connect(&addr).unwrap();

        let info = client.info().unwrap();
        assert_eq!(info.num_vertices, 120);
        assert_eq!(info.format, 0);
        assert_eq!(info.format_version, 2);

        let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, (i * 7 + 3) % 120)).collect();
        for &(s, t) in &pairs[..10] {
            assert_eq!(
                client.query(s, t).unwrap(),
                index.distance(s, t),
                "single ({s}, {t})"
            );
        }
        let answers = client.batch(&pairs).unwrap();
        for (&(s, t), got) in pairs.iter().zip(&answers) {
            assert_eq!(*got, index.distance(s, t), "batch ({s}, {t})");
        }

        // Out-of-range queries answer an error status, not a hangup.
        let err = client.query(0, 10_000).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Server {
                status: STATUS_QUERY_ERROR,
                ..
            }
        ));
        // The connection is still usable afterwards.
        assert_eq!(client.query(0, 1).unwrap(), index.distance(0, 1));

        client.shutdown_server().unwrap();
        let summary = handle.join();
        assert!(summary.queries >= 51);
        assert!(summary.requests >= 13);
        assert_eq!(summary.errors, 1);
        assert!(summary.qps > 0.0);
        assert!(summary.p99_us > 0.0);
        assert_eq!(summary.workers.len(), 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let (handle, index) = start(4);
        let addr = handle.local_addr().to_string();
        let mut joins = Vec::new();
        for c in 0..4u32 {
            let addr = addr.clone();
            let index = Arc::clone(&index);
            joins.push(std::thread::spawn(move || {
                let mut client = protocol::Client::connect(&addr).unwrap();
                let pairs: Vec<(u32, u32)> = (0..200u32)
                    .map(|i| ((i + c * 31) % 120, (i * 17 + c) % 120))
                    .collect();
                let answers = client.batch(&pairs).unwrap();
                for (&(s, t), got) in pairs.iter().zip(&answers) {
                    assert_eq!(*got, index.distance(s, t), "client {c} pair ({s}, {t})");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.queries, 4 * 200);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn malformed_frames_get_bad_request() {
        let (handle, _index) = start(1);
        let addr = handle.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Unknown opcode.
        write_frame(&mut stream, &[0xEE]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        // Short QUERY body.
        write_frame(&mut stream, &[OP_QUERY, 1, 2]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        // Empty frame.
        write_frame(&mut stream, &[]).unwrap();
        let resp = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_BAD_REQUEST);
        drop(stream);
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.errors, 3);
    }
}
