//! Fixture tests for every `pll-audit` rule: one passing and one
//! violating snippet per rule, the waiver grammar (well-formed,
//! malformed, unused), the non-waivable hard errors, and the self-test
//! that the committed tree is clean under `--deny` semantics.
//!
//! The fixtures are in-memory string literals fed through
//! [`pll_audit::scan_source`] with a synthetic repo-relative path — the
//! path is part of the fixture, because every rule scopes by path.

use pll_audit::{scan_source, Report};

/// Rules that fired in `r`, in order.
fn rules(r: &Report) -> Vec<&str> {
    r.findings.iter().map(|f| f.rule.as_str()).collect()
}

// ---------------------------------------------------------------------
// unsafe-confinement
// ---------------------------------------------------------------------

#[test]
fn unsafe_outside_allowlist_fires() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let r = scan_source("crates/core/src/par.rs", src);
    assert_eq!(rules(&r), ["unsafe-confinement"]);
    assert_eq!(r.findings[0].line, 2);
    assert!(r.findings[0].message.contains("allowlisted"));
}

#[test]
fn unsafe_in_allowlisted_module_with_safety_comment_passes() {
    let src = "pub fn f(p: *const u8) -> u8 {\n\
               \x20   // SAFETY: caller guarantees p is valid (fixture).\n\
               \x20   unsafe { *p }\n}\n";
    let r = scan_source("crates/core/src/storage.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn unsafe_in_allowlisted_module_without_safety_comment_fires() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let r = scan_source("crates/core/src/storage.rs", src);
    assert_eq!(rules(&r), ["unsafe-confinement"]);
    assert!(r.findings[0].message.contains("SAFETY"));
}

#[test]
fn safety_comment_covers_a_contiguous_unsafe_block() {
    // One comment, two unsafe sites on consecutive lines: the second
    // site keeps the annotation window open.
    let src = "// SAFETY: both views alias the same allocation (fixture).\n\
               let a = unsafe { x() };\n\
               let b = unsafe { y() };\n";
    let r = scan_source("crates/core/src/storage.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn unsafe_in_string_or_comment_is_ignored() {
    let src = "// this comment says unsafe\nlet s = \"unsafe { }\";\nlet id = unsafe_code_count;\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

// ---------------------------------------------------------------------
// durable-write
// ---------------------------------------------------------------------

#[test]
fn file_create_in_core_fires() {
    let src = "fn save(p: &std::path::Path) {\n    let f = std::fs::File::create(p);\n}\n";
    let r = scan_source("crates/core/src/serialize.rs", src);
    assert_eq!(rules(&r), ["durable-write"]);
    assert!(r.findings[0].message.contains("atomic_write"));
}

#[test]
fn open_options_in_cli_fires() {
    let src = "fn f() {\n    let o = std::fs::OpenOptions::new().write(true);\n}\n";
    let r = scan_source("crates/cli/src/main.rs", src);
    assert_eq!(rules(&r), ["durable-write"]);
}

#[test]
fn file_create_is_allowed_in_wal_tests_and_bench() {
    let src = "fn f(p: &std::path::Path) {\n    let f = std::fs::File::create(p);\n}\n";
    // wal.rs implements the discipline.
    assert!(scan_source("crates/core/src/wal.rs", src).is_clean());
    // bench output is out of scope.
    assert!(scan_source("crates/bench/src/lib.rs", src).is_clean());
    // test code is out of scope.
    let test_src = "#[cfg(test)]\nmod tests {\n    fn f() {\n        let f = std::fs::File::create(\"x\");\n    }\n}\n";
    assert!(scan_source("crates/core/src/serialize.rs", test_src).is_clean());
}

// ---------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------

#[test]
fn unannotated_ordering_fires() {
    let src =
        "fn f(c: &std::sync::atomic::AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    let r = scan_source("crates/core/src/par.rs", src);
    assert_eq!(rules(&r), ["atomic-ordering"]);
    assert!(r.findings[0].waivable);
}

#[test]
fn ordering_comment_within_window_passes() {
    let src = "fn f(c: &std::sync::atomic::AtomicU64) {\n\
               \x20   // ORDERING: Relaxed — plain counter (fixture).\n\
               \x20   c.fetch_add(1, Ordering::Relaxed);\n\
               \x20   c.fetch_add(2, Ordering::Relaxed);\n}\n";
    let r = scan_source("crates/core/src/par.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn all_five_ordering_variants_are_matched() {
    for variant in ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"] {
        let src = format!("fn f() {{\n    x.load(Ordering::{variant});\n}}\n");
        let r = scan_source("crates/core/src/order.rs", &src);
        assert_eq!(rules(&r), ["atomic-ordering"], "variant {variant}");
    }
}

#[test]
fn cmp_ordering_is_not_an_atomic_ordering() {
    let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n    std::cmp::Ordering::Less\n}\n";
    // `Ordering::Less` is not one of the five atomic variants.
    let r = scan_source("crates/core/src/order.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn relaxed_on_publish_named_operation_is_a_hard_error() {
    for name in ["epoch", "publish", "shutdown"] {
        let src = format!(
            "// ORDERING: annotated, but still wrong (fixture).\n\
             fn f() {{\n    self.{name}_flag.store(1, Ordering::Relaxed);\n}}\n"
        );
        let r = scan_source("crates/server/src/lib.rs", &src);
        assert_eq!(rules(&r), ["atomic-ordering"], "name {name}");
        assert!(!r.findings[0].waivable, "{name} must be non-waivable");
        assert!(r.findings[0].message.contains("hard error"));
    }
}

#[test]
fn relaxed_hard_error_ignores_waivers() {
    let src = "// audit: allow(atomic-ordering, reason = \"trust me\")\n\
               epoch_counter.store(1, Ordering::Relaxed);\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    // The hard error survives AND the waiver is reported unused
    // (findings sort by line: the waiver comment precedes the store).
    assert_eq!(rules(&r), ["unused-waiver", "atomic-ordering"]);
}

// ---------------------------------------------------------------------
// lock-hygiene
// ---------------------------------------------------------------------

#[test]
fn lock_unwrap_in_server_fires() {
    for call in ["lock", "read", "write"] {
        let src = format!("fn f() {{\n    let g = MU.{call}().unwrap();\n}}\n");
        let r = scan_source("crates/server/src/lib.rs", &src);
        assert!(
            rules(&r).contains(&"lock-hygiene"),
            "{call}(): got {:?}",
            r.findings
        );
    }
}

#[test]
fn poison_recovering_lock_passes() {
    let src =
        "fn f() {\n    let g = MU.lock().unwrap_or_else(|poisoned| poisoned.into_inner());\n}\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(
        !rules(&r).contains(&"lock-hygiene"),
        "unexpected findings: {:?}",
        r.findings
    );
}

#[test]
fn lock_unwrap_outside_server_is_out_of_scope() {
    let src = "fn f() {\n    let g = MU.lock().unwrap();\n}\n";
    let r = scan_source("crates/core/src/par.rs", src);
    assert!(!rules(&r).contains(&"lock-hygiene"));
}

// ---------------------------------------------------------------------
// panic-hygiene
// ---------------------------------------------------------------------

#[test]
fn panic_constructs_in_server_fire() {
    for (snippet, label) in [
        ("x.unwrap();", "unwrap"),
        ("x.expect(\"boom\");", "expect"),
        ("panic!(\"boom\");", "panic"),
        ("unreachable!();", "unreachable"),
        ("todo!();", "todo"),
        ("unimplemented!();", "unimplemented"),
        ("std::process::abort();", "abort"),
    ] {
        let src = format!("fn f() {{\n    {snippet}\n}}\n");
        let r = scan_source("crates/server/src/protocol.rs", &src);
        assert!(
            rules(&r).contains(&"panic-hygiene"),
            "{label}: got {:?}",
            r.findings
        );
    }
}

#[test]
fn unwrap_or_variants_pass() {
    let src = "fn f() {\n    let a = x.unwrap_or(0);\n    let b = x.unwrap_or_else(|| 0);\n    let c = x.unwrap_or_default();\n}\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn panics_in_test_modules_and_bench_lib_pass() {
    let test_src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.unwrap();\n    }\n}\n";
    assert!(scan_source("crates/server/src/lib.rs", test_src).is_clean());
    // Only the three smoke binaries are in scope, not the bench library.
    let src = "fn f() {\n    x.unwrap();\n}\n";
    assert!(scan_source("crates/bench/src/lib.rs", src).is_clean());
    // But the smoke binaries are.
    assert_eq!(
        rules(&scan_source("crates/bench/src/bin/serve_load.rs", src)),
        ["panic-hygiene"]
    );
}

// ---------------------------------------------------------------------
// metrics-hygiene
// ---------------------------------------------------------------------

#[test]
fn bare_atomic_counter_outside_metrics_module_fires() {
    let src = "struct S {\n    hits: AtomicU64,\n}\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert_eq!(rules(&r), ["metrics-hygiene"]);
    assert!(r.findings[0].message.contains("metrics"));
}

#[test]
fn atomic_counters_in_the_metrics_module_pass() {
    let src = "pub struct WorkerMetrics {\n    pub queries: AtomicU64,\n}\n";
    let r = scan_source("crates/server/src/metrics.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn atomic_collections_imports_and_tests_pass() {
    // The per-vertex generation table is shared state, not a metric.
    let src = "use std::sync::atomic::AtomicU64;\n\
               struct S {\n    gens: Vec<AtomicU64>,\n}\n\
               fn g(gens: &[AtomicU64]) -> usize {\n    gens.len()\n}\n";
    assert!(scan_source("crates/server/src/lib.rs", src).is_clean());
    let test_src = "#[cfg(test)]\nmod tests {\n    static C: AtomicU64 = AtomicU64::new(0);\n}\n";
    assert!(scan_source("crates/server/src/lib.rs", test_src).is_clean());
    // Other crates are out of scope for the stray-counter check.
    let src = "struct S {\n    hits: AtomicU64,\n}\n";
    assert!(scan_source("crates/core/src/par.rs", src).is_clean());
}

#[test]
fn metric_registration_with_empty_help_fires() {
    // Any crate: an undocumented metric is a finding wherever the
    // registry is used, including multi-line rustfmt-split calls.
    let src = "fn r(reg: &Registry) {\n    let c = reg.counter(\"pll_x_total\", \"\");\n}\n";
    let r = scan_source("crates/server/src/metrics.rs", src);
    assert_eq!(rules(&r), ["metrics-hygiene"]);
    assert!(r.findings[0].message.contains("help"));
    let split = "fn r(reg: &Registry) {\n    reg.gauge_fn(\n        \"pll_depth\",\n        \"\",\n    );\n}\n";
    let r = scan_source("crates/obs/src/lib.rs", split);
    assert_eq!(rules(&r), ["metrics-hygiene"]);
}

#[test]
fn metric_registration_with_help_passes() {
    let src = "fn r(reg: &Registry) {\n    let c = reg.counter(\"pll_x_total\", \"Things counted.\");\n}\n";
    let r = scan_source("crates/server/src/metrics.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

// ---------------------------------------------------------------------
// waiver grammar
// ---------------------------------------------------------------------

#[test]
fn waiver_on_own_line_suppresses_next_code_line() {
    let src = "// audit: allow(panic-hygiene, reason = \"fixture demonstrating waivers\")\n\
               fn f() { x.unwrap(); }\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, "panic-hygiene");
    assert_eq!(r.waivers[0].reason, "fixture demonstrating waivers");
}

#[test]
fn trailing_waiver_suppresses_its_own_line() {
    let src = "fn f() { x.unwrap(); } // audit: allow(panic-hygiene, reason = \"fixture\")\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
    assert_eq!(r.waivers.len(), 1);
}

#[test]
fn waiver_for_a_different_rule_does_not_suppress() {
    let src = "// audit: allow(lock-hygiene, reason = \"wrong rule\")\n\
               fn f() { x.unwrap(); }\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    // The panic finding survives and the lock waiver is unused.
    assert_eq!(rules(&r), ["unused-waiver", "panic-hygiene"]);
}

#[test]
fn malformed_waivers_are_findings() {
    for bad in [
        // missing reason entirely
        "// audit: allow(panic-hygiene)\n",
        // empty reason
        "// audit: allow(panic-hygiene, reason = \"\")\n",
        // unknown rule id
        "// audit: allow(no-such-rule, reason = \"x\")\n",
        // not the allow() form
        "// audit: suppress(panic-hygiene)\n",
    ] {
        let src = format!("{bad}fn f() {{ x.unwrap(); }}\n");
        let r = scan_source("crates/server/src/lib.rs", &src);
        let got = rules(&r);
        assert!(
            got.contains(&"malformed-waiver") && got.contains(&"panic-hygiene"),
            "fixture {bad:?}: a malformed waiver must fire AND not suppress; got {got:?}"
        );
    }
}

#[test]
fn unused_waiver_is_a_finding() {
    let src = "// audit: allow(panic-hygiene, reason = \"nothing here panics\")\n\
               fn f() -> u32 { 1 }\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert_eq!(rules(&r), ["unused-waiver"]);
}

#[test]
fn quoted_waiver_in_doc_comment_is_not_live() {
    // Documentation shows the grammar by quoting it behind an inner
    // `//` — that must neither waive anything nor count as unused.
    let src =
        "//! Use `// audit: allow(panic-hygiene, reason = \"…\")` to waive.\nfn f() -> u32 { 1 }\n";
    let r = scan_source("crates/core/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
    assert!(r.waivers.is_empty());
}

// ---------------------------------------------------------------------
// lexer corner cases the rules depend on
// ---------------------------------------------------------------------

#[test]
fn tokens_inside_raw_strings_do_not_fire() {
    let src = "fn f() -> &'static str {\n    r#\"unsafe panic!( .unwrap() File::create(\"#\n}\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

#[test]
fn tokens_inside_block_comments_do_not_fire() {
    let src = "/* unsafe { } x.unwrap() Ordering::Relaxed */\nfn f() -> u32 { 1 }\n";
    let r = scan_source("crates/server/src/lib.rs", src);
    assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
}

// ---------------------------------------------------------------------
// self-test: the committed tree is clean under --deny
// ---------------------------------------------------------------------

#[test]
fn committed_tree_is_clean_under_deny() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = pll_audit::scan_tree(&root).expect("scan the workspace");
    assert!(report.files_scanned > 50, "walker found the workspace");
    assert!(
        report.is_clean(),
        "the committed tree must pass `pll-audit --deny`; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The tree carries no waivers at all: every invariant is satisfied
    // for real, not waived away (fixtures above prove the grammar works).
    assert!(
        report.waivers.is_empty(),
        "unexpected waivers in the tree: {:?}",
        report.waivers
    );
}
