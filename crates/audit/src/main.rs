//! CLI driver for the workspace invariant audit.
//!
//! ```text
//! pll-audit [--root DIR] [--deny] [--json FILE]
//! ```
//!
//! Prints rustc-style diagnostics for every finding; `--json` also writes
//! the machine-readable report. `--deny` exits nonzero when any finding
//! survives, which is how CI consumes it.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--deny" => deny = true,
            "--json" => {
                json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ));
            }
            "--help" | "-h" => {
                return Err("usage: pll-audit [--root DIR] [--deny] [--json FILE]".into());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args { root, deny, json })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let report = match pll_audit::scan_tree(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pll-audit: cannot scan {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        eprintln!("{f}\n");
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("pll-audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    for w in &report.waivers {
        eprintln!(
            "note[waived]: {} at {}:{} — {}",
            w.rule, w.path, w.line, w.reason
        );
    }
    eprintln!(
        "pll-audit: {} file(s) scanned, {} finding(s), {} waiver(s) in use",
        report.files_scanned,
        report.findings.len(),
        report.waivers.len()
    );
    if args.deny && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
