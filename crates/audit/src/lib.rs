//! `pll-audit` — an invariant-enforcing static-analysis pass over the
//! workspace sources.
//!
//! The serving stack's correctness rests on conventions that no compiler
//! checks: `unsafe` pointer casts confined to two audited modules, every
//! durable write flowing through `wal::atomic_write`, every explicit
//! atomic ordering carrying a rationale, and the server's request paths
//! staying free of panics and poison-propagating lock unwraps. This crate
//! turns those conventions into named, machine-checked rules
//! ([`RULES`]) with rustc-style diagnostics, a JSON report, and a
//! `--deny` mode for CI. See `docs/INVARIANTS.md` for the prose version
//! of each invariant.
//!
//! The scanner is a *line* scanner, not a parser: it is comment- and
//! string-aware (so `"File::create"` inside a string literal or a doc
//! comment never fires a rule) and tracks `#[cfg(test)]` module regions
//! by brace depth, but it does not build an AST — it is the same
//! hand-rolled, dependency-free species of tool as `shims/` and
//! `pll_core::fail`, runnable in this registry-less container.
//!
//! # Waivers
//!
//! A finding can be waived in place with an inline comment on the
//! flagged line or on the line directly above it:
//!
//! ```text
//! // audit: allow(panic-hygiene, reason = "test-only helper binary")
//! ```
//!
//! The reason is mandatory and must be non-empty: an un-reasoned waiver
//! is itself an error (`malformed-waiver`), and a waiver that suppresses
//! nothing is too (`unused-waiver`), so the committed tree can never
//! accumulate silent escape hatches. Two findings are *hard errors* that
//! no waiver silences: a malformed waiver, and `Ordering::Relaxed`
//! applied to an epoch/publish/shutdown-named operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Every rule id the tool enforces, in diagnostic order.
pub const RULES: &[&str] = &[
    "unsafe-confinement",
    "durable-write",
    "atomic-ordering",
    "lock-hygiene",
    "panic-hygiene",
    "metrics-hygiene",
];

/// Pseudo-rules emitted by the waiver machinery itself (never waivable).
pub const META_RULES: &[&str] = &["malformed-waiver", "unused-waiver"];

/// Files allowed to contain `unsafe` at all. Everything here still
/// requires a `// SAFETY:` comment at every unsafe site.
///
/// * `core::storage` — the zero-copy pointer casts and the `mmap`
///   syscalls (the only FFI in the workspace);
/// * `core::kernel` — the branchless merge-join's `get_unchecked` reads,
///   guarded by `well_formed`;
/// * `tests/zero_copy_alloc.rs` — the counting `GlobalAlloc` shim the
///   zero-allocation proof needs (`GlobalAlloc` is an unsafe trait).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/core/src/storage.rs",
    "crates/core/src/kernel.rs",
    "tests/zero_copy_alloc.rs",
];

/// The module that *implements* the durable-write discipline and is
/// therefore exempt from it.
pub const DURABLE_WRITE_IMPL: &str = "crates/core/src/wal.rs";

/// Crates whose non-test code must route index/WAL writes through
/// `wal::atomic_write` (bench/test output is deliberately out of scope —
/// a torn BENCH_*.json costs nothing).
pub const DURABLE_WRITE_SCOPE: &[&str] =
    &["crates/core/src/", "crates/cli/src/", "crates/server/src/"];

/// Server sources whose request paths must not unwrap lock poison.
pub const LOCK_HYGIENE_SCOPE: &[&str] = &["crates/server/src/"];

/// Frame-handling paths that must not panic: the whole server crate plus
/// the CI-smoke bench binaries (a panic backtrace mid-smoke hides the
/// actual I/O failure the run hit).
pub const PANIC_HYGIENE_SCOPE: &[&str] = &[
    "crates/server/src/",
    "crates/bench/src/bin/serve_load.rs",
    "crates/bench/src/bin/bench_query.rs",
    "crates/bench/src/bin/bench_construction.rs",
];

/// The audited home for serve-side scalar counters. A bare `AtomicU64`
/// anywhere else in the server crate is state the STATS/Prometheus
/// exposition cannot see — it belongs in a registered metric instead.
pub const METRICS_HOME: &str = "crates/server/src/metrics.rs";

/// The crate whose non-test code must keep its scalar counters in
/// [`METRICS_HOME`].
pub const METRICS_SCOPE: &str = "crates/server/src/";

/// How many non-matching lines above a site an annotation comment
/// (`// SAFETY:`, `// ORDERING:`) may sit. Lines that themselves carry
/// the same kind of site extend the window, so one comment can cover a
/// contiguous block of, say, relaxed counter bumps.
const ANNOTATION_WINDOW: usize = 3;

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`] or [`META_RULES`]).
    pub rule: String,
    /// Path relative to the scanned root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Hard errors ignore waivers entirely.
    pub waivable: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)
    }
}

/// A waiver that actually suppressed a finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsedWaiver {
    /// Rule id the waiver names.
    pub rule: String,
    /// Path relative to the scanned root.
    pub path: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// The mandatory reason text.
    pub reason: String,
}

/// Outcome of scanning a tree (or a single in-memory file).
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Surviving findings, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Waivers that suppressed at least one finding.
    pub waivers: Vec<UsedWaiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}}}{}\n",
                json_str(&f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_str(&w.rule),
                json_str(&w.path),
                w.line,
                json_str(&w.reason),
                if i + 1 < self.waivers.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Lexing: split a source file into per-line (code, comment) halves.
// ---------------------------------------------------------------------------

/// One source line after comment/string separation.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The line with comments removed and string/char literal *contents*
    /// blanked to spaces (delimiters kept), so token searches never match
    /// inside text.
    pub code: String,
    /// The concatenated comment text of the line (line comments, doc
    /// comments, and any block-comment portion crossing it).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` module or a
    /// `tests/` / `benches/` source file.
    pub in_test: bool,
}

#[derive(PartialEq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Splits `content` into analyzed [`Line`]s. `path` decides blanket test
/// status (`tests/`, `benches/`).
pub fn analyze(path: &str, content: &str) -> Vec<Line> {
    let chars: Vec<char> = content.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = LexState::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == LexState::LineComment {
                state = LexState::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            LexState::Code => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && next == '/' {
                    state = LexState::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = LexState::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = LexState::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
                    // r"…", r#"…"#, br"…", … — skip prefix up to the quote.
                    let mut j = i;
                    while chars[j] != '"' {
                        cur.code.push(chars[j]);
                        j += 1;
                    }
                    cur.code.push('"');
                    let hashes = chars[i..j].iter().filter(|&&h| h == '#').count() as u32;
                    state = LexState::RawStr(hashes);
                    i = j + 1;
                } else if c == '\'' && is_char_literal_start(&chars, i) {
                    cur.code.push('\'');
                    state = LexState::CharLit;
                    i += 1;
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            LexState::BlockComment(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && next == '*' {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == '/' {
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).copied() != Some('\n') {
                        cur.code.push(' ');
                    }
                    i += 2; // skip the escaped char (or the line joiner)
                } else if c == '"' {
                    cur.code.push('"');
                    state = LexState::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if c == '"' && raw_string_ends(&chars, i, hashes) {
                    cur.code.push('"');
                    i += 1 + hashes as usize;
                    state = LexState::Code;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            LexState::CharLit => {
                if c == '\\' {
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = LexState::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    mark_test_regions(path, &mut lines);
    lines
}

/// `r"` / `r#"` / `br"` / `b"`-style string start at `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j).copied() != Some('r') {
            // b"…" is an ordinary (byte) string; let the Str state take
            // it via the '"' branch on the next character.
            return false;
        }
    }
    if chars.get(j).copied() != Some('r') {
        return false;
    }
    j += 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn raw_string_ends(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Distinguishes a char literal from a lifetime: `'a'` and `'\n'` are
/// literals, `'a` in `&'a str` is not.
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1).copied() {
        Some('\\') => true,
        Some(_) => chars.get(i + 2).copied() == Some('\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` modules (by brace depth) and whole
/// test-tree files.
fn mark_test_regions(path: &str, lines: &mut [Line]) {
    if path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/") {
        for l in lines.iter_mut() {
            l.in_test = true;
        }
        return;
    }
    let mut depth: i64 = 0;
    let mut pending = false; // saw #[cfg(test)], waiting for its block
    let mut region: Option<i64> = None; // depth the test block opened at
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            pending = true;
        }
        if region.is_some() {
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && region.is_none() {
                        region = Some(depth);
                        pending = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region == Some(depth) {
                        region = None;
                    }
                }
                ';' if pending && region.is_none() => {
                    // `#[cfg(test)] use …;` — the attribute covered a
                    // braceless item, not a module.
                    pending = false;
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Waiver {
    rule: String,
    reason: String,
    /// Line the comment sits on (0-based).
    line: usize,
    /// Line the waiver applies to (0-based): its own line if it carries
    /// code, otherwise the next line that does.
    target: usize,
    used: std::cell::Cell<bool>,
}

/// Parses every waiver comment in `lines`; malformed ones become
/// findings directly.
fn collect_waivers(path: &str, lines: &[Line], findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // A waiver must be the whole comment: strip doc markers and
        // whitespace, then require the `audit:` prefix. (This is what
        // lets documentation *show* the grammar — a quoted example like
        // `//! // audit: allow(…)` keeps its inner `//` and never
        // parses as a live waiver.)
        let trimmed = line
            .comment
            .trim_start_matches(|c: char| c.is_whitespace() || c == '!')
            .trim_start();
        let Some(spec) = trimmed.strip_prefix("audit:") else {
            continue;
        };
        let at = line.comment.len() - trimmed.len();
        let spec = spec.trim();
        match parse_waiver_spec(spec) {
            Ok((rule, reason)) => {
                let target = if line.code.trim().is_empty() {
                    // Standalone comment: covers the next code line.
                    (i + 1..lines.len())
                        .find(|&j| !lines[j].code.trim().is_empty())
                        .unwrap_or(i)
                } else {
                    i
                };
                waivers.push(Waiver {
                    rule,
                    reason,
                    line: i,
                    target,
                    used: std::cell::Cell::new(false),
                });
            }
            Err(why) => findings.push(Finding {
                rule: "malformed-waiver".into(),
                path: path.to_string(),
                line: i + 1,
                col: at + 1,
                message: format!(
                    "malformed audit waiver ({why}); the grammar is \
                     `// audit: allow(<rule>, reason = \"…\")`"
                ),
                waivable: false,
            }),
        }
    }
    waivers
}

/// Parses `allow(<rule>, reason = "…")`.
fn parse_waiver_spec(spec: &str) -> Result<(String, String), String> {
    let rest = spec
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(`".to_string())?;
    let (rule, rest) = rest
        .split_once(',')
        .ok_or_else(|| "expected `, reason = …` after the rule id".to_string())?;
    let rule = rule.trim();
    if !RULES.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` (rules: {})",
            RULES.join(", ")
        ));
    }
    let rest = rest.trim();
    let rest = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .ok_or_else(|| "expected `reason = \"…\"`".to_string())?;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    let (reason, rest) = rest
        .split_once('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    if reason.trim().is_empty() {
        return Err("the reason must not be empty — say *why* the rule is waived".to_string());
    }
    if rest.trim() != ")" {
        return Err("expected `)` after the reason".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

// ---------------------------------------------------------------------------
// Shared token helpers.
// ---------------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte offsets of whole-word occurrences of `word` in `code`.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(word) {
        let at = from + at;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Does line `idx` (or an annotation comment within the window above it)
/// carry `tag`? Lines for which `extends` reports their own site keep
/// the window open, so one comment can cover a contiguous block.
fn has_annotation(lines: &[Line], idx: usize, tag: &str, extends: impl Fn(&Line) -> bool) -> bool {
    if lines[idx].comment.contains(tag) {
        return true;
    }
    let mut budget = ANNOTATION_WINDOW;
    let mut i = idx;
    while i > 0 && budget > 0 {
        i -= 1;
        if lines[i].comment.contains(tag) {
            return true;
        }
        if extends(&lines[i]) {
            budget = ANNOTATION_WINDOW;
        } else if !lines[i].code.trim().is_empty() {
            // Pure comment/blank lines are free: a multi-line rationale
            // must not push its own tag out of the window.
            budget -= 1;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

fn rule_unsafe_confinement(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&path);
    let has_unsafe = |l: &Line| !word_positions(&l.code, "unsafe").is_empty();
    for (i, line) in lines.iter().enumerate() {
        for at in word_positions(&line.code, "unsafe") {
            if !allowlisted {
                findings.push(Finding {
                    rule: "unsafe-confinement".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: at + 1,
                    message: format!(
                        "`unsafe` outside the allowlisted modules ({}); move the \
                         code behind a safe abstraction in one of them",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                    waivable: true,
                });
            } else if !has_annotation(lines, i, "SAFETY:", has_unsafe) {
                findings.push(Finding {
                    rule: "unsafe-confinement".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: at + 1,
                    message: "unsafe site without an adjacent `// SAFETY:` comment \
                              stating why it is sound"
                        .into(),
                    waivable: true,
                });
            }
        }
    }
}

fn rule_durable_write(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    if path == DURABLE_WRITE_IMPL || !DURABLE_WRITE_SCOPE.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["File::create(", "OpenOptions::new("] {
            if let Some(at) = line.code.find(pat) {
                findings.push(Finding {
                    rule: "durable-write".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: at + 1,
                    message: format!(
                        "direct `{}` in durability-relevant code; index/WAL writers \
                         must go through `wal::atomic_write` (tmp + fsync + rename) \
                         so a crash can never leave a torn file",
                        pat.trim_end_matches('(')
                    ),
                    waivable: true,
                });
            }
        }
    }
}

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
/// Identifiers whose relaxed use is a publish/observe bug, not a style
/// issue.
const RELAXED_FORBIDDEN_NAMES: &[&str] = &["epoch", "publish", "shutdown"];

fn line_has_atomic_ordering(l: &Line) -> bool {
    ATOMIC_ORDERINGS
        .iter()
        .any(|v| l.code.contains(&format!("Ordering::{v}")))
}

fn rule_atomic_ordering(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for variant in ATOMIC_ORDERINGS {
            let token = format!("Ordering::{variant}");
            let Some(at) = line.code.find(&token) else {
                continue;
            };
            if *variant == "Relaxed" {
                let code_lower = line.code.to_ascii_lowercase();
                if let Some(name) = RELAXED_FORBIDDEN_NAMES
                    .iter()
                    .find(|n| code_lower.contains(*n))
                {
                    findings.push(Finding {
                        rule: "atomic-ordering".into(),
                        path: path.to_string(),
                        line: i + 1,
                        col: at + 1,
                        message: format!(
                            "`Ordering::Relaxed` on a `{name}`-named operation is a hard \
                             error (publish/observe edges need acquire/release or \
                             stronger); this cannot be waived"
                        ),
                        waivable: false,
                    });
                    continue;
                }
            }
            if !has_annotation(lines, i, "ORDERING:", line_has_atomic_ordering) {
                findings.push(Finding {
                    rule: "atomic-ordering".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: at + 1,
                    message: format!(
                        "explicit `{token}` without an `// ORDERING:` comment stating \
                         why this ordering is sufficient"
                    ),
                    waivable: true,
                });
            }
        }
    }
}

fn rule_lock_hygiene(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    if !LOCK_HYGIENE_SCOPE.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        // Whitespace-insensitive so a rustfmt-split chain still matches
        // when the two calls share a line.
        let squashed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        for pat in [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"] {
            if squashed.contains(pat) {
                findings.push(Finding {
                    rule: "lock-hygiene".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: 1,
                    message: format!(
                        "`{pat}` in a server request path propagates lock poison into \
                         every later connection; recover the guard like `SwapCell` \
                         does (`unwrap_or_else(PoisonError::into_inner)`) or handle \
                         the poison explicitly"
                    ),
                    waivable: true,
                });
            }
        }
    }
}

fn rule_panic_hygiene(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    if !PANIC_HYGIENE_SCOPE.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let squashed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        for pat in [
            ".unwrap()",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
            "process::abort(",
        ] {
            if let Some(at) = squashed.find(pat) {
                // `debug_assert`-style macros are fine; `unwrap_or*` must
                // not be confused with `.unwrap()` (the paren disambiguates).
                let _ = at;
                findings.push(Finding {
                    rule: "panic-hygiene".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: line
                        .code
                        .find(pat.trim_start_matches('.'))
                        .map_or(1, |c| c + 1),
                    message: format!(
                        "`{pat}` in a frame-handling/smoke path aborts the process with \
                         a backtrace instead of reporting the failure; return a typed \
                         error (nonzero exit) instead",
                        pat = pat.trim_end_matches('(')
                    ),
                    waivable: true,
                });
            }
        }
    }
}

/// Method names that register a metric with a `pll_obs::Registry`; each
/// takes `(name, help, ...)`.
const METRIC_REGISTRATIONS: &[&str] = &[
    ".counter(",
    ".gauge(",
    ".counter_fn(",
    ".gauge_fn(",
    ".histogram_fn(",
];

fn rule_metrics_hygiene(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    // (a) Stray scalar counters: a bare `AtomicU64` in the server crate
    // outside the metrics module is a counter the exposition cannot
    // see. Collections of atomics (`&[AtomicU64]`, `Vec<AtomicU64>` —
    // the per-vertex generation table) are shared state, not metrics,
    // and imports are just names.
    if path.starts_with(METRICS_SCOPE) && path != METRICS_HOME {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test || line.code.trim_start().starts_with("use ") {
                continue;
            }
            for at in word_positions(&line.code, "AtomicU64") {
                let before = &line.code[..at];
                if before.ends_with('[') || before.ends_with("Vec<") {
                    continue;
                }
                findings.push(Finding {
                    rule: "metrics-hygiene".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: at + 1,
                    message: format!(
                        "bare `AtomicU64` outside {METRICS_HOME}; serve-side counters \
                         belong in `metrics::WorkerMetrics`/`metrics::ServeCounters` \
                         (and a registry registration) so STATS and /metrics can see \
                         them"
                    ),
                    waivable: true,
                });
            }
        }
    }
    // (b) Undocumented metrics: every registry registration carries a
    // help string; an empty one ships a nameplate with no explanation
    // to every scrape consumer. The lexer blanks string interiors but
    // keeps the quotes, so an empty literal is exactly `""`.
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in METRIC_REGISTRATIONS {
            let Some(at) = line.code.find(pat) else {
                continue;
            };
            let window = &lines[i..lines.len().min(i + ANNOTATION_WINDOW)];
            if window.iter().any(|l| l.code.contains("\"\"")) {
                findings.push(Finding {
                    rule: "metrics-hygiene".into(),
                    path: path.to_string(),
                    line: i + 1,
                    col: at + 1,
                    message: format!(
                        "metric registered via `{}` with an empty help string; every \
                         metric must document what it measures (the help travels over \
                         STATS and /metrics)",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                    waivable: true,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Scans one in-memory source file; `path` must be the repo-relative,
/// `/`-separated path (rule scopes key off it).
pub fn scan_source(path: &str, content: &str) -> Report {
    let lines = analyze(path, content);
    let mut raw = Vec::new();
    let waivers = collect_waivers(path, &lines, &mut raw);
    rule_unsafe_confinement(path, &lines, &mut raw);
    rule_durable_write(path, &lines, &mut raw);
    rule_atomic_ordering(path, &lines, &mut raw);
    rule_lock_hygiene(path, &lines, &mut raw);
    rule_panic_hygiene(path, &lines, &mut raw);
    rule_metrics_hygiene(path, &lines, &mut raw);

    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let line0 = f.line - 1;
        let waiver = waivers
            .iter()
            .find(|w| w.rule == f.rule && (w.target == line0 || w.line == line0));
        match waiver {
            Some(w) if f.waivable => w.used.set(true),
            _ => findings.push(f),
        }
    }
    for w in &waivers {
        if !w.used.get() {
            findings.push(Finding {
                rule: "unused-waiver".into(),
                path: path.to_string(),
                line: w.line + 1,
                col: 1,
                message: format!(
                    "waiver for `{}` suppresses nothing on line {}; delete it (stale \
                     waivers are how escape hatches accumulate)",
                    w.rule,
                    w.target + 1
                ),
                waivable: false,
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    Report {
        waivers: waivers
            .iter()
            .filter(|w| w.used.get())
            .map(|w| UsedWaiver {
                rule: w.rule.clone(),
                path: path.to_string(),
                line: w.line + 1,
                reason: w.reason.clone(),
            })
            .collect(),
        findings,
        files_scanned: 1,
    }
}

/// Directories never descended into: build output, VCS metadata, and the
/// `shims/` stand-ins for crates.io dependencies (they are replaced
/// wholesale when a registry is reachable, so auditing them would pin
/// foreign code to local conventions).
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", ".claude"];

/// Recursively collects the workspace's `.rs` files, sorted for
/// deterministic reports.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans the tree rooted at `root` (the workspace checkout).
pub fn scan_tree(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let content = std::fs::read_to_string(&path)?;
        let file_report = scan_source(&rel, &content);
        report.findings.extend(file_report.findings);
        report.waivers.extend(file_report.waivers);
        report.files_scanned += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_separates_comments_and_strings() {
        let src =
            "let x = \"File::create(\"; // File::create(\nlet y = 'a';\n/* unsafe */ let z = 1;\n";
        let lines = analyze("crates/core/src/foo.rs", src);
        assert!(!lines[0].code.contains("File::create"));
        assert!(lines[0].comment.contains("File::create"));
        assert!(lines[1].code.contains("let y ="));
        assert!(!lines[2].code.contains("unsafe"));
        assert!(lines[2].comment.contains("unsafe"));
        assert!(lines[2].code.contains("let z = 1;"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let src = "let p = r#\"panic!( .unwrap() \"#;\nfn f<'a>(x: &'a str) -> &'a str { x }\nlet c = '\\'';\n";
        let lines = analyze("crates/server/src/foo.rs", src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[1].code.contains("fn f<'a>"));
        assert!(lines[2].code.starts_with("let c = '"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = analyze("crates/core/src/foo.rs", src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test, "region must close at its brace");
    }

    #[test]
    fn tests_dir_is_all_test() {
        let lines = analyze("tests/foo.rs", "fn x() {}\n");
        assert!(lines[0].in_test);
    }

    #[test]
    fn word_positions_respect_boundaries() {
        assert_eq!(word_positions("unsafe fn f()", "unsafe"), vec![0]);
        assert!(word_positions("#![forbid(unsafe_code)]", "unsafe").is_empty());
        assert!(word_positions("my_unsafe", "unsafe").is_empty());
    }
}
