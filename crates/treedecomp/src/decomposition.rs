//! Tree decompositions from elimination orderings.
//!
//! Standard construction: the bag of eliminated vertex `v` is `{v}` plus
//! its neighbours at elimination time; the parent of `v`'s bag is the bag
//! of the *earliest-eliminated* vertex among those neighbours. The result
//! satisfies the three tree-decomposition axioms (checked by
//! [`TreeDecomposition::validate`]): vertex coverage, edge coverage, and
//! the running-intersection (connected-subtree) property.

use crate::elimination::EliminationOrder;
use pll_graph::{CsrGraph, Vertex};

/// A rooted tree decomposition with one bag per vertex.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// `bags[i]`: sorted vertex set of bag `i` (bag `i` belongs to the
    /// `i`-th eliminated vertex).
    pub bags: Vec<Vec<Vertex>>,
    /// `parent[i]`: parent bag index, `None` for roots (the decomposition
    /// is a forest when the graph is disconnected).
    pub parent: Vec<Option<usize>>,
    /// `own_bag[v]`: index of the bag introduced when `v` was eliminated.
    pub own_bag: Vec<usize>,
    /// Witnessed width: `max |bag| − 1`.
    pub width: usize,
}

impl TreeDecomposition {
    /// Builds the decomposition from an elimination order.
    pub fn from_elimination(elim: &EliminationOrder) -> TreeDecomposition {
        let n = elim.order.len();
        // position[v] = elimination step of v.
        let mut position = vec![0usize; n];
        for (i, &v) in elim.order.iter().enumerate() {
            position[v as usize] = i;
        }
        let mut own_bag = vec![0usize; n];
        for (i, &v) in elim.order.iter().enumerate() {
            own_bag[v as usize] = i;
        }
        let mut parent = vec![None; n];
        for (i, bag) in elim.bags.iter().enumerate() {
            let me = elim.order[i];
            // Earliest-eliminated *other* member, which by construction is
            // eliminated after `me`.
            let next = bag
                .iter()
                .filter(|&&u| u != me)
                .min_by_key(|&&u| position[u as usize]);
            if let Some(&u) = next {
                parent[i] = Some(own_bag[u as usize]);
            }
        }
        TreeDecomposition {
            bags: elim.bags.clone(),
            parent,
            own_bag,
            width: elim.width,
        }
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// Adjacency of the decomposition forest (undirected).
    pub fn tree_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_bags()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = *p {
                adj[i].push(p);
                adj[p].push(i);
            }
        }
        adj
    }

    /// Checks the three tree-decomposition axioms against `g`; returns a
    /// description of the first violation, if any.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        let n = g.num_vertices();
        if self.own_bag.len() != n {
            return Err(format!(
                "decomposition covers {} vertices, graph has {n}",
                self.own_bag.len()
            ));
        }
        // (1) Vertex coverage.
        for v in 0..n as Vertex {
            if !self.bags[self.own_bag[v as usize]].contains(&v) {
                return Err(format!("vertex {v} missing from its own bag"));
            }
        }
        // (2) Edge coverage.
        for (u, v) in g.edges() {
            let covered = self
                .bags
                .iter()
                .any(|bag| bag.binary_search(&u).is_ok() && bag.binary_search(&v).is_ok());
            if !covered {
                return Err(format!("edge ({u}, {v}) not covered by any bag"));
            }
        }
        // (3) Running intersection: bags containing v form a connected
        // subtree of the forest.
        let adj = self.tree_adjacency();
        for v in 0..n as Vertex {
            let holders: Vec<usize> = (0..self.num_bags())
                .filter(|&i| self.bags[i].binary_search(&v).is_ok())
                .collect();
            if holders.is_empty() {
                return Err(format!("vertex {v} appears in no bag"));
            }
            // BFS over holder bags only.
            let mut seen = vec![false; self.num_bags()];
            let mut queue = vec![holders[0]];
            seen[holders[0]] = true;
            let mut head = 0;
            while head < queue.len() {
                let b = queue[head];
                head += 1;
                for &nb in &adj[b] {
                    if !seen[nb] && self.bags[nb].binary_search(&v).is_ok() {
                        seen[nb] = true;
                        queue.push(nb);
                    }
                }
            }
            if queue.len() != holders.len() {
                return Err(format!(
                    "bags containing vertex {v} are not connected ({} of {})",
                    queue.len(),
                    holders.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::{min_degree_order, min_fill_order};
    use pll_graph::gen;

    fn build_and_validate(g: &CsrGraph) -> TreeDecomposition {
        let td = TreeDecomposition::from_elimination(&min_degree_order(g));
        td.validate(g).expect("decomposition must be valid");
        td
    }

    #[test]
    fn valid_on_structured_graphs() {
        build_and_validate(&gen::path(15).unwrap());
        build_and_validate(&gen::cycle(10).unwrap());
        build_and_validate(&gen::grid(4, 5).unwrap());
        build_and_validate(&gen::star(9).unwrap());
        build_and_validate(&gen::balanced_tree(2, 4).unwrap());
        build_and_validate(&gen::complete(6).unwrap());
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in [1, 2, 3] {
            build_and_validate(&gen::erdos_renyi_gnm(40, 90, seed).unwrap());
            build_and_validate(&gen::barabasi_albert(50, 2, seed).unwrap());
        }
    }

    #[test]
    fn valid_with_min_fill_too() {
        let g = gen::grid(4, 4).unwrap();
        let td = TreeDecomposition::from_elimination(&min_fill_order(&g));
        td.validate(&g).unwrap();
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let td = build_and_validate(&g);
        let roots = td.parent.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 3, "three components, three roots");
    }

    #[test]
    fn detects_broken_decomposition() {
        let g = gen::cycle(6).unwrap();
        let mut td = build_and_validate(&g);
        // Remove a vertex from a bag: some axiom must now fail.
        let bag0_vertex = td.bags[0][0];
        td.bags[0].retain(|&v| v != bag0_vertex);
        assert!(td.validate(&g).is_err());
    }

    #[test]
    fn tree_bags_have_size_at_most_two() {
        let g = gen::balanced_tree(3, 3).unwrap();
        let td = build_and_validate(&g);
        assert!(td.bags.iter().all(|b| b.len() <= 2));
        assert_eq!(td.width, 1);
    }

    use pll_graph::CsrGraph;
}
