//! Centroid-decomposition vertex order (Theorem 4.4).
//!
//! The proof sketch of Theorem 4.4: "First we conduct pruned BFSs from all
//! the vertices in a centroid bag. Then, later pruned BFSs never go beyond
//! the bag. Therefore, we can consider as we divided the tree decomposition
//! into disjoint components, each having at most half of the bags. We
//! recursively repeat this procedure." This module computes exactly that
//! vertex order: centroid bag first, then recursively the centroids of the
//! split components, emitting each vertex at its first appearance.

use crate::decomposition::TreeDecomposition;
use pll_graph::Vertex;

/// Computes the recursive centroid-bag order of `td`. The result is a
/// permutation of `0..n` suitable for
/// `OrderingStrategy::Custom`. Vertices in earlier (larger, more central)
/// centroid bags come first.
pub fn centroid_order(td: &TreeDecomposition) -> Vec<Vertex> {
    let nb = td.num_bags();
    let adj = td.tree_adjacency();
    let mut removed = vec![false; nb];
    let mut emitted = vec![false; td.own_bag.len()];
    let mut order: Vec<Vertex> = Vec::with_capacity(td.own_bag.len());

    // Iterative recursion over components (stack of representative bags).
    let mut stack: Vec<usize> = Vec::new();
    let mut seen_component = vec![false; nb];
    for b in 0..nb {
        if !seen_component[b] {
            // Mark the whole component now so each enters the stack once.
            let comp = collect_component(&adj, &removed, b);
            for &c in &comp {
                seen_component[c] = true;
            }
            stack.push(b);
        }
    }

    while let Some(rep) = stack.pop() {
        if removed[rep] {
            continue;
        }
        let comp = collect_component(&adj, &removed, rep);
        let centroid = tree_centroid(&adj, &removed, &comp);
        for &v in &td.bags[centroid] {
            if !emitted[v as usize] {
                emitted[v as usize] = true;
                order.push(v);
            }
        }
        removed[centroid] = true;
        for &nb_bag in &adj[centroid] {
            if !removed[nb_bag] {
                stack.push(nb_bag);
            }
        }
    }

    // Safety net: vertices of bags never reached (cannot happen for valid
    // decompositions, but keep the permutation total).
    for v in 0..emitted.len() as Vertex {
        if !emitted[v as usize] {
            order.push(v);
        }
    }
    order
}

/// Collects the bag component containing `start`, ignoring removed bags.
fn collect_component(adj: &[Vec<usize>], removed: &[bool], start: usize) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut queue = vec![start];
    seen.insert(start);
    let mut head = 0;
    while head < queue.len() {
        let b = queue[head];
        head += 1;
        for &nb in &adj[b] {
            if !removed[nb] && seen.insert(nb) {
                queue.push(nb);
            }
        }
    }
    queue
}

/// Finds a centroid of the component: a bag whose removal leaves components
/// of at most half the size.
fn tree_centroid(adj: &[Vec<usize>], removed: &[bool], comp: &[usize]) -> usize {
    let total = comp.len();
    if total == 1 {
        return comp[0];
    }
    let in_comp: std::collections::HashSet<usize> = comp.iter().copied().collect();
    // Subtree sizes via DFS from comp[0] (the component is a tree).
    let root = comp[0];
    let mut parent: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut dfs_order = Vec::with_capacity(total);
    let mut stack = vec![root];
    parent.insert(root, usize::MAX);
    while let Some(b) = stack.pop() {
        dfs_order.push(b);
        for &nb in &adj[b] {
            if !removed[nb] && in_comp.contains(&nb) && !parent.contains_key(&nb) {
                parent.insert(nb, b);
                stack.push(nb);
            }
        }
    }
    let mut size: std::collections::HashMap<usize, usize> =
        comp.iter().map(|&b| (b, 1usize)).collect();
    for &b in dfs_order.iter().rev() {
        let p = parent[&b];
        if p != usize::MAX {
            *size.get_mut(&p).unwrap() += size[&b];
        }
    }
    // The centroid minimises the largest piece after removal.
    let mut best = (usize::MAX, root);
    for &b in comp {
        let mut largest = total - size[&b]; // the piece towards the root
        for &nb in &adj[b] {
            if !removed[nb] && in_comp.contains(&nb) && parent.get(&nb) == Some(&b) {
                largest = largest.max(size[&nb]);
            }
        }
        if largest < best.0 || (largest == best.0 && b < best.1) {
            best = (largest, b);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::min_degree_order;
    use pll_graph::gen;

    fn order_for(g: &pll_graph::CsrGraph) -> Vec<Vertex> {
        let td = TreeDecomposition::from_elimination(&min_degree_order(g));
        td.validate(g).unwrap();
        centroid_order(&td)
    }

    fn assert_permutation(order: &[Vertex], n: usize) {
        assert_eq!(order.len(), n);
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as Vertex).collect::<Vec<_>>());
    }

    #[test]
    fn produces_permutations() {
        for g in [
            gen::path(30).unwrap(),
            gen::cycle(17).unwrap(),
            gen::grid(5, 7).unwrap(),
            gen::balanced_tree(2, 5).unwrap(),
            gen::erdos_renyi_gnm(50, 110, 3).unwrap(),
        ] {
            let n = g.num_vertices();
            assert_permutation(&order_for(&g), n);
        }
    }

    #[test]
    fn path_centroid_order_starts_near_middle() {
        let g = gen::path(63).unwrap();
        let order = order_for(&g);
        let first = order[0];
        assert!(
            (16..=47).contains(&first),
            "first centroid vertex {first} should be central"
        );
    }

    #[test]
    fn centroid_order_beats_degree_order_on_paths() {
        // Theorem 4.4: on a path (w = 1), centroid ordering gives
        // O(log n) labels; degree ordering on a path is poor because all
        // degrees tie.
        use pll_core::{IndexBuilder, OrderingStrategy};
        let g = gen::path(255).unwrap();
        let td = TreeDecomposition::from_elimination(&min_degree_order(&g));
        let centroid = centroid_order(&td);
        let idx = IndexBuilder::new()
            .ordering(OrderingStrategy::Custom(centroid))
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        let avg = idx.avg_label_size();
        // log2(255) = 8; allow some slack.
        assert!(avg <= 10.0, "centroid order avg label size {avg}");
        pll_core::verify::verify_exhaustive(&g, &idx).unwrap();
    }

    #[test]
    fn disconnected_graph_is_covered() {
        let g = pll_graph::CsrGraph::from_edges(7, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_permutation(&order_for(&g), 7);
    }

    #[test]
    fn single_vertex_and_empty() {
        assert_permutation(&order_for(&pll_graph::CsrGraph::empty(1)), 1);
        assert_permutation(&order_for(&pll_graph::CsrGraph::empty(0)), 0);
    }
}
