//! Tree-decomposition substrate for the Theorem 4.4 experiments.
//!
//! §4.6.3 of the paper proves that pruned landmark labeling, given the
//! right vertex order, exploits small tree-width: conducting pruned BFSs
//! from the vertices of a *centroid bag* first splits the decomposition
//! into halves that later BFSs never cross, giving `O(w log n)` labels.
//! This crate provides the machinery to test that claim empirically:
//!
//! * [`elimination`] — min-degree / min-fill elimination orderings;
//! * [`decomposition`] — tree decompositions from elimination orders, with
//!   width reporting and validity checking;
//! * [`centroid`] — the recursive centroid-bag vertex order used by the
//!   theorem's proof sketch, ready to feed into
//!   `IndexBuilder::ordering(OrderingStrategy::Custom(..))`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centroid;
pub mod decomposition;
pub mod elimination;

pub use centroid::centroid_order;
pub use decomposition::TreeDecomposition;
pub use elimination::{min_degree_order, min_fill_order, EliminationOrder};
