//! Elimination orderings (min-degree and min-fill heuristics).
//!
//! Eliminating a vertex connects its remaining neighbours into a clique
//! (fill edges); the maximum clique size over the process bounds the
//! tree-width witnessed by the ordering. Min-degree picks the vertex of
//! smallest current degree; min-fill picks the vertex whose elimination
//! adds the fewest fill edges (slower, usually smaller width).

use pll_graph::{CsrGraph, Vertex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// The result of running an elimination heuristic.
#[derive(Clone, Debug)]
pub struct EliminationOrder {
    /// `order[i]` = the `i`-th eliminated vertex.
    pub order: Vec<Vertex>,
    /// `bags[i]` = the eliminated vertex plus its neighbours at elimination
    /// time (sorted). This is the bag the tree decomposition uses.
    pub bags: Vec<Vec<Vertex>>,
    /// Witnessed tree-width: `max |bag| − 1` (0 for edgeless graphs).
    pub width: usize,
}

fn eliminate(
    g: &CsrGraph,
    mut pick: impl FnMut(&[HashSet<Vertex>], &[bool]) -> Option<Vertex>,
) -> EliminationOrder {
    let n = g.num_vertices();
    let mut adj: Vec<HashSet<Vertex>> = vec![HashSet::new(); n];
    for (u, v) in g.edges() {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut bags = Vec::with_capacity(n);
    let mut width = 0usize;

    for _ in 0..n {
        let v = pick(&adj, &eliminated).expect("pick must return an uneliminated vertex");
        debug_assert!(!eliminated[v as usize]);
        eliminated[v as usize] = true;
        let mut bag: Vec<Vertex> = adj[v as usize].iter().copied().collect();
        bag.push(v);
        bag.sort_unstable();
        width = width.max(bag.len().saturating_sub(1));

        let neighbours: Vec<Vertex> = adj[v as usize].iter().copied().collect();
        for &a in &neighbours {
            adj[a as usize].remove(&v);
        }
        for i in 0..neighbours.len() {
            for j in i + 1..neighbours.len() {
                let (a, b) = (neighbours[i], neighbours[j]);
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
        adj[v as usize].clear();
        order.push(v);
        bags.push(bag);
    }
    EliminationOrder { order, bags, width }
}

/// Min-degree elimination with a priority queue that is re-keyed whenever a
/// neighbour's degree changes (pop-time-only re-keying would let a vertex
/// whose degree *dropped* hide behind its stale larger key and break the
/// min-degree order).
pub fn min_degree_order(g: &CsrGraph) -> EliminationOrder {
    let n = g.num_vertices();
    let mut adj: Vec<HashSet<Vertex>> = vec![HashSet::new(); n];
    for (u, v) in g.edges() {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }
    let mut pq: BinaryHeap<Reverse<(usize, Vertex)>> = BinaryHeap::with_capacity(n);
    for v in 0..n as Vertex {
        pq.push(Reverse((adj[v as usize].len(), v)));
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut bags = Vec::with_capacity(n);
    let mut width = 0usize;

    while let Some(Reverse((deg, v))) = pq.pop() {
        if eliminated[v as usize] {
            continue;
        }
        let current = adj[v as usize].len();
        if current != deg {
            pq.push(Reverse((current, v)));
            continue;
        }
        eliminated[v as usize] = true;
        let mut bag: Vec<Vertex> = adj[v as usize].iter().copied().collect();
        bag.push(v);
        bag.sort_unstable();
        width = width.max(bag.len().saturating_sub(1));

        let neighbours: Vec<Vertex> = adj[v as usize].iter().copied().collect();
        for &a in &neighbours {
            adj[a as usize].remove(&v);
        }
        for i in 0..neighbours.len() {
            for j in i + 1..neighbours.len() {
                let (a, b) = (neighbours[i], neighbours[j]);
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
        adj[v as usize].clear();
        for &a in &neighbours {
            pq.push(Reverse((adj[a as usize].len(), a)));
        }
        order.push(v);
        bags.push(bag);
    }
    EliminationOrder { order, bags, width }
}

/// Min-fill elimination (quadratic per step; small graphs only).
pub fn min_fill_order(g: &CsrGraph) -> EliminationOrder {
    eliminate(g, move |adj, eliminated| {
        let mut best: Option<(usize, Vertex)> = None;
        for v in 0..adj.len() as Vertex {
            if eliminated[v as usize] {
                continue;
            }
            let neigh: Vec<Vertex> = adj[v as usize].iter().copied().collect();
            let mut fill = 0usize;
            for i in 0..neigh.len() {
                for j in i + 1..neigh.len() {
                    if !adj[neigh[i] as usize].contains(&neigh[j]) {
                        fill += 1;
                    }
                }
            }
            if best.is_none_or(|(bf, bv)| fill < bf || (fill == bf && v < bv)) {
                best = Some((fill, v));
            }
        }
        best.map(|(_, v)| v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;

    #[test]
    fn path_has_width_one() {
        let g = gen::path(20).unwrap();
        assert_eq!(min_degree_order(&g).width, 1);
        assert_eq!(min_fill_order(&g).width, 1);
    }

    #[test]
    fn tree_has_width_one() {
        let g = gen::balanced_tree(3, 4).unwrap();
        assert_eq!(min_degree_order(&g).width, 1);
    }

    #[test]
    fn cycle_has_width_two() {
        let g = gen::cycle(12).unwrap();
        assert_eq!(min_degree_order(&g).width, 2);
        assert_eq!(min_fill_order(&g).width, 2);
    }

    #[test]
    fn complete_graph_width_is_n_minus_one() {
        let g = gen::complete(6).unwrap();
        assert_eq!(min_degree_order(&g).width, 5);
    }

    #[test]
    fn grid_width_is_near_min_dimension() {
        let g = gen::grid(4, 8).unwrap();
        let w = min_degree_order(&g).width;
        assert!((4..=8).contains(&w), "grid width {w}");
        let wf = min_fill_order(&g).width;
        assert!(wf <= w, "min-fill {wf} should not exceed min-degree {w}");
    }

    #[test]
    fn order_is_a_permutation_with_bags() {
        let g = gen::erdos_renyi_gnm(40, 80, 3).unwrap();
        let e = min_degree_order(&g);
        let mut sorted = e.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
        assert_eq!(e.bags.len(), 40);
        for (i, bag) in e.bags.iter().enumerate() {
            assert!(bag.contains(&e.order[i]), "bag {i} must contain its vertex");
        }
    }

    #[test]
    fn edgeless_graph() {
        let g = pll_graph::CsrGraph::empty(5);
        let e = min_degree_order(&g);
        assert_eq!(e.width, 0);
        assert!(e.bags.iter().all(|b| b.len() == 1));
    }
}
