//! `pll-obs` — the serving stack's observability substrate: a metric
//! registry with live exposition and a lock-free flight recorder.
//!
//! Everything here is dependency-free and hand-rolled (no registry is
//! reachable from this build environment), in the same spirit as
//! `pll_core::fail` and the `shims/` stand-ins:
//!
//! * [`Registry`] — named counters, gauges and histograms that
//!   components register into. Handles are `Arc`-backed relaxed
//!   atomics (one `fetch_add` per event on the hot path); components
//!   that already keep their own sharded counters register *collector
//!   closures* instead, which are only invoked at scrape time.
//! * [`latency`] — the log-linear latency histogram generalized out of
//!   `pll-server`'s `metrics` module: 4 sub-buckets per power of two
//!   across 48 powers (192 buckets), so a percentile read from a bucket
//!   upper bound overstates the true value by at most ~25% instead of
//!   the 2× a pure log₂ histogram allows.
//! * [`Snapshot`] — a point-in-time read of every registered metric,
//!   with a versioned length-prefixed wire encoding (the `STATS`
//!   protocol op) and a Prometheus text-format rendering
//!   ([`render_prometheus`]) served by the hand-rolled HTTP/1.0
//!   exporter ([`spawn_http_exporter`]).
//! * [`FlightRecorder`] — a fixed-size lock-free ring of recent
//!   structured events (epoch publishes, sheds, degraded recovery,
//!   slow requests, failpoint hits) dumped as JSONL to stderr on
//!   panic, degraded recovery and shutdown, and optionally teed to a
//!   trace log as it records.
//!
//! Scrape-time contract: collector closures must be wait-free reads
//! (relaxed atomic loads, epoch-cell reads) — never take a lock a
//! request or updater path can hold, or a scrape could deadlock the
//! server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};
use std::time::Instant;

/// Log-linear latency-histogram geometry shared by every histogram in
/// the workspace (the generalization of `pll-server`'s former log₂
/// histogram).
pub mod latency {
    /// Powers of two spanned: bucket group `p` covers `[2^p, 2^(p+1))`
    /// nanoseconds, so 48 groups span nanoseconds to ~3 days.
    pub const POWERS: usize = 48;
    /// Log-linear sub-buckets per power of two.
    pub const SUBDIV: usize = 4;
    /// Total bucket count.
    pub const BUCKETS: usize = POWERS * SUBDIV;

    /// Bucket index for a `nanos` observation: group `p = ⌊log₂ v⌋`,
    /// sub-bucket `⌊(v − 2^p) / 2^(p−2)⌋`, clamped into the last bucket
    /// above the spanned range. Monotone in `nanos`.
    pub fn bucket_index(nanos: u64) -> usize {
        let v = nanos.max(1);
        let p = 63 - v.leading_zeros() as usize;
        let off = v - (1u64 << p);
        let sub = if p >= 2 {
            (off >> (p - 2)) as usize
        } else {
            // Groups 0 and 1 are narrower than 4 integers; spread what
            // exists monotonically (some low sub-buckets stay empty).
            ((off << 2) >> p) as usize
        };
        (p * SUBDIV + sub).min(BUCKETS - 1)
    }

    /// Inclusive upper bound (nanoseconds) of bucket `i`:
    /// `2^p + (s+1)·2^(p−2)` for group `p`, sub-bucket `s`.
    pub fn upper_bound_nanos(i: usize) -> u64 {
        let p = (i / SUBDIV).min(POWERS - 1);
        let s = (i % SUBDIV) as u64;
        (1u64 << p) + (((s + 1) << p) >> 2)
    }

    /// The `p`-th percentile (`0.0 < p <= 1.0`) of a merged bucket
    /// array with `total` observations, reported as the matched
    /// bucket's inclusive upper bound in nanoseconds (0 when nothing
    /// was recorded).
    pub fn percentile_nanos(buckets: &[u64], total: u64, p: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return upper_bound_nanos(i);
            }
        }
        upper_bound_nanos(BUCKETS - 1)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn index_is_monotone_and_in_range() {
            let mut probes: Vec<u64> = Vec::new();
            for shift in 0..64u32 {
                for nudge in [0u64, 1, 2, 3] {
                    probes.push((1u64 << shift).saturating_add(nudge << shift.saturating_sub(2)));
                }
            }
            probes.sort_unstable();
            probes.dedup();
            let mut prev = 0usize;
            for v in probes {
                let i = bucket_index(v);
                assert!(i < BUCKETS, "v {v}: index {i}");
                assert!(i >= prev, "v {v}: index {i} went backwards from {prev}");
                prev = i;
            }
            assert_eq!(bucket_index(0), 0);
            assert_eq!(bucket_index(1), 0);
            assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        }

        #[test]
        fn upper_bound_covers_its_bucket() {
            // Every value maps to a bucket whose upper bound is >= the
            // value and within 25% of it (the log-linear guarantee),
            // for values inside the spanned range.
            for shift in 3..47u32 {
                for step in 0..8u64 {
                    let v = (1u64 << shift) + step * (1u64 << (shift - 3));
                    let ub = upper_bound_nanos(bucket_index(v));
                    assert!(ub >= v, "v {v}: ub {ub} below the value");
                    assert!(
                        (ub as f64) <= (v as f64) * 1.25 + 1.0,
                        "v {v}: ub {ub} overstates by more than 25%"
                    );
                }
            }
        }

        #[test]
        fn percentile_hits_the_right_bucket() {
            let mut buckets = vec![0u64; BUCKETS];
            // 99 observations of ~1µs, one of ~1ms.
            buckets[bucket_index(1_000)] = 99;
            buckets[bucket_index(1_000_000)] = 1;
            let p50 = percentile_nanos(&buckets, 100, 0.50);
            let p99 = percentile_nanos(&buckets, 100, 0.99);
            assert!((1_000..=1_250).contains(&p50), "p50 {p50}");
            assert!((1_000..=1_250).contains(&p99), "p99 {p99}");
            let p100 = percentile_nanos(&buckets, 100, 1.0);
            assert!((1_000_000..=1_250_000).contains(&p100), "p100 {p100}");
            assert_eq!(percentile_nanos(&buckets, 0, 0.5), 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Metric handles.
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle; cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — a plain statistics counter: nothing is
        // published through it and scrapes tolerate any interleaving.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — scrape-time read of a statistics counter.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        // ORDERING: Relaxed — a statistics gauge; see `Counter::add`.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — scrape-time read of a statistics gauge.
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time read of one histogram: observation count, summed
/// value (nanoseconds for latency histograms) and per-bucket counts in
/// [`latency`] geometry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts ([`latency::BUCKETS`] entries for
    /// latency histograms).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `p`-th percentile in nanoseconds (see
    /// [`latency::percentile_nanos`]).
    pub fn percentile_nanos(&self, p: f64) -> u64 {
        latency::percentile_nanos(&self.buckets, self.count, p)
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

enum Source {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> u64 + Send + Sync>),
    HistogramFn(Box<dyn Fn() -> HistogramSnapshot + Send + Sync>),
}

struct Metric {
    name: String,
    help: String,
    source: Source,
}

/// A set of named metrics scraped together. One registry per server
/// instance (tests run many servers per process, so a process-global
/// registry would cross-contaminate their counts).
///
/// Registration takes the metric name *and a mandatory non-empty help
/// string* — the `metrics-hygiene` audit rule enforces the same at the
/// call-site level. Names must be unique and Prometheus-compatible
/// (`[a-z0-9_]`, by convention prefixed `pll_`).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, source: Source) {
        assert!(
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
            "metric name {name:?} must be non-empty [a-z0-9_]"
        );
        assert!(
            !help.is_empty(),
            "metric {name} registered without a help string"
        );
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(
            metrics.iter().all(|m| m.name != name),
            "metric {name} registered twice"
        );
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            source,
        });
    }

    /// Registers an owned counter and returns its handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let cell = Arc::new(AtomicU64::new(0));
        self.register(name, help, Source::Counter(cell.clone()));
        Counter(cell)
    }

    /// Registers an owned gauge and returns its handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let cell = Arc::new(AtomicU64::new(0));
        self.register(name, help, Source::Gauge(cell.clone()));
        Gauge(cell)
    }

    /// Registers a counter whose value is computed at scrape time
    /// (e.g. a sum over per-worker shards). `f` must be a wait-free
    /// read and must be monotone for the counter contract to hold.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, help, Source::CounterFn(Box::new(f)));
    }

    /// Registers a gauge computed at scrape time.
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, help, Source::GaugeFn(Box::new(f)));
    }

    /// Registers a histogram whose snapshot is computed at scrape time
    /// (e.g. merging per-worker bucket shards). Latency histograms are
    /// nanosecond-valued in [`latency`] geometry.
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.register(name, help, Source::HistogramFn(Box::new(f)));
    }

    /// Reads every registered metric. Values are read one metric at a
    /// time (no stop-the-world), so a snapshot is per-metric atomic
    /// and cross-metric monotone, not a consistent cut.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        Snapshot {
            samples: metrics
                .iter()
                .map(|m| Sample {
                    name: m.name.clone(),
                    help: m.help.clone(),
                    value: match &m.source {
                        // ORDERING: Relaxed — scrape-time reads of
                        // statistics cells; see `Counter::add`.
                        Source::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                        Source::Gauge(c) => SampleValue::Gauge(c.load(Ordering::Relaxed)),
                        Source::CounterFn(f) => SampleValue::Counter(f()),
                        Source::GaugeFn(f) => SampleValue::Gauge(f()),
                        Source::HistogramFn(f) => SampleValue::Histogram(f()),
                    },
                })
                .collect(),
        }
    }
}

/// One scraped metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(u64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// One scraped metric: name, help and value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Registered metric name.
    pub name: String,
    /// Registered help string (empty on snapshots decoded from the
    /// wire of a peer that predates help transport — never empty for
    /// locally produced snapshots).
    pub help: String,
    /// The value at scrape time.
    pub value: SampleValue,
}

/// A point-in-time read of a whole [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Every registered metric, in registration order.
    pub samples: Vec<Sample>,
}

/// Wire version of the `STATS` snapshot encoding.
pub const SNAPSHOT_WIRE_VERSION: u16 = 1;

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.value)
    }

    /// Convenience: the value of a counter or gauge named `name`.
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => Some(*v),
            SampleValue::Histogram(_) => None,
        }
    }

    /// Appends the versioned wire encoding (the `STATS` response body)
    /// to `out`:
    ///
    /// ```text
    /// u16 version, u32 sample count, then per sample:
    ///   u16 name len, name bytes, u16 help len, help bytes,
    ///   u8 kind (0 counter, 1 gauge, 2 histogram),
    ///   counter/gauge: u64 value
    ///   histogram:     u64 count, u64 sum, u16 buckets, buckets × u64
    /// ```
    ///
    /// All integers little-endian, matching the serve protocol.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&SNAPSHOT_WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.samples.len() as u32).to_le_bytes());
        for s in &self.samples {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&(s.help.len().min(u16::MAX as usize) as u16).to_le_bytes());
            out.extend_from_slice(&s.help.as_bytes()[..s.help.len().min(u16::MAX as usize)]);
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push(KIND_COUNTER);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                SampleValue::Gauge(v) => {
                    out.push(KIND_GAUGE);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                SampleValue::Histogram(h) => {
                    out.push(KIND_HISTOGRAM);
                    out.extend_from_slice(&h.count.to_le_bytes());
                    out.extend_from_slice(&h.sum.to_le_bytes());
                    out.extend_from_slice(&(h.buckets.len() as u16).to_le_bytes());
                    for b in &h.buckets {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Decodes a wire snapshot produced by [`Snapshot::encode_into`].
    pub fn decode(body: &[u8]) -> Result<Snapshot, String> {
        let mut r = Cursor { b: body, at: 0 };
        let version = r.u16()?;
        if version != SNAPSHOT_WIRE_VERSION {
            return Err(format!(
                "unsupported STATS snapshot version {version} (expected {SNAPSHOT_WIRE_VERSION})"
            ));
        }
        let count = r.u32()? as usize;
        // A sample is at least name len + help len + kind + one u64.
        if count > body.len() / 13 + 1 {
            return Err(format!("implausible sample count {count}"));
        }
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.str16()?;
            let help = r.str16()?;
            let value = match r.u8()? {
                KIND_COUNTER => SampleValue::Counter(r.u64()?),
                KIND_GAUGE => SampleValue::Gauge(r.u64()?),
                KIND_HISTOGRAM => {
                    let count = r.u64()?;
                    let sum = r.u64()?;
                    let n = r.u16()? as usize;
                    let mut buckets = Vec::with_capacity(n);
                    for _ in 0..n {
                        buckets.push(r.u64()?);
                    }
                    SampleValue::Histogram(HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    })
                }
                k => return Err(format!("unknown sample kind {k}")),
            };
            samples.push(Sample { name, help, value });
        }
        if r.at != body.len() {
            return Err(format!(
                "{} trailing bytes after snapshot",
                body.len() - r.at
            ));
        }
        Ok(Snapshot { samples })
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.at + n > self.b.len() {
            return Err(format!(
                "truncated snapshot: need {n} bytes at offset {}",
                self.at
            ));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(s);
        Ok(u64::from_le_bytes(buf))
    }
    fn str16(&mut self) -> Result<String, String> {
        let n = self.u16()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| "non-UTF-8 string in snapshot".to_string())
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

/// Renders a snapshot in Prometheus text exposition format (version
/// 0.0.4). Histograms are nanosecond-valued internally and exposed in
/// seconds (`le` bounds and `_sum` divided by 1e9), per Prometheus
/// base-unit conventions.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for s in &snapshot.samples {
        let kind = match s.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        };
        if !s.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
        }
        out.push_str(&format!("# TYPE {} {kind}\n", s.name));
        match &s.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                out.push_str(&format!("{} {v}\n", s.name));
            }
            SampleValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue; // elide empty buckets: 192 lines → a handful
                    }
                    cumulative += c;
                    let le = latency::upper_bound_nanos(i) as f64 / 1e9;
                    out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cumulative}\n", s.name));
                }
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", s.name, h.count));
                out.push_str(&format!("{}_sum {}\n", s.name, h.sum as f64 / 1e9));
                out.push_str(&format!("{}_count {}\n", s.name, h.count));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// HTTP/1.0 /metrics exporter.
// ---------------------------------------------------------------------------

/// Spawns the metrics sidecar: a hand-rolled HTTP/1.0 listener on
/// `addr` answering `GET /metrics` with the Prometheus rendering of
/// `registry`. Returns the bound address (so `addr` may end in `:0`)
/// and the serving thread's handle. The thread exits soon after `stop`
/// becomes true (it polls between accepts).
pub fn spawn_http_exporter(
    addr: &str,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("pll-metrics-http".into())
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Serve inline: scrapers are few and the render is
                    // cheap; a slow peer is bounded by the timeouts.
                    let _ = answer_http(stream, &registry);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // ORDERING: Acquire — pairs with the Release store
                    // in the server's shutdown path so the exporter
                    // observes the final counter values before exiting.
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        })?;
    Ok((local, handle))
}

/// Reads one HTTP request head and answers it. Only `GET /metrics` is
/// served; everything else is a 404/400. HTTP/1.0 semantics: one
/// request per connection, `Connection: close`.
fn answer_http(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let timeout = Some(std::time::Duration::from_secs(2));
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head, capped so a
    // hostile peer cannot balloon memory.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method != "GET" {
        ("400 Bad Request", "only GET is supported\n".to_string())
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", render_prometheus(&registry.snapshot()))
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

/// Structured event kinds the flight recorder understands. Each kind
/// fixes the meaning of the event's two payload words (`a`, `b`) —
/// see [`FlightEvent::to_json`] for the rendered field names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A new served index generation was swapped in: `a` = the new
    /// generation number, `b` = overlay delta entries it serves.
    EpochPublish,
    /// A connection was shed with `STATUS_BUSY`: `a` = total sheds so
    /// far, `b` = the bounded-queue limit that was hit.
    ConnectionShed,
    /// Startup WAL replay failed and the server degraded to the base
    /// snapshot: `a` = records replayed before the failure, `b` =
    /// validated WAL byte length.
    DegradedRecovery,
    /// A request exceeded the slow-request threshold: `a` =
    /// service time in microseconds, `b` = distance answers in it.
    SlowRequest,
    /// An armed failpoint site was crossed: `a`/`b` pack the site name
    /// (see [`pack_site`]).
    FailpointHit,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::EpochPublish => 1,
            EventKind::ConnectionShed => 2,
            EventKind::DegradedRecovery => 3,
            EventKind::SlowRequest => 4,
            EventKind::FailpointHit => 5,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::EpochPublish,
            2 => EventKind::ConnectionShed,
            3 => EventKind::DegradedRecovery,
            4 => EventKind::SlowRequest,
            5 => EventKind::FailpointHit,
            _ => return None,
        })
    }

    /// Stable JSON name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EpochPublish => "epoch_publish",
            EventKind::ConnectionShed => "connection_shed",
            EventKind::DegradedRecovery => "degraded_recovery",
            EventKind::SlowRequest => "slow_request",
            EventKind::FailpointHit => "failpoint_hit",
        }
    }

    fn field_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::EpochPublish => ("generation", "delta_entries"),
            EventKind::ConnectionShed => ("sheds_total", "max_pending"),
            EventKind::DegradedRecovery => ("records_replayed", "valid_bytes"),
            EventKind::SlowRequest => ("micros", "queries"),
            EventKind::FailpointHit => ("site", ""),
        }
    }
}

/// Packs (up to) the first 16 bytes of a site name into two words for
/// a [`EventKind::FailpointHit`] event.
pub fn pack_site(name: &str) -> (u64, u64) {
    let mut bytes = [0u8; 16];
    let n = name.len().min(16);
    bytes[..n].copy_from_slice(&name.as_bytes()[..n]);
    let mut a = [0u8; 8];
    let mut b = [0u8; 8];
    a.copy_from_slice(&bytes[..8]);
    b.copy_from_slice(&bytes[8..]);
    (u64::from_le_bytes(a), u64::from_le_bytes(b))
}

/// Inverse of [`pack_site`] (truncated names come back truncated).
pub fn unpack_site(a: u64, b: u64) -> String {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&a.to_le_bytes());
    bytes[8..].copy_from_slice(&b.to_le_bytes());
    let end = bytes.iter().position(|&c| c == 0).unwrap_or(16);
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (0-based, monotone across the run).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub ts_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (meaning fixed by `kind`).
    pub a: u64,
    /// Second payload word (meaning fixed by `kind`).
    pub b: u64,
}

impl FlightEvent {
    /// One-line JSON rendering with kind-specific field names — the
    /// schema documented in `docs/OBSERVABILITY.md`.
    pub fn to_json(&self) -> String {
        let (fa, fb) = self.kind.field_names();
        if self.kind == EventKind::FailpointHit {
            return format!(
                "{{\"seq\":{},\"ts_us\":{},\"event\":\"{}\",\"{fa}\":\"{}\"}}",
                self.seq,
                self.ts_micros,
                self.kind.name(),
                unpack_site(self.a, self.b)
            );
        }
        format!(
            "{{\"seq\":{},\"ts_us\":{},\"event\":\"{}\",\"{fa}\":{},\"{fb}\":{}}}",
            self.seq,
            self.ts_micros,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

struct Slot {
    /// Commit word: 0 = never written, `2·ticket + 2` = committed.
    /// A torn read (concurrent rewrite of the same slot) fails the
    /// commit check and the slot is skipped — diagnostics may drop an
    /// event under wrap pressure, never corrupt one into UB.
    seq: AtomicU64,
    kind: AtomicU64,
    ts_micros: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A fixed-size lock-free ring of recent structured events. Recording
/// is a ticket `fetch_add` plus a handful of relaxed stores; reading
/// (a dump) is best-effort and skips slots that are mid-rewrite.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    next: AtomicU64,
    start: Instant,
    tee_enabled: AtomicBool,
    tee: Mutex<Option<Box<dyn std::io::Write + Send>>>,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` events
    /// (rounded up to a power of two, minimum 8).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(8).next_power_of_two();
        FlightRecorder {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    ts_micros: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
            next: AtomicU64::new(0),
            start: Instant::now(),
            tee_enabled: AtomicBool::new(false),
            tee: Mutex::new(None),
        }
    }

    /// Number of events recorded since startup (not capped by ring
    /// capacity).
    pub fn recorded(&self) -> u64 {
        // ORDERING: Relaxed — statistics read of the ticket counter.
        self.next.load(Ordering::Relaxed)
    }

    /// Records one event.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        // ORDERING: Relaxed — the ticket only allocates a distinct
        // slot; slot visibility is carried by the Release commit below.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ticket % cap) as usize];
        let ts = self.start.elapsed().as_micros() as u64;
        // Claim the slot by CAS from its previous commit word. Failure
        // means a lapping writer owns the slot mid-rewrite: drop this
        // event's ring storage (the ticket still counts) instead of
        // tearing the owner's fields.
        let previous_commit = if ticket >= cap {
            (ticket - cap) * 2 + 2
        } else {
            0
        };
        let claimed = slot
            .seq
            .compare_exchange(
                previous_commit,
                ticket * 2 + 1,
                // ORDERING: Relaxed CAS (success and failure) — the
                // claim only needs atomicity; the Release fence below
                // orders it before the field stores so a reader's
                // recheck can detect an in-progress rewrite.
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok();
        if claimed {
            // ORDERING: Release fence — orders the odd claim word
            // before the field stores; with the Acquire fence in
            // `events`, a reader whose recheck still sees the old
            // commit word cannot have read these in-flight fields.
            std::sync::atomic::fence(Ordering::Release);
            // ORDERING: Relaxed field stores — single-writer between
            // claim and commit; the Release commit below makes them
            // visible to readers that observe it.
            slot.kind.store(kind.code(), Ordering::Relaxed);
            slot.ts_micros.store(ts, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            slot.seq.store(ticket * 2 + 2, Ordering::Release);
        }
        // ORDERING: Relaxed — cheap hot-path gate; the tee lock below
        // provides the actual synchronization when enabled.
        if self.tee_enabled.load(Ordering::Relaxed) {
            let event = FlightEvent {
                seq: ticket,
                ts_micros: ts,
                kind,
                a,
                b,
            };
            let mut tee = self.tee.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(w) = tee.as_mut() {
                let _ = writeln!(w, "{}", event.to_json());
                let _ = w.flush();
            }
        }
    }

    /// Streams every subsequent event as a JSONL line to `w` (the
    /// `--trace-log` tee) in addition to keeping it in the ring.
    pub fn set_tee(&self, w: Box<dyn std::io::Write + Send>) {
        *self.tee.lock().unwrap_or_else(PoisonError::into_inner) = Some(w);
        // ORDERING: Relaxed — the gate is advisory; a record racing
        // this store merely misses the first tee line.
        self.tee_enabled.store(true, Ordering::Relaxed);
    }

    /// Opens `path` for appending (created if missing) and tees every
    /// subsequent event to it as JSONL — the `--trace-log` backend.
    /// Appending rather than truncating keeps a restarted process from
    /// erasing the trace that led up to its predecessor's death.
    pub fn tee_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        self.set_tee(Box::new(file));
        Ok(())
    }

    /// Best-effort read of the ring, oldest first. Slots being
    /// rewritten concurrently are skipped.
    pub fn events(&self) -> Vec<FlightEvent> {
        // ORDERING: Acquire — pairs with the Release commit in
        // `record` so committed fields are visible.
        let next = self.next.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = next.saturating_sub(cap);
        let mut out = Vec::new();
        for ticket in first..next {
            let slot = &self.slots[(ticket % cap) as usize];
            // ORDERING: Acquire — see above; the fields below are only
            // trusted when the commit word matches this ticket.
            if slot.seq.load(Ordering::Acquire) != ticket * 2 + 2 {
                continue;
            }
            // ORDERING: Relaxed — covered by the Acquire commit check
            // before and the fenced recheck after.
            let kind = slot.kind.load(Ordering::Relaxed);
            let ts_micros = slot.ts_micros.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // ORDERING: Acquire fence — orders the field loads above
            // before the recheck, pairing with the writer's Release
            // fence: a lapping rewrite that could have torn the fields
            // leaves its odd claim word visible to the recheck.
            std::sync::atomic::fence(Ordering::Acquire);
            // ORDERING: Relaxed recheck — the fence provides ordering.
            if slot.seq.load(Ordering::Relaxed) != ticket * 2 + 2 {
                continue;
            }
            if let Some(kind) = EventKind::from_code(kind) {
                out.push(FlightEvent {
                    seq: ticket,
                    ts_micros,
                    kind,
                    a,
                    b,
                });
            }
        }
        out
    }

    /// Dumps the ring as JSONL to stderr with a framing header —
    /// called on panic, degraded recovery and shutdown.
    pub fn dump_stderr(&self, reason: &str) {
        let events = self.events();
        eprintln!(
            "flight recorder ({reason}): {} of {} recorded event(s)",
            events.len(),
            self.recorded()
        );
        for e in events {
            eprintln!("  {}", e.to_json());
        }
    }
}

static PANIC_RECORDERS: OnceLock<Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();

/// Registers `recorder` for dumping on panic. The hook is installed
/// once per process and chains the previous hook; recorders are held
/// weakly so a finished server's ring does not outlive it.
pub fn dump_on_panic(recorder: &Arc<FlightRecorder>) {
    let recorders = PANIC_RECORDERS.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(list) = PANIC_RECORDERS.get() {
                let list = list.lock().unwrap_or_else(PoisonError::into_inner);
                for weak in list.iter() {
                    if let Some(r) = weak.upgrade() {
                        r.dump_stderr("panic");
                    }
                }
            }
            previous(info);
        }));
        Mutex::new(Vec::new())
    });
    let mut list = recorders.lock().unwrap_or_else(PoisonError::into_inner);
    list.retain(|w| w.strong_count() > 0);
    list.push(Arc::downgrade(recorder));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_reads_all_kinds() {
        let reg = Registry::new();
        let c = reg.counter("pll_test_total", "a test counter");
        let g = reg.gauge("pll_test_gauge", "a test gauge");
        reg.counter_fn("pll_test_fn_total", "a collector counter", || 7);
        reg.histogram_fn("pll_test_seconds", "a test histogram", || {
            HistogramSnapshot {
                count: 2,
                sum: 1_001_000,
                buckets: {
                    let mut b = vec![0u64; latency::BUCKETS];
                    b[latency::bucket_index(1_000)] = 1;
                    b[latency::bucket_index(1_000_000)] = 1;
                    b
                },
            }
        });
        c.add(3);
        c.inc();
        g.set(42);
        let snap = reg.snapshot();
        assert_eq!(snap.value("pll_test_total"), Some(4));
        assert_eq!(snap.value("pll_test_gauge"), Some(42));
        assert_eq!(snap.value("pll_test_fn_total"), Some(7));
        match snap.get("pll_test_seconds") {
            Some(SampleValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert!(h.percentile_nanos(0.5) >= 1_000);
            }
            other => panic!("unexpected sample {other:?}"),
        }
        assert_eq!(snap.value("pll_missing"), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let reg = Registry::new();
        let _a = reg.counter("pll_dup_total", "first");
        let _b = reg.counter("pll_dup_total", "second");
    }

    #[test]
    #[should_panic(expected = "help string")]
    fn empty_help_is_rejected() {
        let reg = Registry::new();
        let _c = reg.counter("pll_undocumented_total", "");
    }

    #[test]
    fn wire_roundtrip_preserves_every_sample() {
        let reg = Registry::new();
        reg.counter("pll_a_total", "counter a").add(11);
        reg.gauge("pll_b", "gauge b").set(22);
        reg.histogram_fn("pll_c_seconds", "histogram c", || HistogramSnapshot {
            count: 5,
            sum: 900,
            buckets: vec![0, 3, 0, 2],
        });
        let snap = reg.snapshot();
        let mut wire = Vec::new();
        snap.encode_into(&mut wire);
        let decoded = Snapshot::decode(&wire).expect("decode");
        assert_eq!(decoded, snap);
        // Truncations fail cleanly at every prefix length.
        for cut in 0..wire.len() {
            assert!(Snapshot::decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Snapshot::decode(&[9, 9]).is_err(), "bad version");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = Registry::new();
        reg.counter("pll_q_total", "queries").add(5);
        reg.gauge("pll_up", "uptime").set(9);
        reg.histogram_fn("pll_lat_seconds", "latency", || HistogramSnapshot {
            count: 3,
            sum: 3_000,
            buckets: {
                let mut b = vec![0u64; latency::BUCKETS];
                b[latency::bucket_index(1_000)] = 3;
                b
            },
        });
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE pll_q_total counter\npll_q_total 5\n"));
        assert!(text.contains("# TYPE pll_up gauge\npll_up 9\n"));
        assert!(text.contains("# HELP pll_q_total queries\n"));
        assert!(text.contains("pll_lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("pll_lat_seconds_count 3\n"));
        // Cumulative bucket counts: the only populated bucket carries
        // all three observations.
        assert!(text
            .lines()
            .any(|l| l.starts_with("pll_lat_seconds_bucket{le=\"0.00000") && l.ends_with(" 3")));
    }

    #[test]
    fn http_exporter_serves_metrics_and_404s() {
        let reg = Arc::new(Registry::new());
        reg.counter("pll_http_total", "scraped over http").add(13);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            spawn_http_exporter("127.0.0.1:0", reg.clone(), stop.clone()).expect("bind");
        let fetch = |path: &str| {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").expect("send");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("read");
            out
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("pll_http_total 13\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain; version=0.0.4"));
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        // ORDERING: Release — pairs with the exporter's Acquire poll.
        stop.store(true, Ordering::Release);
        handle.join().expect("exporter thread exits");
    }

    #[test]
    fn flight_recorder_keeps_recent_events_in_order() {
        let rec = FlightRecorder::new(8);
        for i in 0..20u64 {
            rec.record(EventKind::SlowRequest, i, i * 2);
        }
        let events = rec.events();
        assert_eq!(events.len(), 8, "ring keeps exactly its capacity");
        assert_eq!(rec.recorded(), 20);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert!(events.iter().all(|e| e.b == e.a * 2));
    }

    #[test]
    fn flight_events_render_schema_stable_json() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::EpochPublish, 3, 120);
        let (a, b) = pack_site("wal.after_append");
        rec.record(EventKind::FailpointHit, a, b);
        let events = rec.events();
        assert!(events[0].to_json().contains("\"event\":\"epoch_publish\""));
        assert!(events[0].to_json().contains("\"generation\":3"));
        assert!(events[0].to_json().contains("\"delta_entries\":120"));
        assert!(events[1]
            .to_json()
            .contains("\"site\":\"wal.after_append\""));
    }

    #[test]
    fn site_packing_roundtrips_and_truncates() {
        for name in ["a", "wal.after_append", "flatten.before_swap"] {
            let (a, b) = pack_site(name);
            let back = unpack_site(a, b);
            assert_eq!(back, &name[..name.len().min(16)]);
        }
    }

    #[test]
    fn tee_streams_jsonl() {
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let rec = FlightRecorder::new(8);
        rec.set_tee(Box::new(buf.clone()));
        rec.record(EventKind::ConnectionShed, 1, 64);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"event\":\"connection_shed\""), "{text}");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn concurrent_records_and_dumps_stay_well_formed() {
        let rec = Arc::new(FlightRecorder::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = rec.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    // ORDERING: Relaxed — test-only stop flag.
                    while !stop.load(Ordering::Relaxed) {
                        rec.record(EventKind::SlowRequest, w * 1_000_000 + i, i);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in rec.events() {
                // Any surfaced event must be internally consistent.
                assert_eq!(e.kind, EventKind::SlowRequest);
                assert_eq!(e.a % 1_000_000, e.b, "torn event {e:?}");
            }
        }
        // ORDERING: Relaxed — test-only stop flag.
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
