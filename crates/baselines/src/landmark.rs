//! Standard landmark-based approximate distances (§2.2, §4.6.2).
//!
//! Select `k` landmarks, precompute BFS distances from each, and estimate
//! `d(s, t) ≈ min_ℓ d(s, ℓ) + d(ℓ, t)`. The estimate is an upper bound,
//! exact iff some shortest `s`–`t` path passes through a landmark. The
//! paper leans on two properties of this method (both measurable here):
//! central landmarks give high average precision, yet *close* pairs stay
//! inaccurate — the motivation for exact labeling (§1, §7.3.3), and
//! Theorem 4.3 bounds PLL's label size by landmark coverage.

use pll_graph::traversal::bfs::BfsEngine;
use pll_graph::{CsrGraph, Vertex, Xoshiro256pp, INF_U32};

/// Landmark selection strategies (mirrors the ordering strategies of §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LandmarkSelection {
    /// Uniformly random landmarks.
    Random,
    /// Highest-degree vertices.
    Degree,
}

/// A `k`-landmark distance sketch.
pub struct LandmarkIndex {
    landmarks: Vec<Vertex>,
    /// `dist[i][v]` = BFS distance from landmark `i` to `v`.
    dist: Vec<Vec<u32>>,
}

impl LandmarkIndex {
    /// Builds the sketch with `k` landmarks (clamped to `n`).
    pub fn build(g: &CsrGraph, k: usize, selection: LandmarkSelection, seed: u64) -> Self {
        let n = g.num_vertices();
        let k = k.min(n);
        let landmarks: Vec<Vertex> = match selection {
            LandmarkSelection::Random => {
                let mut order: Vec<Vertex> = (0..n as Vertex).collect();
                Xoshiro256pp::seed_from_u64(seed).shuffle(&mut order);
                order.truncate(k);
                order
            }
            LandmarkSelection::Degree => {
                let mut order: Vec<Vertex> = (0..n as Vertex).collect();
                order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
                order.truncate(k);
                order
            }
        };
        let mut engine = BfsEngine::new(n);
        let dist = landmarks
            .iter()
            .map(|&l| engine.run(g, l).to_vec())
            .collect();
        LandmarkIndex { landmarks, dist }
    }

    /// The selected landmarks.
    pub fn landmarks(&self) -> &[Vertex] {
        &self.landmarks
    }

    /// Upper-bound estimate of `d(s, t)`; `None` if no landmark reaches
    /// both endpoints.
    pub fn estimate(&self, s: Vertex, t: Vertex) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let mut best = u64::MAX;
        for d in &self.dist {
            let (ds, dt) = (d[s as usize], d[t as usize]);
            if ds != INF_U32 && dt != INF_U32 {
                let sum = ds as u64 + dt as u64;
                if sum < best {
                    best = sum;
                }
            }
        }
        (best != u64::MAX).then_some(best as u32)
    }

    /// Index bytes (k × n 32-bit distances).
    pub fn memory_bytes(&self) -> usize {
        self.dist.iter().map(|d| d.len() * 4).sum::<usize>() + self.landmarks.len() * 4
    }

    /// Evaluates precision on `samples` random pairs.
    pub fn evaluate(&self, g: &CsrGraph, samples: usize, seed: u64) -> LandmarkEvaluation {
        let n = g.num_vertices();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut engine = BfsEngine::new(n);
        let mut eval = LandmarkEvaluation::default();
        if n == 0 {
            return eval;
        }
        for _ in 0..samples {
            let s = rng.next_below(n as u64) as Vertex;
            let t = rng.next_below(n as u64) as Vertex;
            let Some(exact) = engine.distance(g, s, t) else {
                continue; // disconnected pairs excluded, as in the papers
            };
            eval.pairs += 1;
            let bucket = exact.min(LandmarkEvaluation::MAX_DISTANCE_BUCKET as u32) as usize;
            eval.per_distance_total[bucket] += 1;
            match self.estimate(s, t) {
                Some(est) if est == exact => {
                    eval.exact += 1;
                    eval.per_distance_exact[bucket] += 1;
                }
                Some(est) if exact > 0 => {
                    eval.relative_error_sum += (est - exact) as f64 / exact as f64;
                }
                Some(_) => {}
                // No landmark reaches both endpoints (all landmarks sit in
                // other components): maximally wrong, but attribute no
                // finite relative error.
                None => {}
            }
        }
        eval
    }
}

/// Precision statistics of the landmark estimate over sampled pairs.
#[derive(Clone, Debug, Default)]
pub struct LandmarkEvaluation {
    /// Connected sampled pairs evaluated.
    pub pairs: usize,
    /// Pairs answered exactly.
    pub exact: usize,
    /// Sum of `(est − exact) / exact` over pairs with `exact > 0`.
    pub relative_error_sum: f64,
    /// Per-true-distance totals (index = distance, clamped to the last
    /// bucket).
    pub per_distance_total: [usize; Self::MAX_DISTANCE_BUCKET + 1],
    /// Per-true-distance exact counts.
    pub per_distance_exact: [usize; Self::MAX_DISTANCE_BUCKET + 1],
}

impl LandmarkEvaluation {
    /// Distances above this are clamped into the final bucket.
    pub const MAX_DISTANCE_BUCKET: usize = 15;

    /// Fraction of sampled connected pairs answered exactly — the `1 − ε`
    /// of Theorem 4.3.
    pub fn exact_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.exact as f64 / self.pairs as f64
        }
    }

    /// Mean relative error over sampled pairs.
    pub fn mean_relative_error(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.relative_error_sum / self.pairs as f64
        }
    }

    /// Exact fraction at a given true distance (`None` if unsampled).
    pub fn exact_fraction_at(&self, distance: usize) -> Option<f64> {
        let d = distance.min(Self::MAX_DISTANCE_BUCKET);
        if self.per_distance_total[d] == 0 {
            None
        } else {
            Some(self.per_distance_exact[d] as f64 / self.per_distance_total[d] as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;

    #[test]
    fn estimates_are_upper_bounds_and_exact_through_landmarks() {
        let g = gen::star(20).unwrap();
        // The star centre as sole landmark answers every pair exactly.
        let lm = LandmarkIndex::build(&g, 1, LandmarkSelection::Degree, 0);
        assert_eq!(lm.landmarks(), &[0]);
        assert_eq!(lm.estimate(1, 2), Some(2));
        assert_eq!(lm.estimate(0, 5), Some(1));
        let eval = lm.evaluate(&g, 500, 1);
        assert!((eval.exact_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(eval.mean_relative_error(), 0.0);
    }

    #[test]
    fn degree_selection_beats_random_on_scale_free_graphs() {
        let g = gen::barabasi_albert(800, 2, 3).unwrap();
        let by_degree = LandmarkIndex::build(&g, 8, LandmarkSelection::Degree, 0)
            .evaluate(&g, 2_000, 7)
            .exact_fraction();
        let by_random = LandmarkIndex::build(&g, 8, LandmarkSelection::Random, 0)
            .evaluate(&g, 2_000, 7)
            .exact_fraction();
        assert!(
            by_degree > by_random,
            "degree {by_degree} should beat random {by_random}"
        );
    }

    #[test]
    fn close_pairs_are_less_precise_than_distant_pairs() {
        // §7.3.3: distant pairs are covered well by central landmarks,
        // close pairs poorly.
        let g = gen::barabasi_albert(1_500, 3, 11).unwrap();
        let lm = LandmarkIndex::build(&g, 16, LandmarkSelection::Degree, 0);
        let eval = lm.evaluate(&g, 4_000, 13);
        let near = eval.exact_fraction_at(2);
        let far = eval.exact_fraction_at(4);
        if let (Some(near), Some(far)) = (near, far) {
            assert!(
                far > near,
                "distance-4 precision {far} should exceed distance-2 precision {near}"
            );
        }
    }

    #[test]
    fn disconnected_estimate_is_none() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let lm = LandmarkIndex::build(&g, 2, LandmarkSelection::Degree, 0);
        // Both landmarks may land in one component; a cross pair has no
        // common landmark.
        assert_eq!(lm.estimate(0, 2), None);
    }

    #[test]
    fn k_clamped_and_memory() {
        let g = gen::path(5).unwrap();
        let lm = LandmarkIndex::build(&g, 100, LandmarkSelection::Random, 2);
        assert_eq!(lm.landmarks().len(), 5);
        assert_eq!(lm.memory_bytes(), 5 * 5 * 4 + 5 * 4);
    }

    use pll_graph::CsrGraph;
}
