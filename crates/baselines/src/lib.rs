//! Baseline distance-query methods from the paper's evaluation (§7).
//!
//! Table 3 compares pruned landmark labeling against plain BFS,
//! hierarchical hub labeling (the paper's reference \[2\]) and a
//! tree-decomposition-based method (reference \[4\]);
//! §2.2/§4.6.2 discuss the standard landmark-based *approximate* method and
//! §4.1 the naive (unpruned) labeling. This crate implements all of them:
//!
//! * [`oracle`] — index-free BFS / bidirectional-BFS oracles and
//!   the [`oracle::DistanceOracle`] trait the harness iterates over;
//! * [`landmark`] — the standard landmark approximation with
//!   Random/Degree selection and precision evaluation;
//! * [`naive_labeling`] — the unpruned labeling `L_n` of §4.1 (ground truth
//!   for the Theorem 4.1 equivalence tests);
//! * [`canonical_hub`] — canonical hub labeling built by *full* BFS sweeps
//!   with label filtering: the stand-in for hierarchical hub labeling (it
//!   produces the same canonical labels as PLL for a fixed order while
//!   paying the unpruned-search indexing cost — see DESIGN.md §6);
//! * [`ch`] — a contraction-hierarchy oracle over a min-degree elimination
//!   order: the stand-in for the tree-decomposition method (same
//!   elimination-ordering family — see DESIGN.md §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical_hub;
pub mod ch;
pub mod landmark;
pub mod naive_labeling;
pub mod oracle;

pub use canonical_hub::CanonicalHubLabeling;
pub use ch::{ChError, ContractionHierarchy};
pub use landmark::{LandmarkEvaluation, LandmarkIndex, LandmarkSelection};
pub use naive_labeling::NaiveLabeling;
pub use oracle::{BfsOracle, BidirBfsOracle, DistanceOracle, PllOracle};
