//! Index-free oracles and the common oracle trait.
//!
//! The "BFS" column of Table 3 answers each query with a fresh breadth-first
//! search; these wrappers give every method in the harness the same
//! interface.

use pll_core::PllIndex;
use pll_graph::traversal::bfs::{BfsEngine, BidirBfsEngine};
use pll_graph::{CsrGraph, Vertex};

/// A (possibly stateful) exact distance oracle.
pub trait DistanceOracle {
    /// Exact distance from `s` to `t`, `None` when disconnected.
    fn distance(&mut self, s: Vertex, t: Vertex) -> Option<u32>;
    /// Short method name for harness tables.
    fn name(&self) -> &'static str;
}

/// Answers each query with a unidirectional BFS (early exit at the target).
pub struct BfsOracle<'g> {
    graph: &'g CsrGraph,
    engine: BfsEngine,
}

impl<'g> BfsOracle<'g> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        BfsOracle {
            graph,
            engine: BfsEngine::new(graph.num_vertices()),
        }
    }
}

impl DistanceOracle for BfsOracle<'_> {
    fn distance(&mut self, s: Vertex, t: Vertex) -> Option<u32> {
        self.engine.distance(self.graph, s, t)
    }
    fn name(&self) -> &'static str {
        "BFS"
    }
}

/// Answers each query with a bidirectional BFS — the strongest index-free
/// baseline on small-world graphs.
pub struct BidirBfsOracle<'g> {
    graph: &'g CsrGraph,
    engine: BidirBfsEngine,
}

impl<'g> BidirBfsOracle<'g> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        BidirBfsOracle {
            graph,
            engine: BidirBfsEngine::new(graph.num_vertices()),
        }
    }
}

impl DistanceOracle for BidirBfsOracle<'_> {
    fn distance(&mut self, s: Vertex, t: Vertex) -> Option<u32> {
        self.engine.distance(self.graph, s, t)
    }
    fn name(&self) -> &'static str {
        "BiBFS"
    }
}

/// Adapts a [`PllIndex`] to the oracle trait.
pub struct PllOracle<'i> {
    index: &'i PllIndex,
}

impl<'i> PllOracle<'i> {
    /// Wraps an existing index.
    pub fn new(index: &'i PllIndex) -> Self {
        PllOracle { index }
    }
}

impl DistanceOracle for PllOracle<'_> {
    fn distance(&mut self, s: Vertex, t: Vertex) -> Option<u32> {
        self.index.distance(s, t)
    }
    fn name(&self) -> &'static str {
        "PLL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_core::IndexBuilder;
    use pll_graph::gen;

    #[test]
    fn oracles_agree_on_random_graph() {
        let g = gen::barabasi_albert(300, 3, 7).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        let mut bfs = BfsOracle::new(&g);
        let mut bi = BidirBfsOracle::new(&g);
        let mut pll = PllOracle::new(&idx);
        for (s, t) in [(0u32, 299u32), (5, 5), (17, 160), (250, 3)] {
            let d = bfs.distance(s, t);
            assert_eq!(bi.distance(s, t), d);
            assert_eq!(pll.distance(s, t), d);
        }
    }

    #[test]
    fn names() {
        let g = gen::path(3).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        assert_eq!(BfsOracle::new(&g).name(), "BFS");
        assert_eq!(BidirBfsOracle::new(&g).name(), "BiBFS");
        assert_eq!(PllOracle::new(&idx).name(), "PLL");
    }

    #[test]
    fn disconnected_pairs() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut bfs = BfsOracle::new(&g);
        let mut bi = BidirBfsOracle::new(&g);
        assert_eq!(bfs.distance(0, 2), None);
        assert_eq!(bi.distance(0, 2), None);
    }
}
