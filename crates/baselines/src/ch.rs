//! Contraction-hierarchy distance oracle — the tree-decomposition-method
//! stand-in (see DESIGN.md §6).
//!
//! The TD-based exact methods the paper compares against (\[41\], \[4\]) build
//! on elimination orderings: peel low-degree fringe vertices, summarise
//! their shortcuts, and answer queries through the remaining core.
//! Contraction hierarchies are the textbook embodiment of that idea:
//! contract vertices in min-degree order, insert shortcut edges preserving
//! pairwise distances among the remaining vertices, and answer queries with
//! a bidirectional *upward* Dijkstra.
//!
//! On complex networks the dense core makes contraction expensive — exactly
//! the behaviour Table 3 reports for the TD method (fine on small graphs,
//! DNF on large ones). A configurable shortcut budget turns that blow-up
//! into an explicit [`ChError::BudgetExceeded`] ("DNF").

use pll_graph::{CsrGraph, Vertex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Construction failure of the contraction hierarchy.
#[derive(Debug, PartialEq, Eq)]
pub enum ChError {
    /// The number of shortcut edges exceeded the configured budget (the
    /// "DNF" outcome on graphs with a dense core).
    BudgetExceeded {
        /// The configured maximum number of shortcuts.
        budget: usize,
    },
}

impl std::fmt::Display for ChError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChError::BudgetExceeded { budget } => {
                write!(f, "contraction produced more than {budget} shortcuts (DNF)")
            }
        }
    }
}

impl std::error::Error for ChError {}

/// A contraction-hierarchy distance oracle over an unweighted undirected
/// graph (edges are treated as weight 1; shortcuts carry accumulated
/// weights).
#[derive(Debug)]
pub struct ContractionHierarchy {
    /// Contraction position of each vertex (0 = contracted first).
    position: Vec<u32>,
    /// Upward adjacency: for each vertex, edges to later-contracted
    /// vertices only, as `(neighbour, weight)`.
    up: Vec<Vec<(Vertex, u32)>>,
    /// Number of shortcut edges added.
    shortcuts: usize,
}

impl ContractionHierarchy {
    /// Builds the hierarchy with a lazy min-degree elimination order and at
    /// most `shortcut_budget` shortcut edges.
    pub fn build(g: &CsrGraph, shortcut_budget: usize) -> Result<Self, ChError> {
        let n = g.num_vertices();
        // Dynamic weighted adjacency during contraction.
        let mut adj: Vec<HashMap<Vertex, u32>> = vec![HashMap::new(); n];
        for (u, v) in g.edges() {
            adj[u as usize].insert(v, 1);
            adj[v as usize].insert(u, 1);
        }

        let mut contracted = vec![false; n];
        let mut position = vec![0u32; n];
        let mut up: Vec<Vec<(Vertex, u32)>> = vec![Vec::new(); n];
        let mut shortcuts = 0usize;

        // Lazy min-degree priority queue: entries may be stale; re-check on
        // pop and reinsert if the degree changed.
        let mut pq: BinaryHeap<Reverse<(u32, Vertex)>> = (0..n as Vertex)
            .map(|v| Reverse((adj[v as usize].len() as u32, v)))
            .collect();

        let mut pos = 0u32;
        while let Some(Reverse((deg, v))) = pq.pop() {
            if contracted[v as usize] {
                continue;
            }
            let current = adj[v as usize].len() as u32;
            if current != deg {
                pq.push(Reverse((current, v)));
                continue;
            }
            // Contract v: record its upward edges, then add shortcuts among
            // its remaining neighbours.
            position[v as usize] = pos;
            pos += 1;
            contracted[v as usize] = true;

            let neighbours: Vec<(Vertex, u32)> =
                adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
            up[v as usize] = neighbours.clone();

            for i in 0..neighbours.len() {
                let (a, wa) = neighbours[i];
                adj[a as usize].remove(&v);
                for &(b, wb) in &neighbours[i + 1..] {
                    let through = wa + wb;
                    // Witness check: the direct a–b edge (if any) is the
                    // only sub-`through` path we test; absent or longer, the
                    // shortcut is required for exactness. Extra shortcuts
                    // never hurt correctness, only size.
                    let existing = adj[a as usize].get(&b).copied();
                    if existing.is_none_or(|w| w > through) {
                        if existing.is_none() {
                            shortcuts += 1;
                            if shortcuts > shortcut_budget {
                                return Err(ChError::BudgetExceeded {
                                    budget: shortcut_budget,
                                });
                            }
                        }
                        adj[a as usize].insert(b, through);
                        adj[b as usize].insert(a, through);
                    }
                }
            }
            adj[v as usize].clear();
            adj[v as usize].shrink_to_fit();
            // Re-key every affected neighbour now: with only pop-time
            // re-keying, a vertex whose degree *dropped* could be shadowed
            // by a smaller stale key of a denser vertex, breaking the
            // min-degree order (and e.g. forcing shortcuts on trees).
            for &(a, _) in &neighbours {
                pq.push(Reverse((adj[a as usize].len() as u32, a)));
            }
        }

        // Sort upward edges and keep only those pointing upward in the
        // hierarchy (neighbour contracted later). By construction all
        // recorded edges satisfy this — v was contracted first — but sort
        // for deterministic iteration.
        for list in &mut up {
            list.sort_unstable();
        }

        Ok(ContractionHierarchy {
            position,
            up,
            shortcuts,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.position.len()
    }

    /// Number of shortcut edges added during contraction.
    pub fn num_shortcuts(&self) -> usize {
        self.shortcuts
    }

    /// Total upward edges (original + shortcuts).
    pub fn num_upward_edges(&self) -> usize {
        self.up.iter().map(Vec::len).sum()
    }

    /// Approximate index bytes.
    pub fn memory_bytes(&self) -> usize {
        self.position.len() * 4 + self.num_upward_edges() * 8
    }

    /// Exact distance via bidirectional upward Dijkstra.
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<u32> {
        assert!(
            (s as usize) < self.num_vertices(),
            "vertex {s} out of range"
        );
        assert!(
            (t as usize) < self.num_vertices(),
            "vertex {t} out of range"
        );
        if s == t {
            return Some(0);
        }
        let dist_s = self.upward_search(s);
        let dist_t = self.upward_search(t);
        let mut best = u64::MAX;
        for (v, ds) in &dist_s {
            if let Some(dt) = dist_t.get(v) {
                let d = *ds as u64 + *dt as u64;
                if d < best {
                    best = d;
                }
            }
        }
        (best != u64::MAX).then_some(best as u32)
    }

    /// Dijkstra restricted to upward edges; returns the settled map.
    fn upward_search(&self, src: Vertex) -> HashMap<Vertex, u32> {
        let mut dist: HashMap<Vertex, u32> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u32, Vertex)>> = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(Reverse((0, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if dist.get(&u).is_some_and(|&cur| d > cur) {
                continue;
            }
            for &(w, wt) in &self.up[u as usize] {
                // Upward means strictly later contraction position.
                if self.position[w as usize] <= self.position[u as usize] {
                    continue;
                }
                let nd = d + wt;
                if dist.get(&w).is_none_or(|&cur| nd < cur) {
                    dist.insert(w, nd);
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::traversal::bfs;
    use pll_graph::{gen, INF_U32};

    fn check_exact(g: &CsrGraph) {
        let ch = ContractionHierarchy::build(g, usize::MAX).unwrap();
        let n = g.num_vertices() as Vertex;
        for s in 0..n {
            let d = bfs::distances(g, s);
            for t in 0..n {
                let expect = (d[t as usize] != INF_U32).then_some(d[t as usize]);
                assert_eq!(ch.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn exact_on_structured_graphs() {
        check_exact(&gen::path(20).unwrap());
        check_exact(&gen::cycle(15).unwrap());
        check_exact(&gen::grid(5, 6).unwrap());
        check_exact(&gen::star(12).unwrap());
        check_exact(&gen::balanced_tree(2, 4).unwrap());
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in [1, 2, 3] {
            check_exact(&gen::erdos_renyi_gnm(60, 140, seed).unwrap());
            check_exact(&gen::barabasi_albert(70, 2, seed).unwrap());
        }
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        check_exact(&g);
    }

    #[test]
    fn tree_needs_no_shortcuts() {
        let g = gen::balanced_tree(3, 4).unwrap();
        let ch = ContractionHierarchy::build(&g, usize::MAX).unwrap();
        assert_eq!(ch.num_shortcuts(), 0, "trees are perfectly eliminable");
    }

    #[test]
    fn budget_exceeded_is_dnf() {
        // A dense random graph forces shortcuts beyond a tiny budget.
        let g = gen::erdos_renyi_gnm(60, 400, 5).unwrap();
        let err = ContractionHierarchy::build(&g, 3).unwrap_err();
        assert!(matches!(err, ChError::BudgetExceeded { budget: 3 }));
        assert!(err.to_string().contains("DNF"));
    }

    #[test]
    fn grid_shortcut_count_is_moderate() {
        let g = gen::grid(10, 10).unwrap();
        let ch = ContractionHierarchy::build(&g, usize::MAX).unwrap();
        // Grids have treewidth ~10; shortcuts stay near-linear, not n².
        assert!(
            ch.num_shortcuts() < 10 * g.num_edges(),
            "shortcuts {}",
            ch.num_shortcuts()
        );
        assert!(ch.memory_bytes() > 0);
        assert!(ch.num_upward_edges() >= g.num_edges());
    }

    use pll_graph::CsrGraph;
}
