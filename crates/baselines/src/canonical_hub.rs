//! Canonical hub labeling via full BFS sweeps — the hierarchical hub
//! labeling stand-in (see DESIGN.md §6).
//!
//! For a fixed vertex order, the *canonical* hub labeling contains
//! `(w, d(w, v)) ∈ L(v)` iff no higher-priority vertex lies on any shortest
//! `w`–`v` path. Hierarchical hub labeling \[2\] computes such labelings from
//! full shortest-path trees; this module does the moral equivalent — a
//! *full* (unpruned) BFS per root, filtering each candidate entry through
//! the 2-hop query over the labels accumulated so far.
//!
//! The result is provably the same label set pruned landmark labeling
//! produces for the same order (Theorem 4.2's minimality — the tests check
//! exact equality), but the indexing cost is `O(n·m)` plus filtering, i.e.
//! it lacks exactly the pruned-search advantage: the comparison Table 3
//! makes between HHL and PLL.

use pll_graph::reorder::{apply_order, inverse_permutation};
use pll_graph::{CsrGraph, Vertex, INF_U32};

/// A canonical 2-hop labeling built without pruned search.
pub struct CanonicalHubLabeling {
    /// `order[rank] = original vertex`.
    order: Vec<Vertex>,
    /// `inv[vertex] = rank`.
    inv: Vec<u32>,
    /// Per rank-space vertex: (hub rank, distance), ascending hub rank.
    labels: Vec<Vec<(u32, u32)>>,
}

impl CanonicalHubLabeling {
    /// Builds the canonical labeling for `g` under `order`
    /// (`order[rank] = vertex`).
    pub fn build(g: &CsrGraph, order: &[Vertex]) -> CanonicalHubLabeling {
        let n = g.num_vertices();
        assert_eq!(order.len(), n, "order must cover every vertex");
        let inv = inverse_permutation(order);
        let h = apply_order(g, order).expect("CSR graphs fit the u32 adjacency bound");

        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        // temp[w] = d(w, r) for hubs w of the current root's label.
        let mut temp: Vec<u32> = vec![INF_U32; n];
        let mut dist: Vec<u32> = vec![INF_U32; n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);

        for r in 0..n as u32 {
            for &(w, d) in &labels[r as usize] {
                temp[w as usize] = d;
            }
            // Full BFS from r — no pruned traversal.
            queue.clear();
            queue.push(r);
            dist[r as usize] = 0;
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let d = dist[u as usize];
                // Filter: keep (r, d) only if not already answerable.
                let mut covered = false;
                for &(w, dw) in &labels[u as usize] {
                    let tw = temp[w as usize];
                    if tw != INF_U32 && tw + dw <= d {
                        covered = true;
                        break;
                    }
                }
                if !covered {
                    labels[u as usize].push((r, d));
                }
                for &w in h.neighbors(u) {
                    if dist[w as usize] == INF_U32 {
                        dist[w as usize] = d + 1;
                        queue.push(w);
                    }
                }
            }
            for &v in &queue {
                dist[v as usize] = INF_U32;
            }
            for &(w, _) in &labels[r as usize] {
                temp[w as usize] = INF_U32;
            }
        }

        CanonicalHubLabeling {
            order: order.to_vec(),
            inv,
            labels,
        }
    }

    /// Exact distance between original vertices.
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let (ls, lt) = (
            &self.labels[self.inv[s as usize] as usize],
            &self.labels[self.inv[t as usize] as usize],
        );
        let mut i = 0usize;
        let mut j = 0usize;
        let mut best = u64::MAX;
        while i < ls.len() && j < lt.len() {
            if ls[i].0 == lt[j].0 {
                let d = ls[i].1 as u64 + lt[j].1 as u64;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            } else if ls[i].0 < lt[j].0 {
                i += 1;
            } else {
                j += 1;
            }
        }
        (best != u64::MAX).then_some(best as u32)
    }

    /// Label of an original vertex as (hub rank, distance) pairs.
    pub fn label_of(&self, v: Vertex) -> &[(u32, u32)] {
        &self.labels[self.inv[v as usize] as usize]
    }

    /// Total label entries.
    pub fn total_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Average label entries per vertex.
    pub fn avg_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_entries() as f64 / self.labels.len() as f64
        }
    }

    /// Approximate index bytes (8 bytes per entry as stored here).
    pub fn memory_bytes(&self) -> usize {
        self.total_entries() * 8 + self.order.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_core::{IndexBuilder, OrderingStrategy};
    use pll_graph::gen;
    use pll_graph::traversal::bfs;

    #[test]
    fn distances_are_exact() {
        let g = gen::erdos_renyi_gnm(50, 120, 5).unwrap();
        let order: Vec<Vertex> = (0..50).collect();
        let chl = CanonicalHubLabeling::build(&g, &order);
        for s in 0..50u32 {
            let d = bfs::distances(&g, s);
            for t in 0..50u32 {
                let expect = (d[t as usize] != INF_U32).then_some(d[t as usize]);
                assert_eq!(chl.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn labels_equal_pruned_landmark_labels() {
        // The decisive cross-validation: for the same order, the canonical
        // filtering construction and the pruned BFS construction must
        // produce IDENTICAL labels (both are the canonical minimal labeling,
        // Theorem 4.2).
        let g = gen::barabasi_albert(120, 3, 9).unwrap();
        let idx = IndexBuilder::new()
            .ordering(OrderingStrategy::Degree)
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        let chl = CanonicalHubLabeling::build(&g, idx.order());
        for v in 0..120u32 {
            let rank = idx.rank_of(v);
            let (ranks, dists) = idx.labels().label(rank);
            let pll_label: Vec<(u32, u32)> = ranks[..ranks.len() - 1]
                .iter()
                .zip(dists.iter())
                .map(|(&r, &d)| (r, d as u32))
                .collect();
            assert_eq!(chl.label_of(v), &pll_label[..], "labels of vertex {v}");
        }
    }

    #[test]
    fn label_size_far_below_naive() {
        let g = gen::barabasi_albert(200, 3, 4).unwrap();
        let order: Vec<Vertex> =
            pll_core::order::compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let chl = CanonicalHubLabeling::build(&g, &order);
        // Naive labeling stores n entries per vertex on connected graphs.
        assert!(chl.avg_label_size() < 60.0, "avg {}", chl.avg_label_size());
        assert!(chl.memory_bytes() > 0);
    }

    #[test]
    fn disconnected_graph() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let chl = CanonicalHubLabeling::build(&g, &[0, 1, 2, 3]);
        assert_eq!(chl.distance(0, 3), None);
        assert_eq!(chl.distance(2, 3), Some(1));
    }

    use pll_graph::CsrGraph;
}
