//! Naive (unpruned) landmark labeling — §4.1 of the paper.
//!
//! A full BFS from every vertex in order, storing *every* reached distance:
//! `L_k(u) = L_{k-1}(u) ∪ {(v_k, d(v_k, u))}`. Quadratic index size; usable
//! only on small graphs. Its purpose here is Theorem 4.1: for every prefix
//! `k`, `Query(s, t, L'_k) = Query(s, t, L_k)` — the pruned index must
//! answer exactly what the naive index answers, which the integration tests
//! verify.

use pll_graph::traversal::bfs::BfsEngine;
use pll_graph::{CsrGraph, Vertex, INF_U32};

/// The unpruned landmark labeling `L_n` (and all its prefixes `L_k`).
pub struct NaiveLabeling {
    /// `order[k]` is the `k`-th BFS root.
    order: Vec<Vertex>,
    /// Per vertex: `(root position k, distance)` pairs, ascending in `k`.
    labels: Vec<Vec<(u32, u32)>>,
}

impl NaiveLabeling {
    /// Builds the full labeling with BFSs in the given `order`
    /// (`order[k] = k-th root`). O(n·m) time, O(n²) space.
    pub fn build(g: &CsrGraph, order: &[Vertex]) -> NaiveLabeling {
        let n = g.num_vertices();
        assert_eq!(order.len(), n, "order must cover every vertex");
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut engine = BfsEngine::new(n);
        for (k, &root) in order.iter().enumerate() {
            let dist = engine.run(g, root);
            for v in 0..n {
                if dist[v] != INF_U32 {
                    labels[v].push((k as u32, dist[v]));
                }
            }
        }
        NaiveLabeling {
            order: order.to_vec(),
            labels,
        }
    }

    /// The root order.
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// `Query(s, t, L_k)`: the 2-hop answer using only the labels of the
    /// first `k` roots. `k = n` gives the exact distance.
    pub fn query_at(&self, k: usize, s: Vertex, t: Vertex) -> Option<u32> {
        let (ls, lt) = (&self.labels[s as usize], &self.labels[t as usize]);
        let mut i = 0usize;
        let mut j = 0usize;
        let mut best = u64::MAX;
        while i < ls.len() && j < lt.len() {
            let (ri, rj) = (ls[i].0, lt[j].0);
            // Labels are sorted by root position and a match needs equal
            // positions below k, so the merge can stop as soon as either
            // side passes k.
            if ri as usize >= k || rj as usize >= k {
                break;
            }
            if ri == rj {
                let d = ls[i].1 as u64 + lt[j].1 as u64;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            } else if ri < rj {
                i += 1;
            } else {
                j += 1;
            }
        }
        (best != u64::MAX).then_some(best as u32)
    }

    /// Exact distance (`Query` over the full labeling).
    pub fn query(&self, s: Vertex, t: Vertex) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        self.query_at(self.order.len(), s, t)
    }

    /// Total number of label entries (the quadratic blow-up the pruning
    /// avoids).
    pub fn total_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Average label entries per vertex.
    pub fn avg_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_entries() as f64 / self.labels.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;
    use pll_graph::traversal::bfs;

    #[test]
    fn full_query_is_exact() {
        let g = gen::erdos_renyi_gnm(40, 90, 2).unwrap();
        let order: Vec<Vertex> = (0..40).collect();
        let nl = NaiveLabeling::build(&g, &order);
        for s in 0..40u32 {
            let d = bfs::distances(&g, s);
            for t in 0..40u32 {
                let expect = (d[t as usize] != INF_U32).then_some(d[t as usize]);
                // Self-pairs: query() special-cases s == t like the index.
                let got = nl.query(s, t);
                assert_eq!(got, expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn prefix_queries_are_monotone() {
        let g = gen::barabasi_albert(50, 2, 3).unwrap();
        let order: Vec<Vertex> = (0..50).collect();
        let nl = NaiveLabeling::build(&g, &order);
        // As k grows the 2-hop upper bound can only improve.
        let mut last = None;
        for k in [1, 5, 10, 25, 50] {
            let q = nl.query_at(k, 3, 47);
            if let (Some(prev), Some(cur)) = (last, q) {
                assert!(cur <= prev);
            }
            if q.is_some() {
                last = q;
            }
        }
        assert_eq!(last, bfs::distance(&g, 3, 47));
    }

    #[test]
    fn label_sizes_are_quadratic_on_connected_graphs() {
        let g = gen::cycle(30).unwrap();
        let order: Vec<Vertex> = (0..30).collect();
        let nl = NaiveLabeling::build(&g, &order);
        assert_eq!(nl.total_entries(), 30 * 30);
        assert!((nl.avg_label_size() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_components_never_share_hubs() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let nl = NaiveLabeling::build(&g, &[0, 1, 2, 3]);
        assert_eq!(nl.query(0, 2), None);
        assert_eq!(nl.query(0, 1), Some(1));
        assert_eq!(nl.query(2, 3), Some(1));
    }

    use pll_graph::CsrGraph;
}
