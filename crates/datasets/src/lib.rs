//! Synthetic stand-ins for the eleven evaluation datasets (Table 4).
//!
//! The paper evaluates on real SNAP/WebGraph dumps that are not bundled
//! here; per DESIGN.md §6 each dataset is substituted by a synthetic model
//! matched to its network class and density:
//!
//! * social networks → Chung–Lu power-law graphs with the dataset's average
//!   degree and a class-typical exponent;
//! * web graphs → the copying model (power-law + link-copying locality);
//! * computer networks (P2P, topology, traffic) → Chung–Lu with milder or
//!   heavier skew matching the class.
//!
//! Every spec records the paper's |V| and |E| so the harness can print
//! Table 4 with both the paper-scale and the generated-scale numbers. A
//! `scale` divisor shrinks |V| while preserving average degree; the paper's
//! behaviours (power-law CCDF, small distances, pruning efficiency) are
//! scale-robust, which Figure 2's stand-in plots confirm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pll_graph::error::Result;
use pll_graph::{gen, CsrGraph};

/// Network class of a dataset (the "Network" column of Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkClass {
    /// On-line social networks (Epinions, Slashdot, WikiTalk, Flickr,
    /// Hollywood).
    Social,
    /// Web crawls (NotreDame, Indo, Indochina).
    Web,
    /// Computer networks (Gnutella, Skitter, MetroSec).
    Computer,
}

impl NetworkClass {
    /// Display name matching Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkClass::Social => "Social",
            NetworkClass::Web => "Web",
            NetworkClass::Computer => "Computer",
        }
    }
}

/// The generative model standing in for a dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Model {
    /// Chung–Lu power-law graph with exponent `gamma` and target average
    /// degree.
    ChungLu {
        /// Power-law exponent (> 2).
        gamma: f64,
        /// Target average degree.
        avg_deg: f64,
    },
    /// Copying-model web graph.
    Copying {
        /// Out-links per page.
        out_deg: usize,
        /// Probability of copying a prototype link.
        copy_prob: f64,
    },
    /// Barabási–Albert preferential attachment with `m` links per vertex.
    BarabasiAlbert {
        /// Edges added per new vertex.
        m: usize,
    },
}

/// One dataset of Table 4 with its synthetic substitution.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Network class.
    pub class: NetworkClass,
    /// |V| reported in Table 4.
    pub paper_vertices: usize,
    /// |E| reported in Table 4.
    pub paper_edges: usize,
    /// Scale divisor the harness uses by default (1 = paper scale).
    pub default_scale: u32,
    /// Bit-parallel roots used in Table 3 for this dataset (16 for the
    /// smaller five, 64 for the larger six).
    pub bp_roots: usize,
    /// The stand-in model.
    pub model: Model,
    /// Generation seed (fixed for reproducibility).
    pub seed: u64,
}

impl DatasetSpec {
    /// Number of vertices at the given scale divisor (at least 1024, at
    /// most the paper size).
    pub fn scaled_vertices(&self, scale: u32) -> usize {
        (self.paper_vertices / scale.max(1) as usize)
            .max(1024)
            .min(self.paper_vertices)
    }

    /// Generates the stand-in graph at the given scale divisor.
    pub fn generate(&self, scale: u32) -> Result<CsrGraph> {
        let n = self.scaled_vertices(scale);
        match self.model {
            Model::ChungLu { gamma, avg_deg } => gen::chung_lu(n, gamma, avg_deg, self.seed),
            Model::Copying { out_deg, copy_prob } => {
                gen::copying_model(n, out_deg, copy_prob, self.seed)
            }
            Model::BarabasiAlbert { m } => gen::barabasi_albert(n, m, self.seed),
        }
    }

    /// Generates at the default scale.
    pub fn generate_default(&self) -> Result<CsrGraph> {
        self.generate(self.default_scale)
    }

    /// Whether this dataset belongs to the paper's "smaller five" group
    /// (used with 16 bit-parallel roots and full baseline comparison).
    pub fn is_small_group(&self) -> bool {
        self.bp_roots == 16
    }
}

/// The eleven datasets of Table 4, in the paper's order.
pub const DATASETS: [DatasetSpec; 11] = [
    DatasetSpec {
        name: "Gnutella",
        class: NetworkClass::Computer,
        paper_vertices: 63_000,
        paper_edges: 148_000,
        default_scale: 8,
        bp_roots: 16,
        // P2P overlay: mildly skewed degrees.
        model: Model::ChungLu {
            gamma: 3.0,
            avg_deg: 4.7,
        },
        seed: 0xD5_0001,
    },
    DatasetSpec {
        name: "Epinions",
        class: NetworkClass::Social,
        paper_vertices: 76_000,
        paper_edges: 509_000,
        default_scale: 8,
        bp_roots: 16,
        model: Model::ChungLu {
            gamma: 2.3,
            avg_deg: 13.4,
        },
        seed: 0xD5_0002,
    },
    DatasetSpec {
        name: "Slashdot",
        class: NetworkClass::Social,
        paper_vertices: 82_000,
        paper_edges: 948_000,
        default_scale: 8,
        bp_roots: 16,
        model: Model::ChungLu {
            gamma: 2.4,
            avg_deg: 23.1,
        },
        seed: 0xD5_0003,
    },
    DatasetSpec {
        name: "NotreDame",
        class: NetworkClass::Web,
        paper_vertices: 326_000,
        paper_edges: 1_500_000,
        default_scale: 16,
        bp_roots: 16,
        model: Model::Copying {
            out_deg: 5,
            copy_prob: 0.85,
        },
        seed: 0xD5_0004,
    },
    DatasetSpec {
        name: "WikiTalk",
        class: NetworkClass::Social,
        paper_vertices: 2_400_000,
        paper_edges: 4_700_000,
        default_scale: 64,
        bp_roots: 16,
        // Extremely hub-concentrated communication graph.
        model: Model::ChungLu {
            gamma: 2.1,
            avg_deg: 3.9,
        },
        seed: 0xD5_0005,
    },
    DatasetSpec {
        name: "Skitter",
        class: NetworkClass::Computer,
        paper_vertices: 1_700_000,
        paper_edges: 11_000_000,
        default_scale: 64,
        bp_roots: 64,
        model: Model::ChungLu {
            gamma: 2.25,
            avg_deg: 12.9,
        },
        seed: 0xD5_0006,
    },
    DatasetSpec {
        name: "Indo",
        class: NetworkClass::Web,
        paper_vertices: 1_400_000,
        paper_edges: 17_000_000,
        default_scale: 64,
        bp_roots: 64,
        model: Model::Copying {
            out_deg: 13,
            copy_prob: 0.9,
        },
        seed: 0xD5_0007,
    },
    DatasetSpec {
        name: "MetroSec",
        class: NetworkClass::Computer,
        paper_vertices: 2_300_000,
        paper_edges: 22_000_000,
        default_scale: 64,
        bp_roots: 64,
        model: Model::ChungLu {
            gamma: 2.1,
            avg_deg: 19.1,
        },
        seed: 0xD5_0008,
    },
    DatasetSpec {
        name: "Flickr",
        class: NetworkClass::Social,
        paper_vertices: 1_800_000,
        paper_edges: 23_000_000,
        default_scale: 64,
        bp_roots: 64,
        model: Model::ChungLu {
            gamma: 2.2,
            avg_deg: 25.6,
        },
        seed: 0xD5_0009,
    },
    DatasetSpec {
        name: "Hollywood",
        class: NetworkClass::Social,
        paper_vertices: 1_100_000,
        paper_edges: 114_000_000,
        default_scale: 128,
        bp_roots: 64,
        // Collaboration graph: very dense social network.
        model: Model::ChungLu {
            gamma: 2.3,
            avg_deg: 207.0,
        },
        seed: 0xD5_000A,
    },
    DatasetSpec {
        name: "Indochina",
        class: NetworkClass::Web,
        paper_vertices: 7_400_000,
        paper_edges: 194_000_000,
        default_scale: 128,
        bp_roots: 64,
        model: Model::Copying {
            out_deg: 27,
            copy_prob: 0.92,
        },
        seed: 0xD5_000B,
    },
];

/// Looks a dataset up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

/// The smaller five datasets (full baseline comparison in Table 3).
pub fn small_five() -> impl Iterator<Item = &'static DatasetSpec> {
    DATASETS.iter().filter(|d| d.is_small_group())
}

/// The larger six datasets (scalability demonstration in Table 3).
pub fn large_six() -> impl Iterator<Item = &'static DatasetSpec> {
    DATASETS.iter().filter(|d| !d.is_small_group())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_table4() {
        assert_eq!(DATASETS.len(), 11);
        assert_eq!(small_five().count(), 5);
        assert_eq!(large_six().count(), 6);
        // Paper order and grouping.
        assert_eq!(DATASETS[0].name, "Gnutella");
        assert_eq!(DATASETS[4].name, "WikiTalk");
        assert!(DATASETS[4].is_small_group());
        assert_eq!(DATASETS[10].name, "Indochina");
        assert_eq!(DATASETS[10].bp_roots, 64);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("gnutella").is_some());
        assert!(by_name("HOLLYWOOD").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scaled_vertices_clamped() {
        let d = by_name("Gnutella").unwrap();
        assert_eq!(d.scaled_vertices(1), 63_000);
        assert_eq!(d.scaled_vertices(8), 63_000 / 8);
        assert_eq!(d.scaled_vertices(1_000_000), 1024);
    }

    #[test]
    fn generation_is_deterministic_and_plausible() {
        // Generate the small five at an aggressive scale and check density.
        for d in small_five() {
            let g = d.generate(64).unwrap();
            let g2 = d.generate(64).unwrap();
            assert_eq!(g, g2, "{} must be deterministic", d.name);
            let paper_avg = 2.0 * d.paper_edges as f64 / d.paper_vertices as f64;
            let got_avg = g.avg_degree();
            assert!(
                got_avg > paper_avg * 0.4 && got_avg < paper_avg * 2.0,
                "{}: paper avg degree {paper_avg:.1}, generated {got_avg:.1}",
                d.name
            );
        }
    }

    #[test]
    fn web_stand_ins_use_copying_model() {
        for d in DATASETS.iter().filter(|d| d.class == NetworkClass::Web) {
            assert!(matches!(d.model, Model::Copying { .. }), "{}", d.name);
        }
    }

    #[test]
    fn class_labels() {
        assert_eq!(NetworkClass::Social.label(), "Social");
        assert_eq!(NetworkClass::Web.label(), "Web");
        assert_eq!(NetworkClass::Computer.label(), "Computer");
    }
}
