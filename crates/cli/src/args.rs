//! Hand-rolled argument parsing for the `pll` binary (no CLI dependency).

use pll_core::{IndexFormat, OrderingStrategy};

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  pll build <edges.txt> <out.idx>
            [--format undirected|directed|weighted|weighted-directed]
            [--order degree|random|closeness] [--bp-roots t] [--seed s]
            [--threads k]   (k=0: all CPUs; every format honors --threads)
            [--store-parents]  (undirected only; enables PATH queries,
                                implies --bp-roots 0 and --threads 1)
  pll query <index.idx> [--path|--connected] <s> <t> [<s> <t> ...]
  pll query <index.idx> [--path|--connected] -   (pairs from stdin, `s t` per line)
  pll stats <index.idx>                         (any format, v1 or v2)
  pll stats --addr host:port                    (INFO + STATS from a running
             server: vertices, epoch, uptime, overlay delta entries,
             flatten generation/threshold, and the live metric registry)
  pll bench <index.idx> [--queries q] [--seed s]  (any format, v1 or v2)
  pll serve --index <index.idx> [--graph <edges.txt>] [--addr host:port]
            [--threads k] [--max-pending n]
            [--wal <journal.wal>] [--snapshot-every n]
            [--flatten-threshold n|never]
            [--metrics-addr host:port] [--trace-log <events.jsonl>]
            (TCP query service; --graph enables online UPDATE frames with
             overlay-direct epoch publishing; a background flattener folds
             the delta overlay into a fresh flat base once it exceeds
             --flatten-threshold entries (`never` serves the overlay
             indefinitely; default: a quarter of the index's label
             entries, floored at 1024); --wal journals UPDATE batches
             for crash
             recovery and --snapshot-every compacts the journal into the
             index file every n batches, riding the same background swap;
             --max-pending bounds the queued connections before arrivals
             are shed with STATUS_BUSY; --metrics-addr serves Prometheus
             text on GET /metrics from a sidecar HTTP listener;
             --trace-log appends flight-recorder events as JSON lines;
             shut down with the SHUTDOWN opcode, e.g. serve_load
             --shutdown)
  pll update <index.idx> <graph.txt> <updates.txt> -o <out.idx> [--threads k]
            (apply edge insertions incrementally — no rebuild — and write
             the flattened v2 index; undirected indices only)
  pll wal <journal.wal>
            (dump a server write-ahead log: replayable `u v` edge lines on
             stdout — usable as the <updates.txt> of pll update — and the
             journal's header/record stats on stderr)

build input per format: `u v` per line (undirected/directed, directed
reads u -> v), `u v w` per line (weighted/weighted-directed);
--bp-roots and --order closeness apply to --format undirected only.
build writes the zero-copy v2 format; query/stats/bench/serve also read
v1 files. query --path needs an index built with --store-parents.";

/// Argument errors.
#[derive(Debug)]
pub enum ArgError {
    /// Malformed invocation; the message explains what went wrong.
    Usage(String),
}

/// A parsed command.
#[derive(Debug)]
pub enum Parsed {
    /// `pll build`.
    Build {
        /// Input edge-list path.
        edges: String,
        /// Output index path.
        output: String,
        /// Index family to build.
        format: IndexFormat,
        /// Ordering strategy.
        order: OrderingStrategy,
        /// Bit-parallel roots (undirected format only).
        bp_roots: usize,
        /// Ordering seed.
        seed: u64,
        /// Construction worker threads (1 = sequential, 0 = all CPUs);
        /// honored by every format.
        threads: usize,
        /// Store parent pointers for path reconstruction (undirected
        /// only; incompatible with bit-parallel roots and threads > 1).
        store_parents: bool,
    },
    /// `pll query`.
    Query {
        /// Index path.
        index: String,
        /// What to compute per pair.
        mode: QueryMode,
        /// Where the query pairs come from.
        pairs: PairSource,
    },
    /// `pll stats`.
    Stats {
        /// What to inspect: a local file or a running server.
        target: StatsTarget,
    },
    /// `pll bench`.
    Bench {
        /// Index path.
        index: String,
        /// Number of random queries.
        queries: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// `pll serve`.
    Serve {
        /// Index path.
        index: String,
        /// Edge-list path of the graph the index was built from;
        /// enables the UPDATE op (dynamic hot-swap serving).
        graph: Option<String>,
        /// Listen address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Worker threads (0 = one per CPU).
        threads: usize,
        /// Write-ahead log path; journals UPDATE batches for crash
        /// recovery (requires --graph).
        wal: Option<String>,
        /// Snapshot-compact the WAL into the index file every this many
        /// published batches (0 = never; requires --wal).
        snapshot_every: u64,
        /// Queued connections before new arrivals are shed with
        /// STATUS_BUSY (0 = 4 × workers + 16).
        max_pending: usize,
        /// Background-flatten the overlay once it holds this many delta
        /// entries (`never` = u64::MAX keeps serving the overlay);
        /// `None` uses the server default.
        flatten_threshold: Option<u64>,
        /// Sidecar HTTP listener serving Prometheus text on
        /// GET /metrics (`host:port`; port 0 picks a free port).
        metrics_addr: Option<String>,
        /// Append flight-recorder events to this JSONL file as they
        /// are recorded.
        trace_log: Option<String>,
    },
    /// `pll wal`.
    Wal {
        /// Write-ahead log path to dump.
        wal: String,
    },
    /// `pll update`.
    Update {
        /// Index path (undirected, v1 or v2).
        index: String,
        /// Edge-list path of the graph the index was built from.
        graph: String,
        /// Edge-list path of the insertions to apply.
        updates: String,
        /// Output path for the flattened v2 index.
        output: String,
        /// Threads for the flatten scatter (0 = all CPUs).
        threads: usize,
    },
}

/// What `pll query` computes per pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Exact distance (the default).
    Distance,
    /// Shortest-path reconstruction (needs --store-parents at build).
    Path,
    /// Same-component / reachability check.
    Connected,
}

/// What `pll stats` inspects.
#[derive(Debug, PartialEq, Eq)]
pub enum StatsTarget {
    /// A local index file.
    File(String),
    /// A running server, queried with the INFO opcode (`--addr`).
    Server(String),
}

/// Where `pll query` reads its pairs from.
#[derive(Debug, PartialEq, Eq)]
pub enum PairSource {
    /// Pairs given on the command line.
    Args(Vec<(u32, u32)>),
    /// Stream whitespace-separated `s t` lines from stdin (`pll query
    /// <idx> -`).
    Stdin,
}

fn usage(msg: impl Into<String>) -> ArgError {
    ArgError::Usage(msg.into())
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, ArgError>
where
    T::Err: std::fmt::Display,
{
    tok.parse()
        .map_err(|e| usage(format!("bad {what} {tok:?}: {e}")))
}

impl Parsed {
    /// Parses the argument vector (without the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, ArgError> {
        let mut it = argv.iter();
        let cmd = it.next().ok_or_else(|| usage("missing command"))?;
        match cmd.as_str() {
            "build" => {
                let edges = it
                    .next()
                    .ok_or_else(|| usage("build: missing <edges.txt>"))?
                    .clone();
                let output = it
                    .next()
                    .ok_or_else(|| usage("build: missing <out.idx>"))?
                    .clone();
                let mut format = IndexFormat::Undirected;
                let mut order = OrderingStrategy::Degree;
                let mut bp_roots: Option<usize> = None;
                let mut seed = 0u64;
                let mut threads = 1usize;
                let mut store_parents = false;
                let rest: Vec<&String> = it.collect();
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--format" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--format needs a value"))?;
                            format = match val.as_str() {
                                "undirected" => IndexFormat::Undirected,
                                "directed" => IndexFormat::Directed,
                                "weighted" => IndexFormat::Weighted,
                                "weighted-directed" => IndexFormat::WeightedDirected,
                                other => return Err(usage(format!("unknown format {other:?}"))),
                            };
                        }
                        "--order" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--order needs a value"))?;
                            order = match val.as_str() {
                                "degree" => OrderingStrategy::Degree,
                                "random" => OrderingStrategy::Random,
                                "closeness" => OrderingStrategy::Closeness { samples: 32 },
                                other => return Err(usage(format!("unknown order {other:?}"))),
                            };
                        }
                        "--bp-roots" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--bp-roots needs a value"))?;
                            bp_roots = Some(parse_num(val, "--bp-roots")?);
                        }
                        "--seed" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--seed needs a value"))?;
                            seed = parse_num(val, "--seed")?;
                        }
                        "--threads" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--threads needs a value"))?;
                            threads = parse_num(val, "--threads")?;
                        }
                        "--store-parents" => store_parents = true,
                        other => return Err(usage(format!("unknown option {other:?}"))),
                    }
                    i += 1;
                }
                if store_parents {
                    if format != IndexFormat::Undirected {
                        return Err(usage(format!(
                            "--store-parents applies to --format undirected only \
                             (unsupported for the {} index)",
                            format.name()
                        )));
                    }
                    if bp_roots.is_some_and(|t| t > 0) {
                        return Err(usage(
                            "--store-parents requires --bp-roots 0: bit-parallel labels \
                             carry no parent pointers (omit --bp-roots; it defaults to 0 \
                             with --store-parents)",
                        ));
                    }
                    if threads != 1 {
                        return Err(usage(
                            "--store-parents requires --threads 1: parent pointers depend \
                             on BFS queue order",
                        ));
                    }
                }
                // Cross-flag validation (flags may precede or follow
                // --format): bit-parallel labels exist only for the
                // undirected unweighted index (§5 / §6 of the paper), and
                // the closeness ordering is implemented only there.
                if format != IndexFormat::Undirected {
                    if bp_roots.is_some() {
                        return Err(usage(format!(
                            "--bp-roots applies to --format undirected only (bit-parallel \
                             labels cannot be used for the {} index)",
                            format.name()
                        )));
                    }
                    if matches!(order, OrderingStrategy::Closeness { .. }) {
                        return Err(usage(format!(
                            "--order closeness applies to --format undirected only \
                             (unsupported for the {} index)",
                            format.name()
                        )));
                    }
                }
                Ok(Parsed::Build {
                    edges,
                    output,
                    format,
                    order,
                    bp_roots: if store_parents {
                        0
                    } else {
                        bp_roots.unwrap_or(16)
                    },
                    seed,
                    threads,
                    store_parents,
                })
            }
            "query" => {
                let index = it
                    .next()
                    .ok_or_else(|| usage("query: missing <index.idx>"))?
                    .clone();
                let mut mode = QueryMode::Distance;
                let mut rest: Vec<&String> = Vec::new();
                for tok in it {
                    match tok.as_str() {
                        "--path" => mode = QueryMode::Path,
                        "--connected" => mode = QueryMode::Connected,
                        _ => rest.push(tok),
                    }
                }
                if rest.len() == 1 && rest[0] == "-" {
                    return Ok(Parsed::Query {
                        index,
                        mode,
                        pairs: PairSource::Stdin,
                    });
                }
                if rest.is_empty() || !rest.len().is_multiple_of(2) {
                    return Err(usage(
                        "query: need an even, positive number of vertex ids (or `-` for stdin)",
                    ));
                }
                let mut pairs = Vec::with_capacity(rest.len() / 2);
                for chunk in rest.chunks_exact(2) {
                    pairs.push((
                        parse_num(chunk[0], "vertex")?,
                        parse_num(chunk[1], "vertex")?,
                    ));
                }
                Ok(Parsed::Query {
                    index,
                    mode,
                    pairs: PairSource::Args(pairs),
                })
            }
            "update" => {
                let mut positional: Vec<String> = Vec::new();
                let mut output: Option<String> = None;
                let mut threads = 0usize;
                let rest: Vec<&String> = it.collect();
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "-o" | "--output" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("-o needs a value"))?;
                            output = Some(val.to_string());
                        }
                        "--threads" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--threads needs a value"))?;
                            threads = parse_num(val, "--threads")?;
                        }
                        flag if flag.starts_with("--") => {
                            return Err(usage(format!("unknown option {flag:?}")))
                        }
                        _ => positional.push(rest[i].clone()),
                    }
                    i += 1;
                }
                let [index, graph, updates] = <[String; 3]>::try_from(positional).map_err(|p| {
                    usage(format!(
                        "update: need <index.idx> <graph.txt> <updates.txt> (got {} positional \
                         arguments)",
                        p.len()
                    ))
                })?;
                let output = output.ok_or_else(|| usage("update: -o <out.idx> is required"))?;
                Ok(Parsed::Update {
                    index,
                    graph,
                    updates,
                    output,
                    threads,
                })
            }
            "stats" => {
                let first = it
                    .next()
                    .ok_or_else(|| usage("stats: missing <index.idx> (or --addr host:port)"))?
                    .clone();
                let target = if first == "--addr" {
                    let addr = it
                        .next()
                        .ok_or_else(|| usage("stats: --addr needs a host:port value"))?
                        .clone();
                    StatsTarget::Server(addr)
                } else {
                    StatsTarget::File(first)
                };
                if it.next().is_some() {
                    return Err(usage("stats: unexpected extra arguments"));
                }
                Ok(Parsed::Stats { target })
            }
            "bench" => {
                let index = it
                    .next()
                    .ok_or_else(|| usage("bench: missing <index.idx>"))?
                    .clone();
                let mut queries = 100_000usize;
                let mut seed = 0u64;
                let rest: Vec<&String> = it.collect();
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--queries" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--queries needs a value"))?;
                            queries = parse_num(val, "--queries")?;
                        }
                        "--seed" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--seed needs a value"))?;
                            seed = parse_num(val, "--seed")?;
                        }
                        other => return Err(usage(format!("unknown option {other:?}"))),
                    }
                    i += 1;
                }
                Ok(Parsed::Bench {
                    index,
                    queries,
                    seed,
                })
            }
            "serve" => {
                let mut index: Option<String> = None;
                let mut graph: Option<String> = None;
                let mut addr = "127.0.0.1:4717".to_string();
                let mut threads = 0usize;
                let mut wal: Option<String> = None;
                let mut snapshot_every: Option<u64> = None;
                let mut max_pending = 0usize;
                let mut flatten_threshold: Option<u64> = None;
                let mut metrics_addr: Option<String> = None;
                let mut trace_log: Option<String> = None;
                let rest: Vec<&String> = it.collect();
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--index" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--index needs a value"))?;
                            index = Some(val.to_string());
                        }
                        "--graph" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--graph needs a value"))?;
                            graph = Some(val.to_string());
                        }
                        "--addr" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--addr needs a value"))?;
                            addr = val.to_string();
                        }
                        "--threads" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--threads needs a value"))?;
                            threads = parse_num(val, "--threads")?;
                        }
                        "--wal" => {
                            i += 1;
                            let val = rest.get(i).ok_or_else(|| usage("--wal needs a value"))?;
                            wal = Some(val.to_string());
                        }
                        "--snapshot-every" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--snapshot-every needs a value"))?;
                            snapshot_every = Some(parse_num(val, "--snapshot-every")?);
                        }
                        "--max-pending" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--max-pending needs a value"))?;
                            max_pending = parse_num(val, "--max-pending")?;
                        }
                        "--flatten-threshold" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--flatten-threshold needs a value"))?;
                            flatten_threshold = Some(if val.as_str() == "never" {
                                u64::MAX
                            } else {
                                parse_num(val, "--flatten-threshold")?
                            });
                        }
                        "--metrics-addr" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--metrics-addr needs a value"))?;
                            metrics_addr = Some(val.to_string());
                        }
                        "--trace-log" => {
                            i += 1;
                            let val = rest
                                .get(i)
                                .ok_or_else(|| usage("--trace-log needs a value"))?;
                            trace_log = Some(val.to_string());
                        }
                        other => return Err(usage(format!("unknown option {other:?}"))),
                    }
                    i += 1;
                }
                let index = index.ok_or_else(|| usage("serve: --index is required"))?;
                if wal.is_some() && graph.is_none() {
                    return Err(usage(
                        "serve: --wal journals UPDATE batches, which need --graph \
                         (a static server has nothing to journal)",
                    ));
                }
                if snapshot_every.is_some() && wal.is_none() {
                    return Err(usage(
                        "serve: --snapshot-every compacts the write-ahead log; it \
                         needs --wal",
                    ));
                }
                if flatten_threshold.is_some() && graph.is_none() {
                    return Err(usage(
                        "serve: --flatten-threshold tunes the background flattener, \
                         which needs --graph (a static server never flattens)",
                    ));
                }
                Ok(Parsed::Serve {
                    index,
                    graph,
                    addr,
                    threads,
                    wal,
                    snapshot_every: snapshot_every.unwrap_or(0),
                    max_pending,
                    flatten_threshold,
                    metrics_addr,
                    trace_log,
                })
            }
            "wal" => {
                let wal = it
                    .next()
                    .ok_or_else(|| usage("wal: missing <journal.wal>"))?
                    .clone();
                if it.next().is_some() {
                    return Err(usage("wal: unexpected extra arguments"));
                }
                Ok(Parsed::Wal { wal })
            }
            other => Err(usage(format!("unknown command {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_build_defaults() {
        let p = Parsed::parse(&argv(&["build", "in.txt", "out.idx"])).unwrap();
        match p {
            Parsed::Build {
                edges,
                output,
                format,
                order,
                bp_roots,
                seed,
                threads,
                store_parents,
            } => {
                assert_eq!(edges, "in.txt");
                assert_eq!(output, "out.idx");
                assert_eq!(format, IndexFormat::Undirected);
                assert_eq!(order, OrderingStrategy::Degree);
                assert_eq!(bp_roots, 16);
                assert_eq!(seed, 0);
                assert_eq!(threads, 1);
                assert!(!store_parents);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_build_options() {
        let p = Parsed::parse(&argv(&[
            "build",
            "a",
            "b",
            "--order",
            "closeness",
            "--bp-roots",
            "64",
            "--seed",
            "9",
            "--threads",
            "8",
        ]))
        .unwrap();
        match p {
            Parsed::Build {
                order,
                bp_roots,
                seed,
                threads,
                ..
            } => {
                assert_eq!(order, OrderingStrategy::Closeness { samples: 32 });
                assert_eq!(bp_roots, 64);
                assert_eq!(seed, 9);
                assert_eq!(threads, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_build_formats_all_honor_threads() {
        for (name, expect) in [
            ("undirected", IndexFormat::Undirected),
            ("directed", IndexFormat::Directed),
            ("weighted", IndexFormat::Weighted),
            ("weighted-directed", IndexFormat::WeightedDirected),
        ] {
            let p = Parsed::parse(&argv(&[
                "build",
                "a",
                "b",
                "--format",
                name,
                "--threads",
                "4",
            ]))
            .unwrap();
            match p {
                Parsed::Build {
                    format, threads, ..
                } => {
                    assert_eq!(format, expect, "--format {name}");
                    assert_eq!(threads, 4, "--format {name} must honor --threads");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn parse_build_rejects_undirected_only_flags_for_variants() {
        for name in ["directed", "weighted", "weighted-directed"] {
            // --bp-roots is undirected-only, wherever it appears relative
            // to --format.
            assert!(Parsed::parse(&argv(&[
                "build",
                "a",
                "b",
                "--format",
                name,
                "--bp-roots",
                "4"
            ]))
            .is_err());
            assert!(Parsed::parse(&argv(&[
                "build",
                "a",
                "b",
                "--bp-roots",
                "4",
                "--format",
                name
            ]))
            .is_err());
            // --order closeness is undirected-only.
            assert!(Parsed::parse(&argv(&[
                "build",
                "a",
                "b",
                "--format",
                name,
                "--order",
                "closeness"
            ]))
            .is_err());
            // degree/random remain fine.
            assert!(Parsed::parse(&argv(&[
                "build", "a", "b", "--format", name, "--order", "random"
            ]))
            .is_ok());
        }
        assert!(Parsed::parse(&argv(&["build", "a", "b", "--format", "bogus"])).is_err());
        assert!(Parsed::parse(&argv(&["build", "a", "b", "--format"])).is_err());
    }

    #[test]
    fn parse_query_pairs() {
        let p = Parsed::parse(&argv(&["query", "x.idx", "1", "2", "3", "4"])).unwrap();
        match p {
            Parsed::Query { index, mode, pairs } => {
                assert_eq!(index, "x.idx");
                assert_eq!(mode, QueryMode::Distance);
                assert_eq!(pairs, PairSource::Args(vec![(1, 2), (3, 4)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_query_modes() {
        match Parsed::parse(&argv(&["query", "x.idx", "--path", "1", "2"])).unwrap() {
            Parsed::Query { mode, pairs, .. } => {
                assert_eq!(mode, QueryMode::Path);
                assert_eq!(pairs, PairSource::Args(vec![(1, 2)]));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Flag position is free; `-` still streams from stdin.
        match Parsed::parse(&argv(&["query", "x.idx", "-", "--connected"])).unwrap() {
            Parsed::Query { mode, pairs, .. } => {
                assert_eq!(mode, QueryMode::Connected);
                assert_eq!(pairs, PairSource::Stdin);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_build_store_parents() {
        match Parsed::parse(&argv(&["build", "a", "b", "--store-parents"])).unwrap() {
            Parsed::Build {
                store_parents,
                bp_roots,
                ..
            } => {
                assert!(store_parents);
                assert_eq!(bp_roots, 0, "--store-parents implies --bp-roots 0");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Explicit zero is fine; nonzero, variants and threads are not.
        assert!(Parsed::parse(&argv(&[
            "build",
            "a",
            "b",
            "--store-parents",
            "--bp-roots",
            "0"
        ]))
        .is_ok());
        assert!(Parsed::parse(&argv(&[
            "build",
            "a",
            "b",
            "--store-parents",
            "--bp-roots",
            "4"
        ]))
        .is_err());
        assert!(Parsed::parse(&argv(&[
            "build",
            "a",
            "b",
            "--store-parents",
            "--format",
            "directed"
        ]))
        .is_err());
        assert!(Parsed::parse(&argv(&[
            "build",
            "a",
            "b",
            "--store-parents",
            "--threads",
            "2"
        ]))
        .is_err());
    }

    #[test]
    fn parse_update() {
        match Parsed::parse(&argv(&[
            "update",
            "x.idx",
            "g.txt",
            "new.txt",
            "-o",
            "y.idx",
            "--threads",
            "2",
        ]))
        .unwrap()
        {
            Parsed::Update {
                index,
                graph,
                updates,
                output,
                threads,
            } => {
                assert_eq!(index, "x.idx");
                assert_eq!(graph, "g.txt");
                assert_eq!(updates, "new.txt");
                assert_eq!(output, "y.idx");
                assert_eq!(threads, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // -o is required, as are all three positional paths.
        assert!(Parsed::parse(&argv(&["update", "x.idx", "g.txt", "new.txt"])).is_err());
        assert!(Parsed::parse(&argv(&["update", "x.idx", "g.txt", "-o", "y.idx"])).is_err());
        assert!(Parsed::parse(&argv(&[
            "update",
            "x.idx",
            "g.txt",
            "new.txt",
            "extra.txt",
            "-o",
            "y.idx"
        ]))
        .is_err());
        assert!(Parsed::parse(&argv(&[
            "update", "x.idx", "g.txt", "new.txt", "-o", "y.idx", "--bogus"
        ]))
        .is_err());
    }

    #[test]
    fn parse_query_stdin_dash() {
        let p = Parsed::parse(&argv(&["query", "x.idx", "-"])).unwrap();
        match p {
            Parsed::Query { pairs, .. } => assert_eq!(pairs, PairSource::Stdin),
            other => panic!("unexpected {other:?}"),
        }
        // `-` mixed with ids is still a parse error.
        assert!(Parsed::parse(&argv(&["query", "x.idx", "-", "2"])).is_err());
    }

    #[test]
    fn parse_serve() {
        let p = Parsed::parse(&argv(&[
            "serve",
            "--index",
            "x.idx",
            "--addr",
            "0.0.0.0:9999",
            "--threads",
            "8",
        ]))
        .unwrap();
        match p {
            Parsed::Serve {
                index,
                graph,
                addr,
                threads,
                wal,
                snapshot_every,
                max_pending,
                flatten_threshold,
                metrics_addr,
                trace_log,
            } => {
                assert_eq!(index, "x.idx");
                assert_eq!(graph, None);
                assert_eq!(addr, "0.0.0.0:9999");
                assert_eq!(threads, 8);
                assert_eq!(wal, None);
                assert_eq!(snapshot_every, 0);
                assert_eq!(max_pending, 0);
                assert_eq!(flatten_threshold, None);
                assert_eq!(metrics_addr, None);
                assert_eq!(trace_log, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: addr + threads optional, --index required; --graph
        // enables dynamic updates.
        match Parsed::parse(&argv(&["serve", "--index", "y.idx", "--graph", "g.txt"])).unwrap() {
            Parsed::Serve {
                graph,
                addr,
                threads,
                ..
            } => {
                assert_eq!(graph.as_deref(), Some("g.txt"));
                assert_eq!(addr, "127.0.0.1:4717");
                assert_eq!(threads, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Parsed::parse(&argv(&["serve"])).is_err());
        assert!(Parsed::parse(&argv(&["serve", "--index"])).is_err());
        assert!(Parsed::parse(&argv(&["serve", "--index", "x", "--bogus"])).is_err());
    }

    #[test]
    fn parse_serve_wal_flags() {
        match Parsed::parse(&argv(&[
            "serve",
            "--index",
            "x.idx",
            "--graph",
            "g.txt",
            "--wal",
            "x.wal",
            "--snapshot-every",
            "64",
            "--max-pending",
            "4",
        ]))
        .unwrap()
        {
            Parsed::Serve {
                wal,
                snapshot_every,
                max_pending,
                ..
            } => {
                assert_eq!(wal.as_deref(), Some("x.wal"));
                assert_eq!(snapshot_every, 64);
                assert_eq!(max_pending, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --wal needs --graph; --snapshot-every needs --wal.
        assert!(Parsed::parse(&argv(&["serve", "--index", "x.idx", "--wal", "x.wal"])).is_err());
        assert!(Parsed::parse(&argv(&[
            "serve",
            "--index",
            "x.idx",
            "--graph",
            "g.txt",
            "--snapshot-every",
            "8"
        ]))
        .is_err());
        assert!(Parsed::parse(&argv(&["serve", "--index", "x.idx", "--wal"])).is_err());
    }

    #[test]
    fn parse_wal_dump() {
        match Parsed::parse(&argv(&["wal", "x.wal"])).unwrap() {
            Parsed::Wal { wal } => assert_eq!(wal, "x.wal"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Parsed::parse(&argv(&["wal"])).is_err());
        assert!(Parsed::parse(&argv(&["wal", "x.wal", "extra"])).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(Parsed::parse(&argv(&[])).is_err());
        assert!(Parsed::parse(&argv(&["frobnicate"])).is_err());
        assert!(Parsed::parse(&argv(&["build", "only-one"])).is_err());
        assert!(Parsed::parse(&argv(&["query", "x.idx", "1"])).is_err());
        assert!(Parsed::parse(&argv(&["query", "x.idx", "1", "oops"])).is_err());
        assert!(Parsed::parse(&argv(&["stats", "x.idx", "extra"])).is_err());
        assert!(Parsed::parse(&argv(&["bench", "x.idx", "--queries"])).is_err());
        assert!(Parsed::parse(&argv(&["build", "a", "b", "--order", "nope"])).is_err());
        assert!(Parsed::parse(&argv(&["build", "a", "b", "--threads"])).is_err());
        assert!(Parsed::parse(&argv(&["build", "a", "b", "--threads", "x"])).is_err());
    }

    #[test]
    fn parse_serve_flatten_threshold() {
        let base = ["serve", "--index", "x.idx", "--graph", "g.txt"];
        let with = |v: &str| {
            let mut a = base.to_vec();
            a.extend(["--flatten-threshold", v]);
            Parsed::parse(&argv(&a))
        };
        match with("8").unwrap() {
            Parsed::Serve {
                flatten_threshold, ..
            } => assert_eq!(flatten_threshold, Some(8)),
            other => panic!("unexpected {other:?}"),
        }
        match with("never").unwrap() {
            Parsed::Serve {
                flatten_threshold, ..
            } => assert_eq!(flatten_threshold, Some(u64::MAX)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(with("sometimes").is_err());
        // The flattener only exists on a dynamic server.
        assert!(Parsed::parse(&argv(&[
            "serve",
            "--index",
            "x.idx",
            "--flatten-threshold",
            "8"
        ]))
        .is_err());
    }

    #[test]
    fn parse_serve_observability_flags() {
        match Parsed::parse(&argv(&[
            "serve",
            "--index",
            "x.idx",
            "--metrics-addr",
            "127.0.0.1:0",
            "--trace-log",
            "events.jsonl",
        ]))
        .unwrap()
        {
            Parsed::Serve {
                metrics_addr,
                trace_log,
                ..
            } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(trace_log.as_deref(), Some("events.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Parsed::parse(&argv(&["serve", "--index", "x.idx", "--metrics-addr"])).is_err());
        assert!(Parsed::parse(&argv(&["serve", "--index", "x.idx", "--trace-log"])).is_err());
    }

    #[test]
    fn parse_stats_and_bench() {
        match Parsed::parse(&argv(&["stats", "x.idx"])).unwrap() {
            Parsed::Stats { target } => assert_eq!(target, StatsTarget::File("x.idx".into())),
            other => panic!("unexpected {other:?}"),
        }
        match Parsed::parse(&argv(&["stats", "--addr", "127.0.0.1:4717"])).unwrap() {
            Parsed::Stats { target } => {
                assert_eq!(target, StatsTarget::Server("127.0.0.1:4717".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Parsed::parse(&argv(&["stats", "--addr"])).is_err());
        assert!(Parsed::parse(&argv(&["stats", "--addr", "a:1", "extra"])).is_err());
        match Parsed::parse(&argv(&["bench", "x.idx", "--queries", "5"])).unwrap() {
            Parsed::Bench { queries, .. } => assert_eq!(queries, 5),
            other => panic!("unexpected {other:?}"),
        }
    }
}
