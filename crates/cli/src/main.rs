//! `pll` — build, query and inspect pruned landmark labeling indices from
//! the command line.
//!
//! ```text
//! pll build <edges.txt> <out.idx> [--order degree|random|closeness]
//!           [--bp-roots t] [--seed s] [--threads k]
//! pll query <index.idx> <s> <t> [...more pairs]
//! pll stats <index.idx>
//! pll bench <index.idx> [--queries q] [--seed s]
//! ```
//!
//! `build` reads a SNAP-style undirected edge list (whitespace separated,
//! `#` comments), constructs the index and writes the versioned binary
//! format of `pll_core::serialize`.

use pll_core::{serialize, IndexBuilder, OrderingStrategy, PllIndex};
use pll_graph::{edgelist, Xoshiro256pp};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::time::Instant;

mod args;
use args::{ArgError, Parsed};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(argv).map_err(|e| match e {
        ArgError::Usage(msg) => msg,
    })?;
    match parsed {
        Parsed::Build {
            edges,
            output,
            order,
            bp_roots,
            seed,
            threads,
        } => build(&edges, &output, order, bp_roots, seed, threads),
        Parsed::Query { index, pairs } => query(&index, &pairs),
        Parsed::Stats { index } => stats(&index),
        Parsed::Bench {
            index,
            queries,
            seed,
        } => bench(&index, queries, seed),
    }
}

fn load_index(path: &str) -> Result<PllIndex, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    serialize::load_index(BufReader::new(file)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn build(
    edges: &str,
    output: &str,
    order: OrderingStrategy,
    bp_roots: usize,
    seed: u64,
    threads: usize,
) -> Result<(), String> {
    let file = File::open(edges).map_err(|e| format!("cannot open {edges}: {e}"))?;
    let started = Instant::now();
    let graph = edgelist::read_text(BufReader::new(file))
        .map_err(|e| format!("cannot parse {edges}: {e}"))?;
    eprintln!(
        "graph: {} vertices, {} edges ({:.2} s)",
        graph.num_vertices(),
        graph.num_edges(),
        started.elapsed().as_secs_f64()
    );

    let started = Instant::now();
    let index = IndexBuilder::new()
        .ordering(order)
        .bit_parallel_roots(bp_roots)
        .seed(seed)
        .threads(threads)
        .build(&graph)
        .map_err(|e| format!("construction failed: {e}"))?;
    eprintln!(
        "index: avg label {:.1}+{} entries, {} bytes ({:.2} s, {} thread{})",
        index.avg_label_size(),
        bp_roots,
        index.memory_bytes(),
        started.elapsed().as_secs_f64(),
        index.stats().threads,
        if index.stats().threads == 1 { "" } else { "s" },
    );

    let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    serialize::save_index(&index, BufWriter::new(out))
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!("wrote {output}");
    Ok(())
}

fn query(index_path: &str, pairs: &[(u32, u32)]) -> Result<(), String> {
    let index = load_index(index_path)?;
    for &(s, t) in pairs {
        match index.try_distance(s, t) {
            Ok(Some(d)) => println!("{s}\t{t}\t{d}"),
            Ok(None) => println!("{s}\t{t}\tunreachable"),
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}

fn stats(index_path: &str) -> Result<(), String> {
    let index = load_index(index_path)?;
    let ls = index.label_size_stats();
    println!("vertices:            {}", index.num_vertices());
    println!("bit-parallel roots:  {}", index.bit_parallel().num_roots());
    println!("label entries:       {}", ls.total_entries);
    println!("avg label size:      {:.2}", ls.mean);
    println!("label size min/max:  {} / {}", ls.min, ls.max);
    println!(
        "label size p50/p90/p99: {} / {} / {}",
        ls.percentiles[3], ls.percentiles[5], ls.percentiles[6]
    );
    println!("index bytes:         {}", index.memory_bytes());
    println!("parents stored:      {}", index.has_parents());
    Ok(())
}

fn bench(index_path: &str, queries: usize, seed: u64) -> Result<(), String> {
    let index = load_index(index_path)?;
    let n = index.num_vertices();
    if n == 0 {
        return Err("index is empty".into());
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let pairs: Vec<(u32, u32)> = (0..queries)
        .map(|_| {
            (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            )
        })
        .collect();
    let started = Instant::now();
    let mut sink = 0u64;
    let mut connected = 0usize;
    for &(s, t) in &pairs {
        if let Some(d) = index.distance(s, t) {
            sink = sink.wrapping_add(d as u64);
            connected += 1;
        }
    }
    let total = started.elapsed().as_secs_f64();
    println!(
        "{} queries in {:.3} s ({:.2} µs/query, {:.1}% connected, checksum {sink})",
        queries,
        total,
        total / queries.max(1) as f64 * 1e6,
        100.0 * connected as f64 / queries.max(1) as f64,
    );
    Ok(())
}
