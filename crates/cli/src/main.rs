//! `pll` — build, query and inspect pruned landmark labeling indices from
//! the command line.
//!
//! ```text
//! pll build <edges.txt> <out.idx> [--format undirected|directed|weighted|weighted-directed]
//!           [--order degree|random|closeness] [--bp-roots t] [--seed s] [--threads k]
//! pll query <index.idx> <s> <t> [...more pairs]
//! pll stats <index.idx>
//! pll bench <index.idx> [--queries q] [--seed s]
//! ```
//!
//! `build` reads a SNAP-style edge list (whitespace separated, `#`
//! comments; `u v` per line for the unweighted formats, `u v w` for the
//! weighted ones), constructs the requested index variant — `--threads`
//! selects batch-parallel construction for **every** format, with output
//! byte-identical to the sequential build — and writes the versioned
//! binary format of `pll_core::serialize`. `query`, `stats` and `bench`
//! detect the index family from the file's magic bytes, so they work on
//! any format.

use pll_core::{
    serialize, ConstructionStats, DirectedIndexBuilder, IndexBuilder, IndexFormat,
    OrderingStrategy, WeightedDirectedIndexBuilder, WeightedIndexBuilder,
};
use pll_graph::{edgelist, Xoshiro256pp};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::process::ExitCode;
use std::time::Instant;

mod args;
use args::{ArgError, Parsed};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(argv).map_err(|e| match e {
        ArgError::Usage(msg) => msg,
    })?;
    match parsed {
        Parsed::Build {
            edges,
            output,
            format,
            order,
            bp_roots,
            seed,
            threads,
        } => build(&edges, &output, format, order, bp_roots, seed, threads),
        Parsed::Query { index, pairs } => query(&index, &pairs),
        Parsed::Stats { index } => stats(&index),
        Parsed::Bench {
            index,
            queries,
            seed,
        } => bench(&index, queries, seed),
    }
}

/// Reads the 8-byte magic prefix and identifies the index family.
fn detect(path: &str) -> Result<IndexFormat, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    serialize::detect_format(&magic).map_err(|e| format!("cannot identify {path}: {e}"))
}

fn open(path: &str) -> Result<BufReader<File>, String> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot open {path}: {e}"))
}

fn build(
    edges: &str,
    output: &str,
    format: IndexFormat,
    order: OrderingStrategy,
    bp_roots: usize,
    seed: u64,
    threads: usize,
) -> Result<(), String> {
    let file = File::open(edges).map_err(|e| format!("cannot open {edges}: {e}"))?;
    let reader = BufReader::new(file);
    let parse_started = Instant::now();

    // One arm per format; everything but the reader, builder and save
    // function is shared. The output file is created only after a
    // successful build, so a parse or construction failure never
    // clobbers a pre-existing index at that path.
    macro_rules! build_arm {
        ($read:path, $builder:expr, $save:path, $bp_extra:expr) => {{
            let graph = $read(reader).map_err(|e| format!("cannot parse {edges}: {e}"))?;
            eprintln!(
                "graph: {} vertices, {} edges ({:.2} s)",
                graph.num_vertices(),
                graph.num_edges(),
                parse_started.elapsed().as_secs_f64()
            );
            let started = Instant::now();
            let index = $builder
                .build(&graph)
                .map_err(|e| format!("construction failed: {e}"))?;
            let threads_used = index.stats().threads;
            eprintln!(
                "index: avg label {:.1} entries, {} bytes ({:.2} s, {} thread{})",
                index.avg_label_size() + $bp_extra,
                index.memory_bytes(),
                started.elapsed().as_secs_f64(),
                threads_used,
                if threads_used == 1 { "" } else { "s" },
            );
            eprintln!("{}", phase_breakdown(index.stats()));
            let out = File::create(output)
                .map(BufWriter::new)
                .map_err(|e| format!("cannot create {output}: {e}"))?;
            $save(&index, out).map_err(|e| format!("cannot write {output}: {e}"))?;
        }};
    }
    match format {
        IndexFormat::Undirected => build_arm!(
            edgelist::read_text,
            IndexBuilder::new()
                .ordering(order)
                .bit_parallel_roots(bp_roots)
                .seed(seed)
                .threads(threads),
            serialize::save_index,
            bp_roots as f64
        ),
        IndexFormat::Directed => build_arm!(
            edgelist::read_directed_text,
            DirectedIndexBuilder::new()
                .ordering(order)
                .seed(seed)
                .threads(threads),
            serialize::save_directed_index,
            0.0
        ),
        IndexFormat::Weighted => build_arm!(
            edgelist::read_weighted_text,
            WeightedIndexBuilder::new()
                .ordering(order)
                .seed(seed)
                .threads(threads),
            serialize::save_weighted_index,
            0.0
        ),
        IndexFormat::WeightedDirected => build_arm!(
            edgelist::read_weighted_directed_text,
            WeightedDirectedIndexBuilder::new()
                .ordering(order)
                .seed(seed)
                .threads(threads),
            serialize::save_weighted_directed_index,
            0.0
        ),
    }
    eprintln!("wrote {output} ({} format)", format.name());
    Ok(())
}

/// The per-phase timing line shared by `pll build` and `pll stats`: the
/// Amdahl accounting of construction (ordering → relabelling → searches →
/// label flatten).
fn phase_breakdown(stats: &ConstructionStats) -> String {
    format!(
        "phases: order {:.3} s, relabel {:.3} s, search {:.3} s, flatten {:.3} s",
        stats.order_seconds,
        stats.relabel_seconds,
        stats.search_seconds(),
        stats.flatten_seconds,
    )
}

/// `pll stats` variant of the phase line: indices loaded from disk carry
/// no construction timings (the binary format stores labels, not build
/// telemetry), which is reported instead of a misleading row of zeros.
fn print_phase_stats(stats: &ConstructionStats) {
    if stats.total_seconds() > 0.0 {
        println!("construction {}", phase_breakdown(stats));
    } else {
        println!("construction phases: not recorded (reported by `pll build` at build time)");
    }
}

fn query(index_path: &str, pairs: &[(u32, u32)]) -> Result<(), String> {
    let print = |s: u32, t: u32, d: Option<u64>| match d {
        Some(d) => println!("{s}\t{t}\t{d}"),
        None => println!("{s}\t{t}\tunreachable"),
    };
    // One arm per format; `u64::from` widens the unweighted `u32`
    // distances so every arm prints through the same closure.
    macro_rules! query_arm {
        ($load:path) => {{
            let index =
                $load(open(index_path)?).map_err(|e| format!("cannot load {index_path}: {e}"))?;
            for &(s, t) in pairs {
                let d = index.try_distance(s, t).map_err(|e| e.to_string())?;
                print(s, t, d.map(u64::from));
            }
        }};
    }
    match detect(index_path)? {
        IndexFormat::Undirected => query_arm!(serialize::load_index),
        IndexFormat::Directed => query_arm!(serialize::load_directed_index),
        IndexFormat::Weighted => query_arm!(serialize::load_weighted_index),
        IndexFormat::WeightedDirected => query_arm!(serialize::load_weighted_directed_index),
    }
    Ok(())
}

fn stats(index_path: &str) -> Result<(), String> {
    let format = detect(index_path)?;
    println!("format:              {}", format.name());
    match format {
        IndexFormat::Undirected => {
            let index = serialize::load_index(open(index_path)?)
                .map_err(|e| format!("cannot load {index_path}: {e}"))?;
            let ls = index.label_size_stats();
            println!("vertices:            {}", index.num_vertices());
            println!("bit-parallel roots:  {}", index.bit_parallel().num_roots());
            println!("label entries:       {}", ls.total_entries);
            println!("avg label size:      {:.2}", ls.mean);
            println!("label size min/max:  {} / {}", ls.min, ls.max);
            println!(
                "label size p50/p90/p99: {} / {} / {}",
                ls.percentiles[3], ls.percentiles[5], ls.percentiles[6]
            );
            println!("index bytes:         {}", index.memory_bytes());
            println!("parents stored:      {}", index.has_parents());
            print_phase_stats(index.stats());
        }
        IndexFormat::Directed => {
            let index = serialize::load_directed_index(open(index_path)?)
                .map_err(|e| format!("cannot load {index_path}: {e}"))?;
            println!("vertices:            {}", index.num_vertices());
            println!(
                "label entries:       {} IN + {} OUT",
                index.labels_in().total_entries(),
                index.labels_out().total_entries()
            );
            println!("avg label size:      {:.2}", index.avg_label_size());
            println!("index bytes:         {}", index.memory_bytes());
            print_phase_stats(index.stats());
        }
        IndexFormat::Weighted => {
            let index = serialize::load_weighted_index(open(index_path)?)
                .map_err(|e| format!("cannot load {index_path}: {e}"))?;
            println!("vertices:            {}", index.num_vertices());
            println!("avg label size:      {:.2}", index.avg_label_size());
            println!("index bytes:         {}", index.memory_bytes());
            print_phase_stats(index.stats());
        }
        IndexFormat::WeightedDirected => {
            let index = serialize::load_weighted_directed_index(open(index_path)?)
                .map_err(|e| format!("cannot load {index_path}: {e}"))?;
            println!("vertices:            {}", index.num_vertices());
            println!("avg label size:      {:.2}", index.avg_label_size());
            println!("index bytes:         {}", index.memory_bytes());
            print_phase_stats(index.stats());
        }
    }
    Ok(())
}

fn bench(index_path: &str, queries: usize, seed: u64) -> Result<(), String> {
    // One arm per format: every index type exposes num_vertices() and
    // distance(s, t) -> Option<u32 | u64>, which is all the timing loop
    // needs.
    macro_rules! bench_arm {
        ($load:path) => {{
            let index =
                $load(open(index_path)?).map_err(|e| format!("cannot load {index_path}: {e}"))?;
            let n = index.num_vertices();
            if n == 0 {
                return Err("index is empty".into());
            }
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let pairs: Vec<(u32, u32)> = (0..queries)
                .map(|_| {
                    (
                        rng.next_below(n as u64) as u32,
                        rng.next_below(n as u64) as u32,
                    )
                })
                .collect();
            let started = Instant::now();
            let mut sink = 0u64;
            let mut connected = 0usize;
            for &(s, t) in &pairs {
                if let Some(d) = index.distance(s, t) {
                    sink = sink.wrapping_add(d as u64);
                    connected += 1;
                }
            }
            let total = started.elapsed().as_secs_f64();
            println!(
                "{} queries in {:.3} s ({:.2} µs/query, {:.1}% connected, checksum {sink})",
                queries,
                total,
                total / queries.max(1) as f64 * 1e6,
                100.0 * connected as f64 / queries.max(1) as f64,
            );
        }};
    }
    match detect(index_path)? {
        IndexFormat::Undirected => bench_arm!(serialize::load_index),
        IndexFormat::Directed => bench_arm!(serialize::load_directed_index),
        IndexFormat::Weighted => bench_arm!(serialize::load_weighted_index),
        IndexFormat::WeightedDirected => bench_arm!(serialize::load_weighted_directed_index),
    }
    Ok(())
}
