//! `pll` — build, query, inspect and *serve* pruned landmark labeling
//! indices from the command line.
//!
//! ```text
//! pll build <edges.txt> <out.idx> [--format undirected|directed|weighted|weighted-directed]
//!           [--order degree|random|closeness] [--bp-roots t] [--seed s] [--threads k]
//! pll query <index.idx> <s> <t> [...more pairs]
//! pll query <index.idx> -              # stream `s t` pairs from stdin
//! pll stats <index.idx>
//! pll bench <index.idx> [--queries q] [--seed s]
//! pll serve --index <index.idx> [--addr host:port] [--threads k]
//!           [--graph <edges.txt>] [--wal <journal.wal>] [--snapshot-every n]
//!           [--max-pending n]
//! pll update <index.idx> <graph.txt> <updates.txt> -o <out.idx>
//! pll wal <journal.wal>
//! ```
//!
//! `build` reads a SNAP-style edge list (whitespace separated, `#`
//! comments; `u v` per line for the unweighted formats, `u v w` for the
//! weighted ones), constructs the requested index variant — `--threads`
//! selects batch-parallel construction for **every** format, with output
//! byte-identical to the sequential build — and writes the zero-copy v2
//! format of `pll_core::v2` (construction statistics included). `query`,
//! `stats`, `bench` and `serve` open any index via
//! [`pll_core::AnyIndex`]: v1 files parse into owned indices as before,
//! v2 files open with a single read plus pointer casts and are queried in
//! place.
//!
//! `serve` starts the `pll-server` TCP query service over the shared
//! read-only index and blocks until a client sends the SHUTDOWN opcode
//! (e.g. `serve_load --shutdown`), then prints the per-worker
//! QPS/latency summary.

// The CLI is pure orchestration — all unsafe lives behind pll-core's
// audited storage/kernel modules (`pll-audit` rule unsafe-confinement).
#![forbid(unsafe_code)]

use pll_core::{
    dynamic::DynamicIndex, v2, AnyIndex, ConstructionStats, DirectedIndexBuilder, IndexBuilder,
    IndexFormat, OrderingStrategy, WeightedDirectedIndexBuilder, WeightedIndexBuilder,
};
use pll_graph::{edgelist, CsrGraph, Xoshiro256pp};
use pll_server::protocol::answers;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

mod args;
use args::{ArgError, PairSource, Parsed, QueryMode, StatsTarget};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(argv).map_err(|e| match e {
        ArgError::Usage(msg) => msg,
    })?;
    match parsed {
        Parsed::Build {
            edges,
            output,
            format,
            order,
            bp_roots,
            seed,
            threads,
            store_parents,
        } => build(
            &edges,
            &output,
            format,
            order,
            bp_roots,
            seed,
            threads,
            store_parents,
        ),
        Parsed::Query { index, mode, pairs } => query(&index, mode, &pairs),
        Parsed::Stats { target } => match target {
            StatsTarget::File(index) => stats(&index),
            StatsTarget::Server(addr) => stats_remote(&addr),
        },
        Parsed::Bench {
            index,
            queries,
            seed,
        } => bench(&index, queries, seed),
        Parsed::Serve {
            index,
            graph,
            addr,
            threads,
            wal,
            snapshot_every,
            max_pending,
            flatten_threshold,
            metrics_addr,
            trace_log,
        } => serve(
            &index,
            graph.as_deref(),
            &addr,
            threads,
            wal.as_deref(),
            snapshot_every,
            max_pending,
            flatten_threshold,
            metrics_addr.as_deref(),
            trace_log.as_deref(),
        ),
        Parsed::Update {
            index,
            graph,
            updates,
            output,
            threads,
        } => update(&index, &graph, &updates, &output, threads),
        Parsed::Wal { wal } => wal_dump(&wal),
    }
}

fn open_any(path: &str) -> Result<AnyIndex, String> {
    AnyIndex::open(std::path::Path::new(path)).map_err(|e| format!("cannot load {path}: {e}"))
}

#[allow(clippy::too_many_arguments)]
fn build(
    edges: &str,
    output: &str,
    format: IndexFormat,
    order: OrderingStrategy,
    bp_roots: usize,
    seed: u64,
    threads: usize,
    store_parents: bool,
) -> Result<(), String> {
    let file = File::open(edges).map_err(|e| format!("cannot open {edges}: {e}"))?;
    let reader = BufReader::new(file);
    let parse_started = Instant::now();

    // One arm per format; everything but the reader, builder and save
    // function is shared. The output file is created only after a
    // successful build, so a parse or construction failure never
    // clobbers a pre-existing index at that path.
    macro_rules! build_arm {
        ($read:path, $builder:expr, $save:path, $bp_extra:expr) => {{
            let graph = $read(reader).map_err(|e| format!("cannot parse {edges}: {e}"))?;
            eprintln!(
                "graph: {} vertices, {} edges ({:.2} s)",
                graph.num_vertices(),
                graph.num_edges(),
                parse_started.elapsed().as_secs_f64()
            );
            let started = Instant::now();
            let index = $builder
                .build(&graph)
                .map_err(|e| format!("construction failed: {e}"))?;
            let threads_used = index.stats().threads;
            eprintln!(
                "index: avg label {:.1} entries, {} bytes ({:.2} s, {} thread{})",
                index.avg_label_size() + $bp_extra,
                index.memory_bytes(),
                started.elapsed().as_secs_f64(),
                threads_used,
                if threads_used == 1 { "" } else { "s" },
            );
            eprintln!("{}", phase_breakdown(index.stats()));
            // Crash-atomic: the index lands via tmp-file + fsync + rename,
            // so an interrupted write never leaves a truncated index (or
            // clobbers a pre-existing one) at `output`.
            pll_core::wal::atomic_write_with(std::path::Path::new(output), |w| $save(&index, w))
                .map_err(|e| format!("cannot write {output}: {e}"))?;
        }};
    }
    match format {
        IndexFormat::Undirected => build_arm!(
            edgelist::read_text,
            IndexBuilder::new()
                .ordering(order)
                .bit_parallel_roots(bp_roots)
                .store_parents(store_parents)
                .seed(seed)
                .threads(threads),
            v2::save_v2_index,
            bp_roots as f64
        ),
        IndexFormat::Directed => build_arm!(
            edgelist::read_directed_text,
            DirectedIndexBuilder::new()
                .ordering(order)
                .seed(seed)
                .threads(threads),
            v2::save_v2_directed_index,
            0.0
        ),
        IndexFormat::Weighted => build_arm!(
            edgelist::read_weighted_text,
            WeightedIndexBuilder::new()
                .ordering(order)
                .seed(seed)
                .threads(threads),
            v2::save_v2_weighted_index,
            0.0
        ),
        IndexFormat::WeightedDirected => build_arm!(
            edgelist::read_weighted_directed_text,
            WeightedDirectedIndexBuilder::new()
                .ordering(order)
                .seed(seed)
                .threads(threads),
            v2::save_v2_weighted_directed_index,
            0.0
        ),
    }
    eprintln!("wrote {output} ({} format, v2)", format.name());
    Ok(())
}

/// The per-phase timing line shared by `pll build` and `pll stats`: the
/// Amdahl accounting of construction (ordering → relabelling → searches →
/// label flatten).
fn phase_breakdown(stats: &ConstructionStats) -> String {
    format!(
        "phases: order {:.3} s, relabel {:.3} s, search {:.3} s, flatten {:.3} s",
        stats.order_seconds,
        stats.relabel_seconds,
        stats.search_seconds(),
        stats.flatten_seconds,
    )
}

/// `pll stats` variant of the phase line. v2 indices persist their
/// construction statistics, so loaded indices report the real phase
/// timings; v1 files never stored them, so the fallback tells the user
/// exactly how to get the numbers.
fn phase_stats_lines(stats: &ConstructionStats) -> Vec<String> {
    if stats.total_seconds() > 0.0 {
        vec![
            format!("construction {}", phase_breakdown(stats)),
            format!(
                "built with:          {} thread(s), {} batches, {} repruned",
                stats.threads, stats.parallel_batches, stats.repruned
            ),
        ]
    } else {
        vec![
            "construction phases: not recorded (v1 file; rebuild with `pll build` \
             to write a v2 index that persists timings)"
                .to_string(),
        ]
    }
}

fn print_phase_stats(stats: &ConstructionStats) {
    for line in phase_stats_lines(stats) {
        println!("{line}");
    }
}

fn print_answer(s: u32, t: u32, d: Option<u64>) {
    println!("{}", answers::distance_line(s, t, d));
}

// The answer-line formats live in `pll_server::protocol::answers`,
// shared with `serve_load --answers-out`, so the smoke tests'
// online-vs-offline byte-diff contract holds by construction.
fn answer_one(index: &AnyIndex, mode: QueryMode, s: u32, t: u32) -> Result<(), String> {
    match mode {
        QueryMode::Distance => {
            let d = index.try_distance(s, t).map_err(|e| e.to_string())?;
            print_answer(s, t, d);
        }
        QueryMode::Path => {
            let p = index.shortest_path(s, t).map_err(|e| e.to_string())?;
            println!("{}", answers::path_line(s, t, p.as_deref()));
        }
        QueryMode::Connected => {
            let c = index.try_connected(s, t).map_err(|e| e.to_string())?;
            println!("{}", answers::connected_line(s, t, c));
        }
    }
    Ok(())
}

fn query(index_path: &str, mode: QueryMode, pairs: &PairSource) -> Result<(), String> {
    let index = open_any(index_path)?;
    match pairs {
        PairSource::Args(pairs) => {
            for &(s, t) in pairs {
                answer_one(&index, mode, s, t)?;
            }
        }
        PairSource::Stdin => {
            // Stream `s t` lines (whitespace separated, `#` comments) so
            // arbitrarily long pair files never materialise in memory —
            // this is what the serve smoke test byte-diffs the online
            // answers against.
            let stdin = std::io::stdin();
            for (lineno, line) in stdin.lock().lines().enumerate() {
                let line = line.map_err(|e| format!("stdin: {e}"))?;
                let Some((s, t)) = parse_pair_line(&line, lineno)? else {
                    continue;
                };
                answer_one(&index, mode, s, t)?;
            }
        }
    }
    Ok(())
}

/// Parses one `s t` line (whitespace separated, `#` comments); `None`
/// for blank/comment lines.
fn parse_pair_line(line: &str, lineno: usize) -> Result<Option<(u32, u32)>, String> {
    let body = line.split('#').next().unwrap_or("").trim();
    if body.is_empty() {
        return Ok(None);
    }
    let mut it = body.split_whitespace();
    let (s, t) = match (it.next(), it.next(), it.next()) {
        (Some(s), Some(t), None) => (s, t),
        _ => return Err(format!("line {}: expected `s t`, got {body:?}", lineno + 1)),
    };
    let s: u32 = s
        .parse()
        .map_err(|e| format!("line {}: bad vertex {s:?}: {e}", lineno + 1))?;
    let t: u32 = t
        .parse()
        .map_err(|e| format!("line {}: bad vertex {t:?}: {e}", lineno + 1))?;
    Ok(Some((s, t)))
}

fn stats(index_path: &str) -> Result<(), String> {
    let index = open_any(index_path)?;
    println!("format:              {}", index.format().name());
    println!(
        "file format:         v{}{}",
        index.format_version(),
        if index.is_zero_copy() {
            " (zero-copy)"
        } else {
            " (parsed)"
        }
    );
    println!("vertices:            {}", index.num_vertices());
    // Family-specific detail: the undirected index additionally reports
    // its bit-parallel roots and label-size distribution; the two-sided
    // variants report IN/OUT entry counts.
    macro_rules! undirected_detail {
        ($idx:expr) => {{
            let ls = $idx.label_size_stats();
            println!("bit-parallel roots:  {}", $idx.bit_parallel().num_roots());
            println!("label entries:       {}", ls.total_entries);
            println!("avg label size:      {:.2}", ls.mean);
            println!("label size min/max:  {} / {}", ls.min, ls.max);
            println!(
                "label size p50/p90/p99: {} / {} / {}",
                ls.percentiles[3], ls.percentiles[5], ls.percentiles[6]
            );
            println!("parents stored:      {}", $idx.has_parents());
        }};
    }
    macro_rules! directed_detail {
        ($idx:expr) => {{
            println!(
                "label entries:       {} IN + {} OUT",
                $idx.labels_in().total_entries(),
                $idx.labels_out().total_entries()
            );
            println!("avg label size:      {:.2}", $idx.avg_label_size());
        }};
    }
    match &index {
        AnyIndex::Undirected(idx) => undirected_detail!(idx),
        AnyIndex::UndirectedView(idx) => undirected_detail!(idx),
        AnyIndex::Directed(idx) => directed_detail!(idx),
        AnyIndex::DirectedView(idx) => directed_detail!(idx),
        _ => println!("avg label size:      {:.2}", index.avg_label_size()),
    }
    println!("index bytes:         {}", index.memory_bytes());
    print_phase_stats(index.stats());
    Ok(())
}

/// `pll stats --addr`: an INFO + STATS round-trip against a running
/// server — the live view (epoch, uptime, overlay delta entries,
/// flatten generation, metric registry) that a file inspection cannot
/// give.
fn stats_remote(addr: &str) -> Result<(), String> {
    let mut client = pll_server::protocol::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let info = client.info().map_err(|e| format!("INFO {addr}: {e}"))?;
    // Inverse of protocol::format_code (the wire carries the code).
    let format = match info.format {
        0 => "undirected",
        1 => "directed",
        2 => "weighted",
        3 => "weighted-directed",
        _ => "unknown",
    };
    println!("server:              {addr}");
    println!("format:              {format}");
    println!("file format:         v{}", info.format_version);
    println!("vertices:            {}", info.num_vertices);
    println!("uptime:              {} s", info.uptime_seconds);
    println!("epoch:               {}", info.epoch);
    println!(
        "dynamic updates:     {}",
        if info.dynamic { "enabled" } else { "disabled" }
    );
    println!("overlay entries:     {}", info.overlay_entries);
    println!("flatten generation:  {}", info.flattens);
    match info.flatten_threshold {
        0 => println!("flatten threshold:   n/a (static server)"),
        u64::MAX => println!("flatten threshold:   never"),
        t => println!("flatten threshold:   {t}"),
    }
    let snapshot = client.stats().map_err(|e| format!("STATS {addr}: {e}"))?;
    println!();
    println!("live metrics ({}):", snapshot.samples.len());
    for sample in &snapshot.samples {
        match &sample.value {
            pll_obs::SampleValue::Counter(v) | pll_obs::SampleValue::Gauge(v) => {
                println!("  {:<40} {v}", sample.name);
            }
            pll_obs::SampleValue::Histogram(h) => {
                println!(
                    "  {:<40} count {} p50 {:.1} µs p99 {:.1} µs",
                    sample.name,
                    h.count,
                    h.percentile_nanos(0.50) as f64 / 1_000.0,
                    h.percentile_nanos(0.99) as f64 / 1_000.0,
                );
            }
        }
    }
    Ok(())
}

fn bench(index_path: &str, queries: usize, seed: u64) -> Result<(), String> {
    let index = open_any(index_path)?;
    let n = index.num_vertices();
    if n == 0 {
        return Err("index is empty".into());
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let pairs: Vec<(u32, u32)> = (0..queries)
        .map(|_| {
            (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            )
        })
        .collect();
    let started = Instant::now();
    let mut sink = 0u64;
    let mut connected = 0usize;
    for &(s, t) in &pairs {
        if let Some(d) = index.distance(s, t) {
            sink = sink.wrapping_add(d);
            connected += 1;
        }
    }
    let total = started.elapsed().as_secs_f64();
    println!(
        "{} queries in {:.3} s ({:.2} µs/query, {:.1}% connected, checksum {sink})",
        queries,
        total,
        total / queries.max(1) as f64 * 1e6,
        100.0 * connected as f64 / queries.max(1) as f64,
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn serve(
    index_path: &str,
    graph_path: Option<&str>,
    addr: &str,
    threads: usize,
    wal_path: Option<&str>,
    snapshot_every: u64,
    max_pending: usize,
    flatten_threshold: Option<u64>,
    metrics_addr: Option<&str>,
    trace_log: Option<&str>,
) -> Result<(), String> {
    let index = Arc::new(open_any(index_path)?);
    eprintln!(
        "index: {} format, v{}{}, {} vertices, {} bytes",
        index.format().name(),
        index.format_version(),
        if index.is_zero_copy() {
            " zero-copy"
        } else {
            ""
        },
        index.num_vertices(),
        index.memory_bytes(),
    );
    let graph = match graph_path {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let g = edgelist::read_text(BufReader::new(file))
                .map_err(|e| format!("cannot parse {path}: {e}"))?;
            eprintln!(
                "graph: {} vertices, {} edges — dynamic updates enabled",
                g.num_vertices(),
                g.num_edges()
            );
            Some(g)
        }
        None => None,
    };
    let wal = wal_path.map(|path| pll_server::WalConfig {
        wal_path: path.into(),
        index_path: index_path.into(),
        snapshot_every,
    });
    let defaults = pll_server::ServerConfig::default();
    let handle = pll_server::serve_dynamic(
        index,
        graph.as_ref(),
        &pll_server::ServerConfig {
            addr: addr.to_string(),
            threads,
            max_pending,
            wal,
            flatten_threshold: flatten_threshold.or(defaults.flatten_threshold),
            metrics_addr: metrics_addr.map(str::to_string),
            trace_log: trace_log.map(std::path::PathBuf::from),
            ..defaults
        },
    )
    .map_err(|e| e.to_string())?;
    if let Some(r) = handle.recovery() {
        // The crash smoke script greps this exact line to verify replay.
        eprintln!(
            "wal recovery: epoch {}, {} batches replayed ({} edges, {} uncommitted), \
             {} rebase edges, {} torn bytes truncated, {:.3} s",
            r.recovered_epoch,
            r.replayed_batches,
            r.replayed_edges,
            r.uncommitted_batches,
            r.rebase_edges,
            r.truncated_bytes,
            r.seconds,
        );
        if let Some(err) = &r.replay_error {
            eprintln!("warning: degraded recovery: {err}");
        }
    }
    // The smoke script greps this exact line to learn the bound port.
    println!("listening on {}", handle.local_addr());
    if let Some(m) = handle.metrics_addr() {
        // The metrics smoke script greps this exact line for the port.
        println!("metrics on http://{m}/metrics");
    }
    eprintln!(
        "{} worker thread(s), UPDATE {}; send the SHUTDOWN opcode (serve_load --shutdown) to stop",
        handle.num_workers(),
        if handle.is_dynamic() {
            "enabled"
        } else {
            "disabled (start with --graph to enable)"
        },
    );
    let summary = handle.join();
    let cache_total = summary.cache_hits + summary.cache_misses;
    eprintln!(
        "served {} queries in {} requests over {:.2} s ({:.0} qps, p50 {:.1} µs, p99 {:.1} µs, \
         {} errors, {} updates, final epoch {}, cache hit rate {:.1}%, {} shed, {} panics)",
        summary.queries,
        summary.requests,
        summary.elapsed_seconds,
        summary.qps,
        summary.p50_us,
        summary.p99_us,
        summary.errors,
        summary.updates,
        summary.final_epoch,
        if cache_total > 0 {
            100.0 * summary.cache_hits as f64 / cache_total as f64
        } else {
            0.0
        },
        summary.sheds,
        summary.panics,
    );
    for (i, w) in summary.workers.iter().enumerate() {
        eprintln!(
            "  worker {i}: {} queries, {} requests, {} connections, {} updates, \
             {} cache hits / {} misses, busy {:.3} s, {} errors",
            w.queries,
            w.requests,
            w.connections,
            w.updates,
            w.cache_hits,
            w.cache_misses,
            w.busy_seconds,
            w.errors
        );
    }
    Ok(())
}

/// `pll update`: apply edge insertions to an opened index through the
/// dynamic overlay (resumed pruned BFSs — no rebuild) and persist the
/// flattened result as a v2 index.
fn update(
    index_path: &str,
    graph_path: &str,
    updates_path: &str,
    output: &str,
    threads: usize,
) -> Result<(), String> {
    let index = open_any(index_path)?;
    let file = File::open(graph_path).map_err(|e| format!("cannot open {graph_path}: {e}"))?;
    let graph: CsrGraph = edgelist::read_text(BufReader::new(file))
        .map_err(|e| format!("cannot parse {graph_path}: {e}"))?;
    let updates = read_pair_file(updates_path)?;
    eprintln!(
        "index: {} vertices; graph: {} edges; applying {} insertions",
        index.num_vertices(),
        graph.num_edges(),
        updates.len()
    );
    let mut dynamic =
        DynamicIndex::new(Arc::new(index), &graph).map_err(|e| format!("cannot wrap: {e}"))?;
    let stats = dynamic
        .apply(&updates)
        .map_err(|e| format!("update failed: {e}"))?;
    eprintln!(
        "applied {} edges ({} skipped) in {:.3} s: {} resumed roots, {} delta entries, \
         {} bit-parallel columns repaired, {} vertices visited",
        stats.edges_applied,
        stats.edges_skipped,
        stats.seconds,
        stats.roots_resumed,
        stats.entries_added,
        stats.bp_columns_repaired,
        stats.vertices_visited,
    );
    let started = Instant::now();
    let flat = dynamic
        .flatten(threads)
        .map_err(|e| format!("flatten failed: {e}"))?;
    eprintln!(
        "flattened to {} label entries in {:.3} s",
        flat.labels().total_entries(),
        started.elapsed().as_secs_f64()
    );
    // Crash-atomic, like `pll build`: a crash mid-write never replaces a
    // pre-existing index at `output` with a truncated file.
    pll_core::wal::atomic_write_with(std::path::Path::new(output), |w| {
        v2::save_v2_index(&flat, w)
    })
    .map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!(
        "wrote {output} (undirected format, v2, epoch {})",
        dynamic.epoch()
    );
    Ok(())
}

/// `pll wal`: dump a server write-ahead log. Stdout gets one `u v` line
/// per journaled edge in replay order (rebase records first, then update
/// batches) — exactly the `<updates.txt>` format of `pll update`, which
/// is how the crash smoke test rebuilds the server's recovered state
/// offline. Stderr gets the journal's header and record statistics.
fn wal_dump(path: &str) -> Result<(), String> {
    use pll_core::wal::{read_wal, WalRecord};
    use std::io::Write;
    let contents = read_wal(std::path::Path::new(path))
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .ok_or_else(|| format!("cannot read {path}: no such file"))?;
    eprintln!(
        "header: fingerprint {:016x}, prev {:016x}, base epoch {}",
        contents.header.fingerprint, contents.header.prev_fingerprint, contents.header.base_epoch
    );
    let (mut updates, mut commits, mut rebases, mut edges) = (0u64, 0u64, 0u64, 0u64);
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for record in &contents.records {
        let es = match record {
            WalRecord::Rebase { edges } => {
                rebases += 1;
                edges
            }
            WalRecord::Update { edges, .. } => {
                updates += 1;
                edges
            }
            WalRecord::Commit { .. } => {
                commits += 1;
                continue;
            }
        };
        edges += es.len() as u64;
        for (u, v) in es {
            writeln!(out, "{u} {v}").map_err(|e| format!("stdout: {e}"))?;
        }
    }
    out.flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "{updates} update records ({commits} committed), {rebases} rebase records, \
         {edges} edges, {} torn bytes truncated",
        contents.truncated_bytes
    );
    Ok(())
}

/// Reads a whole `s t` pair file (used for update batches; query pairs
/// stream instead).
fn read_pair_file(path: &str) -> Result<Vec<(u32, u32)>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut pairs = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{path}: {e}"))?;
        if let Some(pair) = parse_pair_line(&line, lineno).map_err(|e| format!("{path}: {e}"))? {
            pairs.push(pair);
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_report_recorded_timings() {
        let stats = ConstructionStats {
            order_seconds: 0.5,
            relabel_seconds: 0.25,
            pruned_seconds: 1.0,
            flatten_seconds: 0.125,
            threads: 4,
            parallel_batches: 7,
            repruned: 3,
            ..Default::default()
        };
        let lines = phase_stats_lines(&stats);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("order 0.500 s"), "{}", lines[0]);
        assert!(lines[1].contains("4 thread(s), 7 batches, 3 repruned"));
    }

    #[test]
    fn phase_stats_on_v1_point_at_the_v2_rebuild() {
        // A v1 load reports default (all-zero) stats; the fallback line
        // must name the command that persists timings.
        let lines = phase_stats_lines(&ConstructionStats::default());
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("not recorded"), "{}", lines[0]);
        assert!(lines[0].contains("`pll build`"), "{}", lines[0]);
    }
}
