//! Load generator for the `pll serve` query service: fans batched
//! distance queries out over several client connections, measures
//! client-side request latency and throughput, and records the results in
//! `BENCH_serve.json` so successive PRs have a serving-performance
//! trajectory.
//!
//! ```text
//! serve_load --addr host:port
//!            [--queries N]        random pairs (default 20000)
//!            [--pairs FILE]       read `s t` pairs instead (one per line)
//!            [--batch B]          pairs per request (default 64; 1 = single-query ops)
//!            [--connections C]    concurrent client connections (default 4)
//!            [--seed S]           pair-sampling seed (default 0)
//!            [--answers-out FILE] write answers as `s<TAB>t<TAB>d` lines —
//!                                 byte-identical to `pll query <idx> -`
//!            [--out FILE]         JSON report (default: no report)
//!            [--wait-secs W]      retry the first connect for W seconds (default 10)
//!            [--shutdown]         send the SHUTDOWN opcode when done
//! ```
//!
//! The smoke test drives the full loop: build an index, start `pll
//! serve`, fire this binary with `--pairs`/`--answers-out`, byte-diff the
//! online answers against `pll query <idx> -` on the same pairs, and shut
//! the server down.

use pll_server::protocol::Client;
use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    queries: usize,
    pairs_file: Option<String>,
    batch: usize,
    connections: usize,
    seed: u64,
    answers_out: Option<String>,
    out: Option<String>,
    wait_secs: u64,
    shutdown: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: String::new(),
        queries: 20_000,
        pairs_file: None,
        batch: 64,
        connections: 4,
        seed: 0,
        answers_out: None,
        out: None,
        wait_secs: 10,
        shutdown: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i),
            "--queries" => opts.queries = value(&mut i).parse().expect("--queries"),
            "--pairs" => opts.pairs_file = Some(value(&mut i)),
            "--batch" => opts.batch = value(&mut i).parse().expect("--batch"),
            "--connections" => opts.connections = value(&mut i).parse().expect("--connections"),
            "--seed" => opts.seed = value(&mut i).parse().expect("--seed"),
            "--answers-out" => opts.answers_out = Some(value(&mut i)),
            "--out" => opts.out = Some(value(&mut i)),
            "--wait-secs" => opts.wait_secs = value(&mut i).parse().expect("--wait-secs"),
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => {
                eprintln!(
                    "serve_load --addr host:port [--queries N | --pairs FILE] [--batch B] \
                     [--connections C] [--seed S] [--answers-out FILE] [--out FILE] \
                     [--wait-secs W] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if opts.addr.is_empty() {
        eprintln!("--addr is required");
        std::process::exit(2);
    }
    if opts.batch == 0 || opts.connections == 0 {
        eprintln!("--batch and --connections must be positive");
        std::process::exit(2);
    }
    opts
}

/// Retries the first connection while the server is still starting.
fn connect_with_retry(addr: &str, wait: Duration) -> Client {
    let deadline = Instant::now() + wait;
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("cannot connect to {addr} after {wait:?}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn load_pairs(path: &str) -> Vec<(u32, u32)> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut pairs = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.expect("read pairs file");
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        match (it.next(), it.next(), it.next()) {
            (Some(s), Some(t), None) => pairs.push((
                s.parse().unwrap_or_else(|_| {
                    eprintln!("{path}:{}: bad vertex {s:?}", lineno + 1);
                    std::process::exit(1);
                }),
                t.parse().unwrap_or_else(|_| {
                    eprintln!("{path}:{}: bad vertex {t:?}", lineno + 1);
                    std::process::exit(1);
                }),
            )),
            _ => {
                eprintln!("{path}:{}: expected `s t`", lineno + 1);
                std::process::exit(1);
            }
        }
    }
    pairs
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

fn main() {
    let opts = parse_args();

    // One probe connection: waits for the server, fetches metadata.
    let mut probe = connect_with_retry(&opts.addr, Duration::from_secs(opts.wait_secs));
    let info = probe.info().unwrap_or_else(|e| {
        eprintln!("INFO failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "server at {}: {} vertices, format code {}, file format v{}",
        opts.addr, info.num_vertices, info.format, info.format_version
    );
    // The server parks one worker per open connection, so an idle probe
    // held across the load phase would pin a worker (and deadlock a
    // --threads 1 server outright). Drop it; --shutdown reconnects.
    drop(probe);

    let pairs: Vec<(u32, u32)> = match &opts.pairs_file {
        Some(path) => load_pairs(path),
        None => {
            let n = info.num_vertices;
            if n == 0 {
                eprintln!("served index is empty; nothing to query");
                std::process::exit(1);
            }
            let mut rng = pll_graph::Xoshiro256pp::seed_from_u64(opts.seed);
            (0..opts.queries)
                .map(|_| (rng.next_below(n) as u32, rng.next_below(n) as u32))
                .collect()
        }
    };
    if pairs.is_empty() {
        eprintln!("no pairs to send");
        std::process::exit(1);
    }

    // Contiguous chunk per connection so answers reassemble in pair
    // order for --answers-out.
    let connections = opts.connections.min(pairs.len());
    let chunk_len = pairs.len().div_ceil(connections);
    let started = Instant::now();
    let results: Vec<(Vec<u64>, Vec<Option<u64>>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for chunk in pairs.chunks(chunk_len) {
            let addr = &opts.addr;
            let batch = opts.batch;
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap_or_else(|e| {
                    eprintln!("worker connect failed: {e}");
                    std::process::exit(1);
                });
                let mut latencies_ns = Vec::with_capacity(chunk.len() / batch + 1);
                let mut answers = Vec::with_capacity(chunk.len());
                for request in chunk.chunks(batch) {
                    let t0 = Instant::now();
                    if batch == 1 {
                        let (s, t) = request[0];
                        match client.query(s, t) {
                            Ok(d) => answers.push(d),
                            Err(e) => {
                                eprintln!("query failed: {e}");
                                std::process::exit(1);
                            }
                        }
                    } else {
                        match client.batch(request) {
                            Ok(ds) => answers.extend(ds),
                            Err(e) => {
                                eprintln!("batch failed: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                    latencies_ns.push(t0.elapsed().as_nanos() as u64);
                }
                (latencies_ns, answers)
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("worker"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut answers: Vec<Option<u64>> = Vec::with_capacity(pairs.len());
    for (lat, ans) in results {
        latencies.extend(lat);
        answers.extend(ans);
    }
    latencies.sort_unstable();
    let unreachable = answers.iter().filter(|a| a.is_none()).count();
    let qps = pairs.len() as f64 / elapsed.max(1e-12);
    let (p50, p90, p99, max) = (
        percentile(&latencies, 0.50) as f64 / 1_000.0,
        percentile(&latencies, 0.90) as f64 / 1_000.0,
        percentile(&latencies, 0.99) as f64 / 1_000.0,
        latencies.last().copied().unwrap_or(0) as f64 / 1_000.0,
    );
    eprintln!(
        "{} queries ({} requests, batch {}) over {} connection(s) in {:.3} s: \
         {:.0} qps, request p50 {:.1} µs / p90 {:.1} µs / p99 {:.1} µs / max {:.1} µs, \
         {} unreachable",
        pairs.len(),
        latencies.len(),
        opts.batch,
        connections,
        elapsed,
        qps,
        p50,
        p90,
        p99,
        max,
        unreachable,
    );

    if let Some(path) = &opts.answers_out {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        }));
        for (&(s, t), d) in pairs.iter().zip(&answers) {
            match d {
                Some(d) => writeln!(out, "{s}\t{t}\t{d}").expect("write answers"),
                None => writeln!(out, "{s}\t{t}\tunreachable").expect("write answers"),
            }
        }
        out.flush().expect("flush answers");
        eprintln!("answers written to {path}");
    }

    if let Some(path) = &opts.out {
        let timestamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let json = format!(
            "{{\n  \"timestamp_unix\": {timestamp},\n  \"addr\": \"{}\",\n  \
             \"num_vertices\": {},\n  \"format_code\": {},\n  \"format_version\": {},\n  \
             \"queries\": {},\n  \"requests\": {},\n  \"batch\": {},\n  \
             \"connections\": {connections},\n  \"elapsed_seconds\": {elapsed:.6},\n  \
             \"qps\": {qps:.1},\n  \"request_latency_us\": {{\n    \"p50\": {p50:.2},\n    \
             \"p90\": {p90:.2},\n    \"p99\": {p99:.2},\n    \"max\": {max:.2}\n  }},\n  \
             \"unreachable\": {unreachable}\n}}\n",
            opts.addr,
            info.num_vertices,
            info.format,
            info.format_version,
            pairs.len(),
            latencies.len(),
            opts.batch,
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("report written to {path}");
    }

    if opts.shutdown {
        let mut control = connect_with_retry(&opts.addr, Duration::from_secs(opts.wait_secs));
        match control.shutdown_server() {
            Ok(()) => eprintln!("server shutdown requested"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
