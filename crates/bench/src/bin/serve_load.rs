//! Load generator for the `pll serve` query service: fans distance /
//! path / connectivity queries out over several client connections —
//! optionally interleaved with `UPDATE` batches from a concurrent
//! updater connection (the *update-mix* workload) — measures
//! client-side request latency and throughput, and records the results
//! in `BENCH_serve.json` so successive PRs have a serving-performance
//! trajectory.
//!
//! ```text
//! serve_load --addr host:port
//!            [--op distance|path|connected]  per-pair operation (default distance)
//!            [--queries N]        random pairs (default 20000)
//!            [--pairs FILE]       read `s t` pairs instead (one per line)
//!            [--batch B]          pairs per request (default 64; 1 = single-query
//!                                 ops; PATH/CONNECTED are always per-pair)
//!            [--connections C]    concurrent client connections (default 4)
//!            [--seed S]           pair-sampling seed (default 0)
//!            [--updates FILE]     apply `u v` edge insertions concurrently with
//!                                 the query load (update-mix workload)
//!            [--update-batch U]   edges per UPDATE frame (default 16)
//!            [--answers-out FILE] write answers as `pll query` would print them —
//!                                 byte-identical to the offline path
//!            [--out FILE]         JSON report (default: no report)
//!            [--wait-secs W]      retry the first connect for W seconds (default 10)
//!            [--retry]            reconnect-and-retry shed (STATUS_BUSY) and failed
//!                                 requests with capped jittered exponential backoff
//!            [--shutdown]         send the SHUTDOWN opcode when done
//! ```
//!
//! The smoke tests drive the full loop: build an index, start `pll
//! serve`, fire this binary with `--pairs`/`--answers-out`, byte-diff
//! the online answers against `pll query <idx> [--path|--connected] -`
//! on the same pairs, and shut the server down. With `--updates` the
//! final `INFO` epoch is printed (`epoch E0 -> E1`) so hot-swaps are
//! observable — and assertable — from the client side.
//!
//! Every failure path returns a typed [`Fatal`] error (message + exit
//! code) instead of panicking: a smoke run that hits a dead server or a
//! bad pairs file reports *what* failed with a nonzero exit, not a
//! panic backtrace (the panic-hygiene audit enforces this).

use pll_server::protocol::{
    answers, Client, IndexInfo, ProtocolError, RetryClient, RetryPolicy, RetryStats, UpdateAck,
};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// A fatal run failure: the message printed to stderr and the process
/// exit code (2 for usage errors, 1 for everything else).
struct Fatal {
    message: String,
    code: u8,
}

impl Fatal {
    fn new(message: impl Into<String>) -> Fatal {
        Fatal {
            message: message.into(),
            code: 1,
        }
    }

    fn usage(message: impl Into<String>) -> Fatal {
        Fatal {
            message: message.into(),
            code: 2,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    Distance,
    Path,
    Connected,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Distance => "distance",
            Op::Path => "path",
            Op::Connected => "connected",
        }
    }
}

struct Options {
    addr: String,
    op: Op,
    queries: usize,
    pairs_file: Option<String>,
    batch: usize,
    connections: usize,
    seed: u64,
    updates_file: Option<String>,
    update_batch: usize,
    answers_out: Option<String>,
    out: Option<String>,
    wait_secs: u64,
    shutdown: bool,
    retry: bool,
}

/// A load connection: plain (any failure is fatal, the smoke-test
/// default) or retrying (shed connections and transport errors reconnect
/// with capped jittered exponential backoff — the correct client
/// behaviour against an overloaded or restarting server).
enum LoadClient {
    Plain(Client),
    Retry(Box<RetryClient>),
}

impl LoadClient {
    fn connect(addr: &str, retry: bool, wait: Duration, seed: u64) -> Result<LoadClient, Fatal> {
        if retry {
            // RetryClient connects lazily; its backoff also covers the
            // server still starting up.
            Ok(LoadClient::Retry(Box::new(RetryClient::new(
                addr,
                RetryPolicy {
                    max_attempts: 16,
                    seed,
                    ..RetryPolicy::default()
                },
            ))))
        } else {
            Ok(LoadClient::Plain(connect_with_retry(addr, wait)?))
        }
    }

    fn stats(&self) -> RetryStats {
        match self {
            LoadClient::Plain(_) => RetryStats::default(),
            LoadClient::Retry(c) => c.stats(),
        }
    }

    fn query(&mut self, s: u32, t: u32) -> Result<Option<u64>, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.query(s, t),
            LoadClient::Retry(c) => c.query(s, t),
        }
    }

    fn batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<Option<u64>>, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.batch(pairs),
            LoadClient::Retry(c) => c.batch(pairs),
        }
    }

    fn path(&mut self, s: u32, t: u32) -> Result<Option<Vec<u32>>, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.path(s, t),
            LoadClient::Retry(c) => c.path(s, t),
        }
    }

    fn connected(&mut self, s: u32, t: u32) -> Result<bool, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.connected(s, t),
            LoadClient::Retry(c) => c.connected(s, t),
        }
    }

    fn info(&mut self) -> Result<IndexInfo, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.info(),
            LoadClient::Retry(c) => c.info(),
        }
    }

    /// One STATS round-trip: the server's live metric registry.
    fn metrics_snapshot(&mut self) -> Result<pll_obs::Snapshot, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.stats(),
            LoadClient::Retry(c) => c.metrics_snapshot(),
        }
    }

    fn update(&mut self, edges: &[(u32, u32)]) -> Result<UpdateAck, ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.update(edges),
            LoadClient::Retry(c) => c.update(edges),
        }
    }

    fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        match self {
            LoadClient::Plain(c) => c.shutdown_server(),
            LoadClient::Retry(c) => c.shutdown_server(),
        }
    }
}

/// `value.parse()` with the flag name in the error instead of a panic.
fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, Fatal> {
    value
        .parse()
        .map_err(|_| Fatal::usage(format!("{flag} expects a number, got {value:?}")))
}

fn parse_args() -> Result<Options, Fatal> {
    let mut opts = Options {
        addr: String::new(),
        op: Op::Distance,
        queries: 20_000,
        pairs_file: None,
        batch: 64,
        connections: 4,
        seed: 0,
        updates_file: None,
        update_batch: 16,
        answers_out: None,
        out: None,
        wait_secs: 10,
        shutdown: false,
        retry: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Fatal> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| Fatal::usage(format!("missing value after {}", args[*i - 1])))
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i)?,
            "--op" => {
                opts.op = match value(&mut i)?.as_str() {
                    "distance" => Op::Distance,
                    "path" => Op::Path,
                    "connected" => Op::Connected,
                    other => {
                        return Err(Fatal::usage(format!(
                            "unknown --op {other} (distance|path|connected)"
                        )))
                    }
                }
            }
            "--queries" => opts.queries = parse_num("--queries", &value(&mut i)?)?,
            "--pairs" => opts.pairs_file = Some(value(&mut i)?),
            "--batch" => opts.batch = parse_num("--batch", &value(&mut i)?)?,
            "--connections" => opts.connections = parse_num("--connections", &value(&mut i)?)?,
            "--seed" => opts.seed = parse_num("--seed", &value(&mut i)?)?,
            "--updates" => opts.updates_file = Some(value(&mut i)?),
            "--update-batch" => opts.update_batch = parse_num("--update-batch", &value(&mut i)?)?,
            "--answers-out" => opts.answers_out = Some(value(&mut i)?),
            "--out" => opts.out = Some(value(&mut i)?),
            "--wait-secs" => opts.wait_secs = parse_num("--wait-secs", &value(&mut i)?)?,
            "--shutdown" => opts.shutdown = true,
            "--retry" => opts.retry = true,
            "--help" | "-h" => {
                eprintln!(
                    "serve_load --addr host:port [--op distance|path|connected] \
                     [--queries N | --pairs FILE] [--batch B] [--connections C] [--seed S] \
                     [--updates FILE] [--update-batch U] [--answers-out FILE] [--out FILE] \
                     [--wait-secs W] [--retry] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(Fatal::usage(format!("unknown option {other}"))),
        }
        i += 1;
    }
    if opts.addr.is_empty() {
        return Err(Fatal::usage("--addr is required"));
    }
    if opts.batch == 0 || opts.connections == 0 || opts.update_batch == 0 {
        return Err(Fatal::usage(
            "--batch, --connections and --update-batch must be positive",
        ));
    }
    Ok(opts)
}

/// Retries the first connection while the server is still starting.
fn connect_with_retry(addr: &str, wait: Duration) -> Result<Client, Fatal> {
    let deadline = Instant::now() + wait;
    loop {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(Fatal::new(format!(
                        "cannot connect to {addr} after {wait:?}: {e}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn load_pairs(path: &str) -> Result<Vec<(u32, u32)>, Fatal> {
    let file =
        std::fs::File::open(path).map_err(|e| Fatal::new(format!("cannot open {path}: {e}")))?;
    let mut pairs = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| Fatal::new(format!("cannot read {path}: {e}")))?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        match (it.next(), it.next(), it.next()) {
            (Some(s), Some(t), None) => {
                let s = s
                    .parse()
                    .map_err(|_| Fatal::new(format!("{path}:{}: bad vertex {s:?}", lineno + 1)))?;
                let t = t
                    .parse()
                    .map_err(|_| Fatal::new(format!("{path}:{}: bad vertex {t:?}", lineno + 1)))?;
                pairs.push((s, t));
            }
            _ => return Err(Fatal::new(format!("{path}:{}: expected `s t`", lineno + 1))),
        }
    }
    Ok(pairs)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// Answers one chunk of pairs on one connection, formatting each answer
/// exactly as `pll query [--path|--connected]` prints it (so the smoke
/// test byte-diffs online against offline).
fn run_chunk(
    client: &mut LoadClient,
    op: Op,
    batch: usize,
    chunk: &[(u32, u32)],
) -> Result<(Vec<u64>, Vec<String>, usize), Fatal> {
    let mut latencies_ns = Vec::new();
    let mut lines = Vec::with_capacity(chunk.len());
    let mut unreachable = 0usize;
    let fail = |what: &str, e: ProtocolError| Fatal::new(format!("{what} failed: {e}"));
    match op {
        Op::Distance => {
            for request in chunk.chunks(batch) {
                let t0 = Instant::now();
                let ds: Vec<Option<u64>> = if batch == 1 {
                    let (s, t) = request[0];
                    vec![client.query(s, t).map_err(|e| fail("query", e))?]
                } else {
                    client.batch(request).map_err(|e| fail("batch", e))?
                };
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                for (&(s, t), &d) in request.iter().zip(&ds) {
                    unreachable += usize::from(d.is_none());
                    lines.push(answers::distance_line(s, t, d));
                }
            }
        }
        Op::Path => {
            for &(s, t) in chunk {
                let t0 = Instant::now();
                let p = client.path(s, t).map_err(|e| fail("path", e))?;
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                unreachable += usize::from(p.is_none());
                lines.push(answers::path_line(s, t, p.as_deref()));
            }
        }
        Op::Connected => {
            for &(s, t) in chunk {
                let t0 = Instant::now();
                let c = client.connected(s, t).map_err(|e| fail("connected", e))?;
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                unreachable += usize::from(!c);
                lines.push(answers::connected_line(s, t, c));
            }
        }
    }
    Ok((latencies_ns, lines, unreachable))
}

/// One query worker's results: request latencies, formatted answers,
/// unreachable count, retry counters.
type ChunkResult = (Vec<u64>, Vec<String>, usize, RetryStats);

/// Outcome of the concurrent updater connection. Besides the end-to-end
/// batch latency, the server's own per-batch phase split (from the
/// UPDATE ack) is kept: time applying the delta, time flattening on the
/// request path (always 0 under overlay-direct serving — the flatten is
/// amortized in the background), and time publishing the epoch.
struct UpdateOutcome {
    applied: u64,
    skipped: u64,
    batches: usize,
    latencies_ns: Vec<u64>,
    apply_us: Vec<u64>,
    flatten_us: Vec<u64>,
    publish_us: Vec<u64>,
    retry: RetryStats,
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message);
            ExitCode::from(f.code)
        }
    }
}

fn run() -> Result<(), Fatal> {
    let opts = parse_args()?;

    // One probe connection: waits for the server, fetches metadata.
    let wait = Duration::from_secs(opts.wait_secs);
    let mut probe = LoadClient::connect(&opts.addr, opts.retry, wait, opts.seed ^ 0x70b3)?;
    let info = probe
        .info()
        .map_err(|e| Fatal::new(format!("INFO failed: {e}")))?;
    eprintln!(
        "server at {}: {} vertices, format code {}, file format v{}, epoch {}, updates {}",
        opts.addr,
        info.num_vertices,
        info.format,
        info.format_version,
        info.epoch,
        if info.dynamic { "enabled" } else { "disabled" },
    );
    let epoch_start = info.epoch;
    // The server parks one worker per open connection, so an idle probe
    // held across the load phase would pin a worker (and deadlock a
    // --threads 1 server outright). Drop it; later phases reconnect.
    drop(probe);

    let updates: Vec<(u32, u32)> = match &opts.updates_file {
        Some(path) => {
            if !info.dynamic {
                return Err(Fatal::new(
                    "--updates given but the server has UPDATE disabled (serve --graph)",
                ));
            }
            load_pairs(path)?
        }
        None => Vec::new(),
    };

    let pairs: Vec<(u32, u32)> = match &opts.pairs_file {
        Some(path) => load_pairs(path)?,
        None => {
            let n = info.num_vertices;
            if n == 0 {
                return Err(Fatal::new("served index is empty; nothing to query"));
            }
            let mut rng = pll_graph::Xoshiro256pp::seed_from_u64(opts.seed);
            (0..opts.queries)
                .map(|_| (rng.next_below(n) as u32, rng.next_below(n) as u32))
                .collect()
        }
    };
    if pairs.is_empty() {
        return Err(Fatal::new("no pairs to send"));
    }

    // Contiguous chunk per connection so answers reassemble in pair
    // order for --answers-out.
    let connections = opts.connections.min(pairs.len());
    let chunk_len = pairs.len().div_ceil(connections);
    let started = Instant::now();
    let (results, update_outcome): (Vec<ChunkResult>, Option<UpdateOutcome>) =
        std::thread::scope(|scope| -> Result<_, Fatal> {
            // The updater runs concurrently with the query load — this
            // is what makes --updates an update-*mix* workload: every
            // applied batch publishes a new overlay epoch (the flatten
            // is amortized in the background) while the query
            // connections keep streaming.
            let updater = (!updates.is_empty()).then(|| {
                let addr = &opts.addr;
                let update_batch = opts.update_batch;
                let updates = &updates;
                let retry = opts.retry;
                let seed = opts.seed;
                scope.spawn(move || -> Result<UpdateOutcome, Fatal> {
                    let mut client = LoadClient::connect(addr, retry, wait, seed ^ 0x0bad)?;
                    let mut outcome = UpdateOutcome {
                        applied: 0,
                        skipped: 0,
                        batches: 0,
                        latencies_ns: Vec::new(),
                        apply_us: Vec::new(),
                        flatten_us: Vec::new(),
                        publish_us: Vec::new(),
                        retry: RetryStats::default(),
                    };
                    for chunk in updates.chunks(update_batch) {
                        let t0 = Instant::now();
                        let ack = client
                            .update(chunk)
                            .map_err(|e| Fatal::new(format!("update failed: {e}")))?;
                        outcome.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        outcome.applied += u64::from(ack.applied);
                        outcome.skipped += u64::from(ack.skipped);
                        outcome.apply_us.push(u64::from(ack.apply_us));
                        outcome.flatten_us.push(u64::from(ack.flatten_us));
                        outcome.publish_us.push(u64::from(ack.publish_us));
                        outcome.batches += 1;
                    }
                    outcome.retry = client.stats();
                    Ok(outcome)
                })
            });
            let mut joins = Vec::new();
            for (worker, chunk) in pairs.chunks(chunk_len).enumerate() {
                let addr = &opts.addr;
                let batch = opts.batch;
                let op = opts.op;
                let retry = opts.retry;
                // Distinct backoff seed per worker so concurrent retries
                // desynchronise instead of thundering back in lockstep.
                let seed = opts.seed ^ ((worker as u64 + 1) * 0x9e37_79b9);
                joins.push(scope.spawn(move || -> Result<ChunkResult, Fatal> {
                    let mut client = if retry {
                        LoadClient::connect(addr, true, wait, seed)?
                    } else {
                        LoadClient::Plain(
                            Client::connect(addr)
                                .map_err(|e| Fatal::new(format!("worker connect failed: {e}")))?,
                        )
                    };
                    let (lat, ans, unr) = run_chunk(&mut client, op, batch, chunk)?;
                    Ok((lat, ans, unr, client.stats()))
                }));
            }
            let mut results = Vec::with_capacity(joins.len());
            for j in joins {
                results.push(
                    j.join()
                        .map_err(|_| Fatal::new("query worker panicked"))??,
                );
            }
            let update_outcome = match updater {
                Some(j) => Some(j.join().map_err(|_| Fatal::new("updater panicked"))??),
                None => None,
            };
            Ok((results, update_outcome))
        })?;
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut answers: Vec<String> = Vec::with_capacity(pairs.len());
    let mut unreachable = 0usize;
    let mut retry = RetryStats::default();
    for (lat, ans, unr, rs) in results {
        latencies.extend(lat);
        answers.extend(ans);
        unreachable += unr;
        retry.retries += rs.retries;
        retry.busy += rs.busy;
        retry.io += rs.io;
    }
    if let Some(u) = &update_outcome {
        retry.retries += u.retry.retries;
        retry.busy += u.retry.busy;
        retry.io += u.retry.io;
    }
    latencies.sort_unstable();
    let qps = pairs.len() as f64 / elapsed.max(1e-12);
    let (p50, p90, p99, max) = (
        percentile(&latencies, 0.50) as f64 / 1_000.0,
        percentile(&latencies, 0.90) as f64 / 1_000.0,
        percentile(&latencies, 0.99) as f64 / 1_000.0,
        latencies.last().copied().unwrap_or(0) as f64 / 1_000.0,
    );
    eprintln!(
        "{} {} queries ({} requests, batch {}) over {} connection(s) in {:.3} s: \
         {:.0} qps, request p50 {:.1} µs / p90 {:.1} µs / p99 {:.1} µs / max {:.1} µs, \
         {} unreachable",
        pairs.len(),
        opts.op.name(),
        latencies.len(),
        opts.batch,
        connections,
        elapsed,
        qps,
        p50,
        p90,
        p99,
        max,
        unreachable,
    );
    if opts.retry {
        // The crash smoke script greps this line to verify backoff
        // convergence under overload.
        eprintln!(
            "retries: {} ({} busy, {} io)",
            retry.retries, retry.busy, retry.io
        );
    }

    // Re-read the epoch after the load so hot-swaps are observable (and
    // grep-able by the smoke scripts) from the client side, and scrape
    // the server's live metric registry on the same connection.
    let (epoch_end, server_snapshot) = {
        let mut probe = LoadClient::connect(&opts.addr, opts.retry, wait, opts.seed ^ 0xe90c)?;
        let epoch = probe.info().map(|i| i.epoch).unwrap_or(epoch_start);
        let snapshot = probe
            .metrics_snapshot()
            .map_err(|e| Fatal::new(format!("STATS failed: {e}")))?;
        (epoch, snapshot)
    };
    eprintln!("epoch {epoch_start} -> {epoch_end}");
    {
        let v = |name: &str| server_snapshot.value(name).unwrap_or(0);
        // The metrics smoke script greps this line and diffs the served
        // counts against the generator's own totals.
        eprintln!(
            "server metrics: {} queries, {} requests, {} cache hits / {} misses / {} evictions, \
             {} sheds, {} flatten passes, {} slow requests",
            v("pll_queries_total"),
            v("pll_requests_total"),
            v("pll_cache_hits_total"),
            v("pll_cache_misses_total"),
            v("pll_cache_evictions_total"),
            v("pll_sheds_total"),
            v("pll_flatten_passes_total"),
            v("pll_slow_requests_total"),
        );
    }
    let update_json = match &update_outcome {
        Some(u) => {
            let mut lat = u.latencies_ns.clone();
            lat.sort_unstable();
            // Server-side phase split per batch (µs, from the ack).
            let phase = |v: &[u64], name: &str| -> String {
                let mut s = v.to_vec();
                s.sort_unstable();
                format!(
                    "\"{name}\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}}",
                    percentile(&s, 0.50),
                    percentile(&s, 0.99),
                    s.last().copied().unwrap_or(0),
                )
            };
            eprintln!(
                "updates: {} applied, {} skipped in {} batches (batch p50 {:.1} µs, \
                 max {:.1} µs; server p50 apply {} µs, flatten {} µs, publish {} µs)",
                u.applied,
                u.skipped,
                u.batches,
                percentile(&lat, 0.50) as f64 / 1_000.0,
                lat.last().copied().unwrap_or(0) as f64 / 1_000.0,
                {
                    let mut s = u.apply_us.clone();
                    s.sort_unstable();
                    percentile(&s, 0.50)
                },
                {
                    let mut s = u.flatten_us.clone();
                    s.sort_unstable();
                    percentile(&s, 0.50)
                },
                {
                    let mut s = u.publish_us.clone();
                    s.sort_unstable();
                    percentile(&s, 0.50)
                },
            );
            format!(
                ",\n  \"updates\": {{\n    \"edges_applied\": {},\n    \
                 \"edges_skipped\": {},\n    \"batches\": {},\n    \
                 \"batch_latency_us\": {{\n      \"p50\": {:.2},\n      \"p99\": {:.2},\n      \
                 \"max\": {:.2}\n    }},\n    \"server_phase_us\": {{\n      {},\n      {},\n      \
                 {}\n    }}\n  }}",
                u.applied,
                u.skipped,
                u.batches,
                percentile(&lat, 0.50) as f64 / 1_000.0,
                percentile(&lat, 0.99) as f64 / 1_000.0,
                lat.last().copied().unwrap_or(0) as f64 / 1_000.0,
                phase(&u.apply_us, "apply"),
                phase(&u.flatten_us, "flatten"),
                phase(&u.publish_us, "publish"),
            )
        }
        None => String::new(),
    };
    let retry_json = if opts.retry {
        format!(
            ",\n  \"retry\": {{\n    \"retries\": {},\n    \"busy\": {},\n    \
             \"io\": {}\n  }}",
            retry.retries, retry.busy, retry.io,
        )
    } else {
        String::new()
    };
    let metrics_json = {
        let v = |name: &str| server_snapshot.value(name).unwrap_or(0);
        format!(
            ",\n  \"server_metrics\": {{\n    \"queries_total\": {},\n    \
             \"requests_total\": {},\n    \"cache_hits_total\": {},\n    \
             \"cache_misses_total\": {},\n    \"cache_evictions_total\": {},\n    \
             \"sheds_total\": {},\n    \"flatten_passes_total\": {},\n    \
             \"slow_requests_total\": {},\n    \"wal_appends_total\": {},\n    \
             \"epoch\": {}\n  }}",
            v("pll_queries_total"),
            v("pll_requests_total"),
            v("pll_cache_hits_total"),
            v("pll_cache_misses_total"),
            v("pll_cache_evictions_total"),
            v("pll_sheds_total"),
            v("pll_flatten_passes_total"),
            v("pll_slow_requests_total"),
            v("pll_wal_appends_total"),
            v("pll_epoch"),
        )
    };

    if let Some(path) = &opts.answers_out {
        let file = std::fs::File::create(path)
            .map_err(|e| Fatal::new(format!("cannot create {path}: {e}")))?;
        let mut out = std::io::BufWriter::new(file);
        for line in &answers {
            writeln!(out, "{line}").map_err(|e| Fatal::new(format!("cannot write {path}: {e}")))?;
        }
        out.flush()
            .map_err(|e| Fatal::new(format!("cannot write {path}: {e}")))?;
        eprintln!("answers written to {path}");
    }

    if let Some(path) = &opts.out {
        let timestamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let workload = if update_outcome.is_some() {
            "update_mix".to_string()
        } else {
            opts.op.name().to_string()
        };
        let json = format!(
            "{{\n  \"timestamp_unix\": {timestamp},\n  \"workload\": \"{workload}\",\n  \
             \"addr\": \"{}\",\n  \"num_vertices\": {},\n  \"format_code\": {},\n  \
             \"format_version\": {},\n  \"epoch_start\": {epoch_start},\n  \
             \"epoch_end\": {epoch_end},\n  \"queries\": {},\n  \"requests\": {},\n  \
             \"batch\": {},\n  \"connections\": {connections},\n  \
             \"elapsed_seconds\": {elapsed:.6},\n  \"qps\": {qps:.1},\n  \
             \"request_latency_us\": {{\n    \"p50\": {p50:.2},\n    \"p90\": {p90:.2},\n    \
             \"p99\": {p99:.2},\n    \"max\": {max:.2}\n  }},\n  \
             \"unreachable\": {unreachable}{update_json}{retry_json}{metrics_json}\n}}\n",
            opts.addr,
            info.num_vertices,
            info.format,
            info.format_version,
            pairs.len(),
            latencies.len(),
            opts.batch,
        );
        std::fs::write(path, json).map_err(|e| Fatal::new(format!("cannot write {path}: {e}")))?;
        eprintln!("report written to {path}");
    }

    if opts.shutdown {
        let mut control = LoadClient::connect(&opts.addr, opts.retry, wait, opts.seed ^ 0xd1e)?;
        control
            .shutdown_server()
            .map_err(|e| Fatal::new(format!("shutdown failed: {e}")))?;
        eprintln!("server shutdown requested");
    }
    Ok(())
}
