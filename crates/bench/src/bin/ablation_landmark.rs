//! Theorem 4.3 ablation — landmark coverage versus PLL label size.
//!
//! Theorem 4.3: if the standard landmark method with `k` landmarks answers
//! `(1 − ε)` of pairs exactly, then PLL's average label size is
//! `O(k + εn)`. This harness measures both sides on social-network
//! stand-ins for several `k` and prints the ratio of the measured label
//! size to the `k + εn` bound.
//!
//! ```text
//! cargo run --release -p pll-bench --bin ablation_landmark [-- --scale-mult k]
//! ```

use pll_baselines::{LandmarkIndex, LandmarkSelection};
use pll_bench::{load_dataset, HarnessConfig};
use pll_core::{IndexBuilder, OrderingStrategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "{:<11} {:>6} {:>12} {:>10} {:>12} {:>12}",
        "Dataset", "k", "1-eps", "k+eps*n", "PLL LN", "LN/bound"
    );
    for name in ["Epinions", "Slashdot", "WikiTalk"] {
        let spec = pll_datasets::by_name(name).unwrap();
        if !cfg.selected(spec) {
            continue;
        }
        let g = load_dataset(spec, cfg.scale_for(spec));
        let n = g.num_vertices();

        // PLL label size (no bit-parallel, Degree order = landmark order).
        let index = IndexBuilder::new()
            .ordering(OrderingStrategy::Degree)
            .bit_parallel_roots(0)
            .build(&g)
            .expect("construction");
        let ln = index.avg_label_size();

        for k in [4usize, 16, 64, 256] {
            let lm = LandmarkIndex::build(&g, k, LandmarkSelection::Degree, 0);
            let eval = lm.evaluate(&g, 20_000, spec.seed ^ 0xA43);
            let coverage = eval.exact_fraction();
            let eps = 1.0 - coverage;
            let bound = k as f64 + eps * n as f64;
            println!(
                "{:<11} {:>6} {:>12.4} {:>10.0} {:>12.1} {:>12.3}",
                name,
                k,
                coverage,
                bound,
                ln,
                ln / bound,
            );
        }
    }
    println!();
    println!(
        "theorem shape: LN/bound stays below a small constant for every k — \
         the measured label size is dominated by k + eps*n, so the better the \
         landmarks cover pairs, the smaller the pruned labels (Theorem 4.3)."
    );
}
