//! Theorem 4.4 ablation — pruned landmark labeling on low-treewidth
//! graphs: average label size under the Degree order versus the
//! centroid-decomposition order of the theorem's proof sketch, against the
//! `O(w log n)` bound.
//!
//! ```text
//! cargo run --release -p pll-bench --bin ablation_treewidth
//! ```

use pll_core::{IndexBuilder, OrderingStrategy};
use pll_graph::{gen, CsrGraph};
use pll_treedecomp::{centroid_order, min_degree_order, TreeDecomposition};

fn label_size(g: &CsrGraph, strategy: OrderingStrategy) -> f64 {
    IndexBuilder::new()
        .ordering(strategy)
        .bit_parallel_roots(0)
        .build(g)
        .expect("construction")
        .avg_label_size()
}

fn main() {
    println!(
        "{:<22} {:>6} {:>6} {:>7} {:>12} {:>14} {:>12}",
        "Graph", "n", "width", "w·log n", "Degree LN", "Centroid LN", "bound ratio"
    );
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("path(255)", gen::path(255).unwrap()),
        ("cycle(256)", gen::cycle(256).unwrap()),
        ("balanced_tree(2,9)", gen::balanced_tree(2, 9).unwrap()),
        ("caterpillar(100,4)", gen::caterpillar(100, 4).unwrap()),
        ("random_tree(800)", gen::random_tree(800, 7).unwrap()),
        ("grid(16,16)", gen::grid(16, 16).unwrap()),
        ("grid(8,64)", gen::grid(8, 64).unwrap()),
    ];
    for (name, g) in cases {
        let n = g.num_vertices();
        let elim = min_degree_order(&g);
        let td = TreeDecomposition::from_elimination(&elim);
        td.validate(&g).expect("valid decomposition");
        let order = centroid_order(&td);

        let degree_ln = label_size(&g, OrderingStrategy::Degree);
        let centroid_ln = label_size(&g, OrderingStrategy::Custom(order));
        let w = elim.width.max(1);
        let bound = w as f64 * (n as f64).log2();
        println!(
            "{:<22} {:>6} {:>6} {:>7.0} {:>12.1} {:>14.1} {:>12.2}",
            name,
            n,
            elim.width,
            bound,
            degree_ln,
            centroid_ln,
            centroid_ln / bound,
        );
    }
    println!();
    println!(
        "theorem shape: the centroid order keeps labels within a small constant \
         of w·log2(n) (Theorem 4.4); the Degree order has no such guarantee on \
         structured graphs (ties, no hubs) and trails it on paths and grids."
    );
}
