//! Figure 4 — pair coverage: the fraction of vertex pairs whose distance
//! is already answered correctly by the labels after the x-th pruned BFS,
//! (a) averaged and (b–d) split by true distance, on the Gnutella,
//! Epinions and Slashdot stand-ins.
//!
//! Ground-truth distances for a fixed pair sample are computed by BFS up
//! front; a `BuildObserver` then probes the partial index at log-spaced
//! checkpoints (the partial 2-hop answer is an upper bound that equals the
//! distance exactly when the pair is covered — Theorem 4.1's invariant).
//!
//! ```text
//! cargo run --release -p pll-bench --bin fig04 [-- --scale-mult k --queries q]
//! ```

use pll_bench::{load_dataset, random_pairs, HarnessConfig};
use pll_core::{BuildObserver, IndexBuilder, OrderingStrategy, PartialIndex, RootStats};
use pll_graph::traversal::bfs::BfsEngine;
use pll_graph::Vertex;

/// Maximum distance bucket reported separately.
const MAX_BUCKET: usize = 8;

/// One checkpoint: (k-th BFS, overall covered fraction, per-distance
/// covered fractions).
type CoverageRow = (usize, f64, Vec<(usize, f64)>);

struct CoverageProbe {
    pairs: Vec<(Vertex, Vertex, u32)>, // s, t, true distance
    checkpoints: Vec<usize>,
    next: usize,
    /// Collected rows: (k, covered fraction overall, per-distance fractions).
    rows: Vec<CoverageRow>,
}

impl CoverageProbe {
    fn sample(&mut self, k: usize, view: &PartialIndex<'_>) {
        let mut covered = 0usize;
        let mut per_total = [0usize; MAX_BUCKET + 1];
        let mut per_covered = [0usize; MAX_BUCKET + 1];
        for &(s, t, d) in &self.pairs {
            let bucket = (d as usize).min(MAX_BUCKET);
            per_total[bucket] += 1;
            if view.distance(s, t) == Some(d) {
                covered += 1;
                per_covered[bucket] += 1;
            }
        }
        let frac = covered as f64 / self.pairs.len().max(1) as f64;
        let per: Vec<(usize, f64)> = (0..=MAX_BUCKET)
            .filter(|&d| per_total[d] > 0)
            .map(|d| (d, per_covered[d] as f64 / per_total[d] as f64))
            .collect();
        self.rows.push((k, frac, per));
    }
}

impl BuildObserver for CoverageProbe {
    fn after_root(&mut self, k: usize, _stats: &RootStats, view: &PartialIndex<'_>) {
        if self.next < self.checkpoints.len() && k == self.checkpoints[self.next] {
            self.sample(k, view);
            self.next += 1;
        }
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    for name in ["Gnutella", "Epinions", "Slashdot"] {
        let spec = pll_datasets::by_name(name).unwrap();
        if !cfg.selected(spec) {
            continue;
        }
        let g = load_dataset(spec, cfg.scale_for(spec));
        let n = g.num_vertices();

        // Fixed pair sample with BFS ground truth (connected pairs only,
        // like the paper's random-pair methodology).
        let raw = random_pairs(n, cfg.queries.clamp(2_000, 20_000), spec.seed ^ 0xF04);
        let mut engine = BfsEngine::new(n);
        let pairs: Vec<(Vertex, Vertex, u32)> = raw
            .into_iter()
            .filter_map(|(s, t)| engine.distance(&g, s, t).map(|d| (s, t, d)))
            .collect();
        eprintln!("[{name}] {} connected sample pairs", pairs.len());

        let mut probe = CoverageProbe {
            pairs,
            checkpoints: pll_bench::log_checkpoints(n),
            next: 0,
            rows: Vec::new(),
        };
        IndexBuilder::new()
            .ordering(OrderingStrategy::Degree)
            .bit_parallel_roots(0)
            .build_with_observer(&g, &mut probe)
            .expect("construction");

        println!("# Fig 4a: {name} (x-th BFS, covered fraction)");
        for (k, frac, _) in &probe.rows {
            println!("{name}\tcovered\t{k}\t{frac:.4}");
        }
        println!("# Fig 4b-d: {name} (x-th BFS, distance, covered fraction)");
        for (k, _, per) in &probe.rows {
            for (d, frac) in per {
                println!("{name}\tcovered-at-d\t{k}\t{d}\t{frac:.4}");
            }
        }
        println!();
    }
    println!(
        "paper shape: coverage climbs steeply within the first tens of BFSs; \
         distant pairs (d >= 4) are covered far earlier than close pairs \
         (d = 2, 3), mirroring landmark-method precision."
    );
}
