//! Table 1 — summary of indexing time and query time for each method on
//! representative networks (the paper lists the two largest networks per
//! previous method plus PLL's headline results).
//!
//! Our version runs every method on one small and one mid-size stand-in
//! and prints the same "Method / Network / |V| / |E| / Indexing / Query"
//! rows, demonstrating the headline gap: PLL indexes orders of magnitude
//! faster at comparable query time.
//!
//! ```text
//! cargo run --release -p pll-bench --bin table01 [-- --scale-mult k --queries q]
//! ```

use pll_baselines::{CanonicalHubLabeling, ContractionHierarchy};
use pll_bench::{
    fmt_count, fmt_query_time, fmt_secs, load_dataset, measure_avg_query_seconds, random_pairs,
    time, HarnessConfig,
};
use pll_core::{IndexBuilder, OrderingStrategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    let mut rows: Vec<[String; 6]> = Vec::new();

    // The comparison pair: a small computer network and a mid-size social
    // network (mirrors the paper's per-method "two largest handled").
    let specs = [
        pll_datasets::by_name("Gnutella").unwrap(),
        pll_datasets::by_name("Epinions").unwrap(),
        pll_datasets::by_name("Slashdot").unwrap(),
    ];

    for spec in specs.iter().filter(|s| cfg.selected(s)) {
        let g = load_dataset(spec, cfg.scale_for(spec));
        let n = g.num_vertices();
        let m = g.num_edges();
        let pairs = random_pairs(n, cfg.queries, spec.seed);
        let nv = fmt_count(n);
        let ne = fmt_count(m);

        // HHL stand-in.
        let order = pll_core::order::compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let (chl, hhl_it) = time(|| CanonicalHubLabeling::build(&g, &order));
        let (hhl_qt, _) = measure_avg_query_seconds(&pairs, |s, t| chl.distance(s, t));
        rows.push([
            "HHL*".into(),
            format!("{} ({})", spec.name, spec.class.label()),
            nv.clone(),
            ne.clone(),
            fmt_secs(hhl_it),
            fmt_query_time(hhl_qt),
        ]);

        // TD stand-in.
        match time(|| ContractionHierarchy::build(&g, 200 * m)) {
            (Ok(ch), td_it) => {
                let few = &pairs[..pairs.len().min(2_000)];
                let (td_qt, _) = measure_avg_query_seconds(few, |s, t| ch.distance(s, t));
                rows.push([
                    "TD*".into(),
                    format!("{} ({})", spec.name, spec.class.label()),
                    nv.clone(),
                    ne.clone(),
                    fmt_secs(td_it),
                    fmt_query_time(td_qt),
                ]);
            }
            (Err(_), td_it) => {
                rows.push([
                    "TD*".into(),
                    format!("{} ({})", spec.name, spec.class.label()),
                    nv.clone(),
                    ne.clone(),
                    format!("DNF after {}", fmt_secs(td_it)),
                    "-".into(),
                ]);
            }
        }

        // PLL.
        let (index, pll_it) = time(|| {
            IndexBuilder::new()
                .bit_parallel_roots(spec.bp_roots)
                .build(&g)
                .unwrap()
        });
        let (pll_qt, _) = measure_avg_query_seconds(&pairs, |s, t| index.distance(s, t));
        rows.push([
            "PLL".into(),
            format!("{} ({})", spec.name, spec.class.label()),
            nv,
            ne,
            fmt_secs(pll_it),
            fmt_query_time(pll_qt),
        ]);
    }

    println!();
    println!("Table 1: summary of indexing and query times per method");
    println!(
        "{:<6} {:<22} {:>8} {:>8} {:>16} {:>10}",
        "Method", "Network", "|V|", "|E|", "Indexing", "Query"
    );
    for r in &rows {
        println!(
            "{:<6} {:<22} {:>8} {:>8} {:>16} {:>10}",
            r[0], r[1], r[2], r[3], r[4], r[5]
        );
    }
    println!();
    println!(
        "paper shape: PLL's indexing column is orders of magnitude below the \
         labeling/decomposition baselines at comparable (µs) query times."
    );
}
