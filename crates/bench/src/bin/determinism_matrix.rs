//! CI determinism check: for one `(variant, threads)` cell of the
//! determinism matrix, build each test graph sequentially and with
//! `--threads k`, serialize both indices, and assert the bytes are
//! identical. The dev container is single-core, so this binary is the
//! piece that proves the batch-parallel commit discipline on a machine
//! with *real* concurrency (the CI runner).
//!
//! ```text
//! determinism_matrix --variant undirected|directed|weighted|weighted-directed
//!                    [--threads k] [--n N]
//! ```
//!
//! Exit status 0 means every graph family × seed produced byte-identical
//! serialized labels; any divergence aborts with a diff summary on
//! stderr and exit status 1. Each cell also asserts that the parallel
//! build really ran on the requested thread count with every
//! construction phase reporting elapsed time — `threads > 1` drives the
//! parallel ordering and label flatten on every variant (and the
//! parallel chunked relabelling on the undirected builder; the variant
//! builders translate arcs sequentially) through the same knob as the
//! pruned searches, so a green cell proves byte-equality *with the
//! parallel Phase 0 and flatten active*.

use pll_bench::{derive_digraph, derive_weighted, derive_weighted_digraph, reference_graphs, time};
use pll_core::{
    serialize, ConstructionStats, DirectedIndexBuilder, IndexBuilder, OrderingStrategy,
    WeightedDirectedIndexBuilder, WeightedIndexBuilder,
};

struct Options {
    variant: String,
    threads: usize,
    n: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        variant: String::new(),
        threads: 4,
        n: 2_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--variant" => opts.variant = value(&mut i),
            "--threads" => opts.threads = value(&mut i).parse().expect("--threads"),
            "--n" => opts.n = value(&mut i).parse().expect("--n"),
            "--help" | "-h" => {
                eprintln!(
                    "determinism_matrix --variant undirected|directed|weighted|weighted-directed \
                     [--threads k] [--n N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if opts.variant.is_empty() {
        eprintln!("--variant is required");
        std::process::exit(2);
    }
    opts
}

fn check(name: &str, threads: usize, seq_bytes: &[u8], par_bytes: &[u8], seq_s: f64, par_s: f64) {
    if seq_bytes != par_bytes {
        let first_diff = seq_bytes
            .iter()
            .zip(par_bytes.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| seq_bytes.len().min(par_bytes.len()));
        eprintln!(
            "DETERMINISM VIOLATION: {name}: threads={threads} serialization diverges from \
             threads=1 ({} vs {} bytes, first difference at byte {first_diff})",
            seq_bytes.len(),
            par_bytes.len(),
        );
        std::process::exit(1);
    }
    eprintln!(
        "ok: {name}: threads={threads} byte-identical to sequential \
         ({} bytes; {seq_s:.2}s seq, {par_s:.2}s par)",
        seq_bytes.len(),
    );
}

/// Asserts the build actually exercised what the matrix cell claims to
/// prove: the requested thread count was used (threads > 1 drives the
/// parallel ordering and flatten — plus the undirected builder's
/// parallel relabelling — through the same knob as the pruned searches),
/// and the per-phase breakdown is populated — a zero phase timing would
/// mean a phase silently skipped its work.
fn check_phases(name: &str, threads: usize, stats: &ConstructionStats) {
    assert_eq!(
        stats.threads, threads,
        "{name}: build did not use the requested {threads} threads"
    );
    for (phase, secs) in [
        ("order", stats.order_seconds),
        ("relabel", stats.relabel_seconds),
        ("search", stats.search_seconds()),
        ("flatten", stats.flatten_seconds),
    ] {
        assert!(
            secs > 0.0,
            "{name}: phase '{phase}' reported no elapsed time — per-phase stats not populated"
        );
    }
}

/// One matrix cell for one graph: build at threads=1 and threads=k via
/// `build`, serialize both via `save`, byte-compare, and assert the
/// parallel build's per-phase stats show the parallel Phase 0 / flatten
/// path was active (`stats` projects each index to its
/// `ConstructionStats`). Shared by every variant arm so the check
/// protocol cannot drift between them.
fn cell<I>(
    name: &str,
    threads: usize,
    build: impl Fn(usize) -> I,
    save: impl Fn(&I, &mut Vec<u8>),
    stats: impl Fn(&I) -> &ConstructionStats,
) {
    let (seq, seq_s) = time(|| build(1));
    let (par, par_s) = time(|| build(threads));
    check_phases(name, 1, stats(&seq));
    check_phases(name, threads, stats(&par));
    let mut seq_bytes = Vec::new();
    let mut par_bytes = Vec::new();
    save(&seq, &mut seq_bytes);
    save(&par, &mut par_bytes);
    check(name, threads, &seq_bytes, &par_bytes, seq_s, par_s);
}

fn main() {
    let opts = parse_args();
    let threads = opts.threads;
    let orderings = [
        ("degree", OrderingStrategy::Degree),
        ("random", OrderingStrategy::Random),
    ];

    for (gname, g) in reference_graphs(opts.n) {
        for (oname, ordering) in &orderings {
            let name = format!("{}/{gname}/{oname}", opts.variant);
            match opts.variant.as_str() {
                "undirected" => {
                    let builder = IndexBuilder::new()
                        .ordering(ordering.clone())
                        .bit_parallel_roots(16);
                    cell(
                        &name,
                        threads,
                        |k| builder.clone().threads(k).build(&g).expect("build"),
                        |i, buf| serialize::save_index(i, buf).expect("serialize"),
                        |i| i.stats(),
                    );
                }
                "directed" => {
                    let dg = derive_digraph(&g, 7);
                    let builder = DirectedIndexBuilder::new().ordering(ordering.clone());
                    cell(
                        &name,
                        threads,
                        |k| builder.clone().threads(k).build(&dg).expect("build"),
                        |i, buf| serialize::save_directed_index(i, buf).expect("serialize"),
                        |i| i.stats(),
                    );
                }
                "weighted" => {
                    let wg = derive_weighted(&g, 7, 16);
                    let builder = WeightedIndexBuilder::new().ordering(ordering.clone());
                    cell(
                        &name,
                        threads,
                        |k| builder.clone().threads(k).build(&wg).expect("build"),
                        |i, buf| serialize::save_weighted_index(i, buf).expect("serialize"),
                        |i| i.stats(),
                    );
                }
                "weighted-directed" => {
                    let wd = derive_weighted_digraph(&g, 7, 16);
                    let builder = WeightedDirectedIndexBuilder::new().ordering(ordering.clone());
                    cell(
                        &name,
                        threads,
                        |k| builder.clone().threads(k).build(&wd).expect("build"),
                        |i, buf| {
                            serialize::save_weighted_directed_index(i, buf).expect("serialize")
                        },
                        |i| i.stats(),
                    );
                }
                other => {
                    eprintln!("unknown variant {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    eprintln!(
        "determinism matrix cell passed: variant={}, threads={threads}",
        opts.variant
    );
}
