//! Table 3 — the main performance comparison: indexing time (IT), index
//! size (IS), query time (QT) and average label size (LN) of pruned
//! landmark labeling on all eleven datasets, against the baselines:
//!
//! * HHL stand-in: canonical hub labeling via full BFS sweeps
//!   (`pll-baselines::canonical_hub`, DESIGN.md §6);
//! * TD stand-in: contraction hierarchies over a min-degree order
//!   (`pll-baselines::ch`, DESIGN.md §6);
//! * BFS: per-query bidirectional BFS.
//!
//! Bit-parallel roots follow the paper: 16 for the smaller five datasets,
//! 64 for the larger six. Baselines whose estimated cost explodes are
//! reported as DNF, like the paper.
//!
//! ```text
//! cargo run --release -p pll-bench --bin table03 [-- --scale-mult k --queries q --full]
//! ```

use pll_baselines::{CanonicalHubLabeling, ContractionHierarchy};
use pll_bench::{
    fmt_bytes, fmt_query_time, fmt_secs, load_dataset, measure_avg_query_seconds, random_pairs,
    time, HarnessConfig,
};
use pll_core::{IndexBuilder, OrderingStrategy};
use pll_datasets::DATASETS;

struct Row {
    dataset: String,
    pll: String,
    hhl: String,
    td: String,
    bfs: String,
}

fn main() {
    let cfg = HarnessConfig::from_env();
    // Cost caps for the quadratic baselines (lifted by --full).
    let hhl_cost_cap: u64 = 4_000_000_000; // ~n·m edge traversals
    let ch_shortcut_cap = 200; // shortcuts per original edge

    let mut rows = Vec::new();
    for spec in DATASETS.iter().filter(|d| cfg.selected(d)) {
        let g = load_dataset(spec, cfg.scale_for(spec));
        let n = g.num_vertices();
        let m = g.num_edges();
        let pairs = random_pairs(n, cfg.queries, 0xBEEF ^ spec.seed);

        // --- PLL ---
        let builder = IndexBuilder::new()
            .ordering(OrderingStrategy::Degree)
            .bit_parallel_roots(spec.bp_roots);
        let (index, it) = time(|| builder.build(&g).expect("PLL construction"));
        let (qt, _sink) = measure_avg_query_seconds(&pairs, |s, t| index.distance(s, t));
        let pll_cell = format!(
            "IT {} | IS {} | QT {} | LN {:.0}+{}",
            fmt_secs(it),
            fmt_bytes(index.memory_bytes()),
            fmt_query_time(qt),
            index.avg_label_size(),
            spec.bp_roots
        );
        eprintln!("[{}] PLL: {}", spec.name, pll_cell);

        // --- HHL stand-in (canonical hub labeling, unpruned search) ---
        let hhl_cost = n as u64 * m as u64;
        let hhl_cell = if hhl_cost <= hhl_cost_cap || cfg.full {
            let order = pll_core::order::compute_order(&g, &OrderingStrategy::Degree, 0)
                .expect("degree order");
            let (chl, it) = time(|| CanonicalHubLabeling::build(&g, &order));
            let (qt, _s) = measure_avg_query_seconds(&pairs, |s, t| chl.distance(s, t));
            format!(
                "IT {} | IS {} | QT {} | LN {:.0}",
                fmt_secs(it),
                fmt_bytes(chl.memory_bytes()),
                fmt_query_time(qt),
                chl.avg_label_size()
            )
        } else {
            format!("DNF (n·m ≈ {:.1e})", hhl_cost as f64)
        };
        eprintln!("[{}] HHL*: {}", spec.name, hhl_cell);

        // --- TD stand-in (contraction hierarchy) ---
        let td_cell = {
            // Absolute cap too: on the larger stand-ins an uncapped
            // budget would burn hours (and gigabytes) before reporting the
            // inevitable DNF.
            let budget = if cfg.full {
                usize::MAX
            } else {
                (ch_shortcut_cap * m).min(2_000_000)
            };
            let (result, it) = time(|| ContractionHierarchy::build(&g, budget));
            match result {
                Ok(ch) => {
                    // CH queries are slower; sample fewer pairs.
                    let few = &pairs[..pairs.len().min(2_000)];
                    let (qt, _s) = measure_avg_query_seconds(few, |s, t| ch.distance(s, t));
                    format!(
                        "IT {} | IS {} | QT {} | SC {}",
                        fmt_secs(it),
                        fmt_bytes(ch.memory_bytes()),
                        fmt_query_time(qt),
                        ch.num_shortcuts()
                    )
                }
                Err(e) => {
                    eprintln!("[{}] TD*: {e} after {}", spec.name, fmt_secs(it));
                    "DNF (shortcut budget)".to_string()
                }
            }
        };
        eprintln!("[{}] TD*: {}", spec.name, td_cell);

        // --- BFS (bidirectional, few pairs) ---
        let bfs_cell = {
            let few = &pairs[..pairs.len().min(200)];
            let mut engine = pll_graph::traversal::bfs::BidirBfsEngine::new(n);
            let (qt, _s) = measure_avg_query_seconds(few, |s, t| engine.distance(&g, s, t));
            fmt_query_time(qt)
        };
        eprintln!("[{}] BFS: {}", spec.name, bfs_cell);

        rows.push(Row {
            dataset: spec.name.to_string(),
            pll: pll_cell,
            hhl: hhl_cell,
            td: td_cell,
            bfs: bfs_cell,
        });
    }

    println!();
    println!("Table 3: performance comparison (IT = indexing time, IS = index size,");
    println!("QT = avg query time, LN = avg label entries/vertex normal+bit-parallel,");
    println!("SC = shortcuts; HHL*/TD* are the stand-ins of DESIGN.md §6)");
    println!();
    for row in &rows {
        println!("{}", row.dataset);
        println!("  PLL   {}", row.pll);
        println!("  HHL*  {}", row.hhl);
        println!("  TD*   {}", row.td);
        println!("  BFS   QT {}", row.bfs);
    }
    println!();
    println!(
        "paper shape: PLL indexes orders of magnitude faster than HHL/TD, both of \
         which DNF beyond the smaller datasets; PLL query time stays in the \
         microsecond range while BFS needs milliseconds to seconds."
    );
}
