//! Figure 5 — performance against the number of bit-parallel BFSs `t`
//! (Skitter, Indo, Flickr stand-ins): (a) preprocessing time, (b) query
//! time, (c) average normal-label size, (d) index size.
//!
//! ```text
//! cargo run --release -p pll-bench --bin fig05 [-- --scale-mult k --queries q]
//! ```

use pll_bench::{
    fmt_bytes, fmt_query_time, fmt_secs, load_dataset, measure_avg_query_seconds, random_pairs,
    time, HarnessConfig,
};
use pll_core::{IndexBuilder, OrderingStrategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    let sweep = [0usize, 1, 4, 16, 64, 256, 1024];

    println!(
        "{:<9} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "Dataset", "t", "IT", "QT", "normal LN", "IS"
    );
    for name in ["Skitter", "Indo", "Flickr"] {
        let spec = pll_datasets::by_name(name).unwrap();
        if !cfg.selected(spec) {
            continue;
        }
        let g = load_dataset(spec, cfg.scale_for(spec));
        let pairs = random_pairs(g.num_vertices(), cfg.queries, spec.seed ^ 0xF05);
        for &t in &sweep {
            let builder = IndexBuilder::new()
                .ordering(OrderingStrategy::Degree)
                .bit_parallel_roots(t);
            let (index, it) = time(|| builder.build(&g).expect("construction"));
            let (qt, _s) = measure_avg_query_seconds(&pairs, |s, u| index.distance(s, u));
            println!(
                "{:<9} {:>6} {:>12} {:>10} {:>12.1} {:>10}",
                name,
                t,
                fmt_secs(it),
                fmt_query_time(qt),
                index.avg_label_size(),
                fmt_bytes(index.memory_bytes()),
            );
        }
    }
    println!();
    println!(
        "paper shape: moderate t cuts preprocessing time several-fold and \
         shrinks normal labels and the index; too-large t wastes time on \
         unpruned bit-parallel BFSs. Performance is not too sensitive to t."
    );
}
