//! Figure 3 — effect of pruning and sizes of labels (Skitter, Indo and
//! Flickr stand-ins, no bit-parallel labels):
//!
//! * (a) number of vertices labeled in each pruned BFS (log-spaced roots);
//! * (b) cumulative fraction of all labels created by each point;
//! * (c) distribution of final label sizes (ascending percentile curve).
//!
//! ```text
//! cargo run --release -p pll-bench --bin fig03 [-- --scale-mult k]
//! ```

use pll_bench::{fmt_secs, load_dataset, log_checkpoints, time, HarnessConfig};
use pll_core::{IndexBuilder, OrderingStrategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    let specs = ["Skitter", "Indo", "Flickr"];

    for name in specs {
        let spec = pll_datasets::by_name(name).unwrap();
        if !cfg.selected(spec) {
            continue;
        }
        let g = load_dataset(spec, cfg.scale_for(spec));
        let builder = IndexBuilder::new()
            .ordering(OrderingStrategy::Degree)
            .bit_parallel_roots(0) // the paper disables BP for this figure
            .record_root_stats(true);
        let (index, secs) = time(|| builder.build(&g).expect("construction"));
        eprintln!("[{}] built in {}", name, fmt_secs(secs));
        let stats = index.stats();
        let per_root = stats.per_root.as_ref().expect("per-root stats recorded");

        println!("# Fig 3a: {name} (x-th BFS, labels added)");
        let checkpoints = log_checkpoints(per_root.len());
        for &k in &checkpoints {
            println!("{name}\tlabels\t{k}\t{}", per_root[k - 1].labeled);
        }

        println!("# Fig 3b: {name} (x-th BFS, cumulative fraction of labels)");
        let total: u64 = per_root.iter().map(|r| r.labeled as u64).sum();
        let mut acc = 0u64;
        let mut next_cp = 0usize;
        for (i, r) in per_root.iter().enumerate() {
            acc += r.labeled as u64;
            if next_cp < checkpoints.len() && i + 1 == checkpoints[next_cp] {
                println!(
                    "{name}\tcumulative\t{}\t{:.4}",
                    i + 1,
                    acc as f64 / total.max(1) as f64
                );
                next_cp += 1;
            }
        }

        println!("# Fig 3c: {name} (percentile, label size)");
        let ls = index.label_size_stats();
        let labels = ["p01", "p10", "p25", "p50", "p75", "p90", "p99"];
        for (lbl, v) in labels.iter().zip(ls.percentiles.iter()) {
            println!("{name}\tsize\t{lbl}\t{v}");
        }
        println!("{name}\tsize\tmin\t{}", ls.min);
        println!("{name}\tsize\tmax\t{}", ls.max);
        println!("{name}\tsize\tmean\t{:.1}", ls.mean);
        println!();
    }
    println!(
        "paper shape: (a) labels per BFS fall by orders of magnitude within the \
         first thousands of roots; (b) most labels are created at the very \
         beginning; (c) label sizes are flat across vertices with a short tail."
    );
}
