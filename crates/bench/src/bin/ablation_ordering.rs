//! Ordering-strategy ablation beyond Table 5: construction time and label
//! size for Degree / Closeness / Degeneracy (the reverse-core order that
//! exploits the core–fringe structure directly), without bit-parallel
//! labels, on the smaller five stand-ins. Random is excluded here — its
//! Table 5 DNF behaviour is covered by `table05`.
//!
//! ```text
//! cargo run --release -p pll-bench --bin ablation_ordering [-- --scale-mult k]
//! ```

use pll_bench::{fmt_secs, load_dataset, time, HarnessConfig};
use pll_core::{IndexBuilder, OrderingStrategy};
use pll_datasets::small_five;

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "{:<11} {:>16} {:>16} {:>16}",
        "Dataset", "Degree", "Closeness", "Degeneracy"
    );
    println!(
        "{:<11} {:>16} {:>16} {:>16}",
        "", "LN / IT", "LN / IT", "LN / IT"
    );
    for spec in small_five().filter(|d| cfg.selected(d)) {
        let g = load_dataset(spec, cfg.scale_for(spec));
        let mut cells = Vec::new();
        for strategy in [
            OrderingStrategy::Degree,
            OrderingStrategy::Closeness { samples: 32 },
            OrderingStrategy::Degeneracy,
        ] {
            let builder = IndexBuilder::new()
                .ordering(strategy.clone())
                .bit_parallel_roots(0);
            let (index, secs) = time(|| builder.build(&g).expect("construction"));
            cells.push(format!(
                "{:.0} / {}",
                index.avg_label_size(),
                fmt_secs(secs)
            ));
        }
        println!(
            "{:<11} {:>16} {:>16} {:>16}",
            spec.name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!(
        "shape: Degeneracy tracks Degree closely (both front-load the core); \
         Closeness pays its sampling cost at order time but labels similarly."
    );
}
