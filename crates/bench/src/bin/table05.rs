//! Table 5 — "Average size of a label for each vertex against different
//! vertex ordering strategies" (Random / Degree / Closeness) on the
//! smaller five datasets, without bit-parallel labels.
//!
//! The paper reports DNF for the Random strategy on NotreDame and
//! WikiTalk; this harness reproduces that by aborting any build whose
//! average label size explodes past a budget.
//!
//! ```text
//! cargo run --release -p pll-bench --bin table05 [-- --scale-mult k]
//! ```

use pll_bench::{fmt_secs, load_dataset, time, HarnessConfig};
use pll_core::{IndexBuilder, OrderingStrategy, PllError};
use pll_datasets::small_five;

fn main() {
    let cfg = HarnessConfig::from_env();
    // Degree-ordered labels stay well under the label budget; Random on
    // web-shaped graphs blows through it or the per-build wall-clock
    // budget (the paper's DNF).
    let budget = 4_000.0;
    let time_budget = 300.0;

    println!("Table 5: average label size per vertex by ordering strategy (t = 0)");
    println!(
        "{:<11} {:>12} {:>12} {:>12}",
        "Dataset", "Random", "Degree", "Closeness"
    );
    for spec in small_five().filter(|d| cfg.selected(d)) {
        let g = load_dataset(spec, cfg.scale_for(spec));
        let mut cells = Vec::new();
        for strategy in [
            OrderingStrategy::Random,
            OrderingStrategy::Degree,
            OrderingStrategy::Closeness { samples: 32 },
        ] {
            let builder = IndexBuilder::new()
                .ordering(strategy.clone())
                .bit_parallel_roots(0)
                .abort_if_avg_label_exceeds(budget)
                .abort_after_seconds(time_budget);
            let (result, secs) = time(|| builder.build(&g));
            match result {
                Ok(index) => {
                    eprintln!(
                        "[{}] {}: avg label {:.0} ({})",
                        spec.name,
                        strategy.name(),
                        index.avg_label_size(),
                        fmt_secs(secs)
                    );
                    cells.push(format!("{:.0}", index.avg_label_size()));
                }
                Err(PllError::LabelBudgetExceeded { .. } | PllError::TimeBudgetExceeded { .. }) => {
                    eprintln!(
                        "[{}] {}: DNF (budget exceeded after {})",
                        spec.name,
                        strategy.name(),
                        fmt_secs(secs)
                    );
                    cells.push("DNF".to_string());
                }
                Err(e) => {
                    eprintln!("[{}] {}: error {e}", spec.name, strategy.name());
                    cells.push("ERR".to_string());
                }
            }
        }
        println!(
            "{:<11} {:>12} {:>12} {:>12}",
            spec.name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!(
        "paper shape: Random is an order of magnitude worse than Degree/Closeness \
         and DNFs on web-like graphs; Degree and Closeness are close, Degree \
         slightly ahead (Table 5 of the paper)."
    );
}
