//! Construction-throughput harness: builds the index on synthetic BA and
//! R-MAT graphs over a sweep of thread counts — for any of the four index
//! variants — and emits one JSON record per (variant, graph, threads)
//! triple, so successive PRs have a comparable perf trajectory (see
//! `scripts/bench_construction.sh`).
//!
//! ```text
//! bench_construction [--n N] [--threads 1,2,4,8] [--out FILE] [--bp-roots t]
//!                    [--variants undirected,directed,weighted,weighted-directed]
//! ```
//!
//! Output: a JSON array of
//! `{variant, graph, n, m, threads, seconds, order_secs, relabel_secs,
//! search_secs, flatten_secs, labels_per_vertex, speedup_vs_1}` — the four
//! `*_secs` fields are the builder's per-phase breakdown
//! (`ConstructionStats`), so the Amdahl accounting of the parallel path is
//! visible in the trajectory. The directed/weighted variant graphs are
//! derived deterministically from the same BA/R-MAT bases (seeded arc
//! orientation and weights), so their trajectories are comparable across
//! PRs too.

use pll_bench::{derive_digraph, derive_weighted, derive_weighted_digraph, reference_graphs, time};
use pll_core::{
    ConstructionStats, DirectedIndexBuilder, IndexBuilder, WeightedDirectedIndexBuilder,
    WeightedIndexBuilder,
};
use pll_graph::CsrGraph;
use std::io::Write;

struct Options {
    n: usize,
    threads: Vec<usize>,
    out: String,
    bp_roots: usize,
    variants: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        n: 100_000,
        threads: vec![1, 2, 4, 8],
        out: "BENCH_construction.json".to_string(),
        bp_roots: 16,
        variants: vec!["undirected".to_string()],
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--n" => opts.n = value(&mut i).parse().expect("--n"),
            "--threads" => {
                opts.threads = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads"))
                    .collect();
            }
            "--out" => opts.out = value(&mut i),
            "--bp-roots" => opts.bp_roots = value(&mut i).parse().expect("--bp-roots"),
            "--variants" => {
                opts.variants = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--help" | "-h" => {
                eprintln!(
                    "bench_construction [--n N] [--threads 1,2,4,8] [--out FILE] [--bp-roots t] \
                     [--variants undirected,directed,weighted,weighted-directed]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

/// A variant graph derived once per (variant, base graph) pair, so the
/// thread sweep re-measures only the builds.
enum VariantGraph<'g> {
    Undirected(&'g CsrGraph),
    Directed(pll_graph::CsrDigraph),
    Weighted(pll_graph::wgraph::WeightedGraph),
    WeightedDirected(pll_graph::wdigraph::WeightedDigraph),
}

impl VariantGraph<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            VariantGraph::Undirected(g) => g.num_vertices(),
            VariantGraph::Directed(g) => g.num_vertices(),
            VariantGraph::Weighted(g) => g.num_vertices(),
            VariantGraph::WeightedDirected(g) => g.num_vertices(),
        }
    }

    /// Edge count of the graph actually built (arcs for the directed
    /// variants), so throughput computed from the JSON records uses the
    /// right denominator.
    fn num_edges(&self) -> usize {
        match self {
            VariantGraph::Undirected(g) => g.num_edges(),
            VariantGraph::Directed(g) => g.num_edges(),
            VariantGraph::Weighted(g) => g.num_edges(),
            VariantGraph::WeightedDirected(g) => g.num_edges(),
        }
    }
}

fn prepare(variant: &str, g: &CsrGraph) -> VariantGraph<'static> {
    match variant {
        "directed" => VariantGraph::Directed(derive_digraph(g, 7)),
        "weighted" => VariantGraph::Weighted(derive_weighted(g, 7, 16)),
        "weighted-directed" => VariantGraph::WeightedDirected(derive_weighted_digraph(g, 7, 16)),
        "undirected" => unreachable!("undirected borrows the base graph"),
        other => {
            eprintln!("unknown variant {other}");
            std::process::exit(2);
        }
    }
}

/// One measurement of a variant build: wall-clock seconds, the average
/// label size, and the builder's per-phase timing breakdown.
fn build_once(
    vg: &VariantGraph<'_>,
    threads: usize,
    bp_roots: usize,
) -> (f64, f64, ConstructionStats) {
    match vg {
        VariantGraph::Undirected(g) => {
            let builder = IndexBuilder::new()
                .bit_parallel_roots(bp_roots)
                .threads(threads);
            let (index, seconds) = time(|| builder.build(g).expect("construction"));
            (seconds, index.avg_label_size(), index.stats().clone())
        }
        VariantGraph::Directed(dg) => {
            let builder = DirectedIndexBuilder::new().threads(threads);
            let (index, seconds) = time(|| builder.build(dg).expect("construction"));
            (seconds, index.avg_label_size(), index.stats().clone())
        }
        VariantGraph::Weighted(wg) => {
            let builder = WeightedIndexBuilder::new().threads(threads);
            let (index, seconds) = time(|| builder.build(wg).expect("construction"));
            (seconds, index.avg_label_size(), index.stats().clone())
        }
        VariantGraph::WeightedDirected(wd) => {
            let builder = WeightedDirectedIndexBuilder::new().threads(threads);
            let (index, seconds) = time(|| builder.build(wd).expect("construction"));
            (seconds, index.avg_label_size(), index.stats().clone())
        }
    }
}

fn main() {
    let opts = parse_args();

    // The shared reference graphs (BA + R-MAT; see
    // `pll_bench::reference_graphs`). The variant graphs are derived from
    // the same undirected bases with fixed seeds, so every variant's
    // trajectory keys off the same topology, and the CI determinism
    // matrix proves determinism on exactly these graphs. Short names keep
    // the JSON records stable across PRs.
    let graphs: Vec<(&str, CsrGraph)> = reference_graphs(opts.n)
        .into_iter()
        .map(|(name, g)| {
            (
                if name.starts_with("barabasi_albert") {
                    "barabasi_albert"
                } else {
                    "rmat"
                },
                g,
            )
        })
        .collect();

    let mut records: Vec<String> = Vec::new();
    for variant in &opts.variants {
        for (name, g) in &graphs {
            // Measure the whole sweep first; speedups are computed
            // afterwards against the threads=1 entry wherever it appears
            // in the sweep (JSON null when the sweep has no 1-thread
            // baseline).
            let vg = if variant == "undirected" {
                VariantGraph::Undirected(g)
            } else {
                prepare(variant, g)
            };
            let mut runs: Vec<(usize, f64, f64, ConstructionStats)> = Vec::new();
            for &threads in &opts.threads {
                let (seconds, labels_per_vertex, stats) = build_once(&vg, threads, opts.bp_roots);
                eprintln!(
                    "{variant}/{name}: n={} m={} threads={threads} {seconds:.3}s \
                     (order {:.3}s, relabel {:.3}s, search {:.3}s, flatten {:.3}s; \
                     {labels_per_vertex:.2} labels/vertex)",
                    vg.num_vertices(),
                    vg.num_edges(),
                    stats.order_seconds,
                    stats.relabel_seconds,
                    stats.search_seconds(),
                    stats.flatten_seconds,
                );
                runs.push((threads, seconds, labels_per_vertex, stats));
            }
            let baseline = runs
                .iter()
                .find(|&&(t, _, _, _)| t == 1)
                .map(|&(_, s, _, _)| s);
            for (threads, seconds, labels_per_vertex, stats) in runs {
                let speedup =
                    baseline.map_or("null".to_string(), |b| format!("{:.4}", b / seconds));
                records.push(format!(
                    "  {{\"variant\": \"{variant}\", \"graph\": \"{name}\", \"n\": {}, \
                     \"m\": {}, \"threads\": {threads}, \"seconds\": {seconds:.6}, \
                     \"order_secs\": {:.6}, \"relabel_secs\": {:.6}, \
                     \"search_secs\": {:.6}, \"flatten_secs\": {:.6}, \
                     \"labels_per_vertex\": {labels_per_vertex:.4}, \
                     \"speedup_vs_1\": {speedup}}}",
                    vg.num_vertices(),
                    vg.num_edges(),
                    stats.order_seconds,
                    stats.relabel_seconds,
                    stats.search_seconds(),
                    stats.flatten_seconds,
                ));
            }
        }
    }

    let json = format!("[\n{}\n]\n", records.join(",\n"));
    let mut f = std::fs::File::create(&opts.out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {}", opts.out);
}
