//! Construction-throughput harness: builds the index on synthetic BA and
//! R-MAT graphs over a sweep of thread counts and emits one JSON record
//! per (graph, threads) pair, so successive PRs have a comparable perf
//! trajectory (see `scripts/bench_construction.sh`).
//!
//! ```text
//! bench_construction [--n N] [--threads 1,2,4,8] [--out FILE] [--bp-roots t]
//! ```
//!
//! Output: a JSON array of
//! `{graph, n, m, threads, seconds, labels_per_vertex, speedup_vs_1}`.

use pll_bench::time;
use pll_core::IndexBuilder;
use pll_graph::gen::{self, RmatParams};
use pll_graph::CsrGraph;
use std::io::Write;

struct Options {
    n: usize,
    threads: Vec<usize>,
    out: String,
    bp_roots: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        n: 100_000,
        threads: vec![1, 2, 4, 8],
        out: "BENCH_construction.json".to_string(),
        bp_roots: 16,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--n" => opts.n = value(&mut i).parse().expect("--n"),
            "--threads" => {
                opts.threads = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads"))
                    .collect();
            }
            "--out" => opts.out = value(&mut i),
            "--bp-roots" => opts.bp_roots = value(&mut i).parse().expect("--bp-roots"),
            "--help" | "-h" => {
                eprintln!(
                    "bench_construction [--n N] [--threads 1,2,4,8] [--out FILE] [--bp-roots t]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();

    // R-MAT scale: nearest power of two at or above --n.
    let rmat_scale = (opts.n.max(2) as f64).log2().ceil() as u32;
    let graphs: Vec<(&str, CsrGraph)> = vec![
        (
            "barabasi_albert",
            gen::barabasi_albert(opts.n, 3, 42).expect("BA generator"),
        ),
        (
            "rmat",
            gen::rmat(rmat_scale, 8, RmatParams::GRAPH500, 42).expect("R-MAT generator"),
        ),
    ];

    let mut records: Vec<String> = Vec::new();
    for (name, g) in &graphs {
        // Measure the whole sweep first; speedups are computed afterwards
        // against the threads=1 entry wherever it appears in the sweep
        // (JSON null when the sweep has no 1-thread baseline).
        let mut runs: Vec<(usize, f64, f64)> = Vec::new();
        for &threads in &opts.threads {
            let builder = IndexBuilder::new()
                .bit_parallel_roots(opts.bp_roots)
                .threads(threads);
            let (index, seconds) = time(|| builder.build(g).expect("construction"));
            eprintln!(
                "{name}: n={} m={} threads={threads} {seconds:.3}s ({:.2} labels/vertex)",
                g.num_vertices(),
                g.num_edges(),
                index.avg_label_size(),
            );
            runs.push((threads, seconds, index.avg_label_size()));
        }
        let baseline = runs.iter().find(|&&(t, _, _)| t == 1).map(|&(_, s, _)| s);
        for (threads, seconds, labels_per_vertex) in runs {
            let speedup = baseline.map_or("null".to_string(), |b| format!("{:.4}", b / seconds));
            records.push(format!(
                "  {{\"graph\": \"{name}\", \"n\": {}, \"m\": {}, \"threads\": {threads}, \
                 \"seconds\": {seconds:.6}, \"labels_per_vertex\": {labels_per_vertex:.4}, \
                 \"speedup_vs_1\": {speedup}}}",
                g.num_vertices(),
                g.num_edges(),
            ));
        }
    }

    let json = format!("[\n{}\n]\n", records.join(",\n"));
    let mut f = std::fs::File::create(&opts.out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {}", opts.out);
}
