//! Construction-throughput harness: builds the index on synthetic BA and
//! R-MAT graphs over a sweep of thread counts — for any of the four index
//! variants — and emits one JSON record per (variant, graph, threads)
//! triple, so successive PRs have a comparable perf trajectory (see
//! `scripts/bench_construction.sh`).
//!
//! ```text
//! bench_construction [--n N] [--threads 1,2,4,8] [--out FILE] [--bp-roots t]
//!                    [--variants undirected,directed,weighted,weighted-directed]
//! ```
//!
//! Output: a JSON array of
//! `{variant, graph, n, m, threads, seconds, order_secs, relabel_secs,
//! search_secs, flatten_secs, labels_per_vertex, speedup_vs_1}` — the four
//! `*_secs` fields are the builder's per-phase breakdown
//! (`ConstructionStats`), so the Amdahl accounting of the parallel path is
//! visible in the trajectory. The directed/weighted variant graphs are
//! derived deterministically from the same BA/R-MAT bases (seeded arc
//! orientation and weights), so their trajectories are comparable across
//! PRs too.
//!
//! All failures exit nonzero through a typed [`Fatal`] error instead of
//! panicking (panic-hygiene audit).

use pll_bench::{derive_digraph, derive_weighted, derive_weighted_digraph, reference_graphs, time};
use pll_core::{
    ConstructionStats, DirectedIndexBuilder, IndexBuilder, WeightedDirectedIndexBuilder,
    WeightedIndexBuilder,
};
use pll_graph::CsrGraph;
use std::io::Write;
use std::process::ExitCode;

/// A fatal harness failure: message plus exit code (2 = usage).
struct Fatal {
    message: String,
    code: u8,
}

impl Fatal {
    fn new(message: impl Into<String>) -> Fatal {
        Fatal {
            message: message.into(),
            code: 1,
        }
    }

    fn usage(message: impl Into<String>) -> Fatal {
        Fatal {
            message: message.into(),
            code: 2,
        }
    }
}

struct Options {
    n: usize,
    threads: Vec<usize>,
    out: String,
    bp_roots: usize,
    variants: Vec<String>,
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, Fatal> {
    value
        .parse()
        .map_err(|_| Fatal::usage(format!("{flag} expects a number, got {value:?}")))
}

fn parse_args() -> Result<Options, Fatal> {
    let mut opts = Options {
        n: 100_000,
        threads: vec![1, 2, 4, 8],
        out: "BENCH_construction.json".to_string(),
        bp_roots: 16,
        variants: vec!["undirected".to_string()],
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Fatal> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| Fatal::usage(format!("missing value after {}", args[*i - 1])))
        };
        match args[i].as_str() {
            "--n" => opts.n = parse_num("--n", &value(&mut i)?)?,
            "--threads" => {
                opts.threads = value(&mut i)?
                    .split(',')
                    .map(|s| parse_num("--threads", s.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => opts.out = value(&mut i)?,
            "--bp-roots" => opts.bp_roots = parse_num("--bp-roots", &value(&mut i)?)?,
            "--variants" => {
                opts.variants = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--help" | "-h" => {
                eprintln!(
                    "bench_construction [--n N] [--threads 1,2,4,8] [--out FILE] [--bp-roots t] \
                     [--variants undirected,directed,weighted,weighted-directed]"
                );
                std::process::exit(0);
            }
            other => return Err(Fatal::usage(format!("unknown option {other}"))),
        }
        i += 1;
    }
    Ok(opts)
}

/// A variant graph derived once per (variant, base graph) pair, so the
/// thread sweep re-measures only the builds.
enum VariantGraph<'g> {
    Undirected(&'g CsrGraph),
    Directed(pll_graph::CsrDigraph),
    Weighted(pll_graph::wgraph::WeightedGraph),
    WeightedDirected(pll_graph::wdigraph::WeightedDigraph),
}

impl VariantGraph<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            VariantGraph::Undirected(g) => g.num_vertices(),
            VariantGraph::Directed(g) => g.num_vertices(),
            VariantGraph::Weighted(g) => g.num_vertices(),
            VariantGraph::WeightedDirected(g) => g.num_vertices(),
        }
    }

    /// Edge count of the graph actually built (arcs for the directed
    /// variants), so throughput computed from the JSON records uses the
    /// right denominator.
    fn num_edges(&self) -> usize {
        match self {
            VariantGraph::Undirected(g) => g.num_edges(),
            VariantGraph::Directed(g) => g.num_edges(),
            VariantGraph::Weighted(g) => g.num_edges(),
            VariantGraph::WeightedDirected(g) => g.num_edges(),
        }
    }
}

fn prepare(variant: &str, g: &CsrGraph) -> Result<VariantGraph<'static>, Fatal> {
    match variant {
        "directed" => Ok(VariantGraph::Directed(derive_digraph(g, 7))),
        "weighted" => Ok(VariantGraph::Weighted(derive_weighted(g, 7, 16))),
        "weighted-directed" => Ok(VariantGraph::WeightedDirected(derive_weighted_digraph(
            g, 7, 16,
        ))),
        // "undirected" never reaches prepare(): the caller borrows the
        // base graph directly.
        other => Err(Fatal::usage(format!("unknown variant {other}"))),
    }
}

/// One measurement of a variant build: wall-clock seconds, the average
/// label size, and the builder's per-phase timing breakdown.
fn build_once(
    vg: &VariantGraph<'_>,
    threads: usize,
    bp_roots: usize,
) -> Result<(f64, f64, ConstructionStats), Fatal> {
    let fail = |e: pll_core::PllError| Fatal::new(format!("construction failed: {e}"));
    match vg {
        VariantGraph::Undirected(g) => {
            let builder = IndexBuilder::new()
                .bit_parallel_roots(bp_roots)
                .threads(threads);
            let (index, seconds) = time(|| builder.build(g));
            let index = index.map_err(fail)?;
            Ok((seconds, index.avg_label_size(), index.stats().clone()))
        }
        VariantGraph::Directed(dg) => {
            let builder = DirectedIndexBuilder::new().threads(threads);
            let (index, seconds) = time(|| builder.build(dg));
            let index = index.map_err(fail)?;
            Ok((seconds, index.avg_label_size(), index.stats().clone()))
        }
        VariantGraph::Weighted(wg) => {
            let builder = WeightedIndexBuilder::new().threads(threads);
            let (index, seconds) = time(|| builder.build(wg));
            let index = index.map_err(fail)?;
            Ok((seconds, index.avg_label_size(), index.stats().clone()))
        }
        VariantGraph::WeightedDirected(wd) => {
            let builder = WeightedDirectedIndexBuilder::new().threads(threads);
            let (index, seconds) = time(|| builder.build(wd));
            let index = index.map_err(fail)?;
            Ok((seconds, index.avg_label_size(), index.stats().clone()))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message);
            ExitCode::from(f.code)
        }
    }
}

fn run() -> Result<(), Fatal> {
    let opts = parse_args()?;

    // The shared reference graphs (BA + R-MAT; see
    // `pll_bench::reference_graphs`). The variant graphs are derived from
    // the same undirected bases with fixed seeds, so every variant's
    // trajectory keys off the same topology, and the CI determinism
    // matrix proves determinism on exactly these graphs. Short names keep
    // the JSON records stable across PRs.
    let graphs: Vec<(&str, CsrGraph)> = reference_graphs(opts.n)
        .into_iter()
        .map(|(name, g)| {
            (
                if name.starts_with("barabasi_albert") {
                    "barabasi_albert"
                } else {
                    "rmat"
                },
                g,
            )
        })
        .collect();

    let mut records: Vec<String> = Vec::new();
    for variant in &opts.variants {
        for (name, g) in &graphs {
            // Measure the whole sweep first; speedups are computed
            // afterwards against the threads=1 entry wherever it appears
            // in the sweep (JSON null when the sweep has no 1-thread
            // baseline).
            let vg = if variant == "undirected" {
                VariantGraph::Undirected(g)
            } else {
                prepare(variant, g)?
            };
            let mut runs: Vec<(usize, f64, f64, ConstructionStats)> = Vec::new();
            for &threads in &opts.threads {
                let (seconds, labels_per_vertex, stats) = build_once(&vg, threads, opts.bp_roots)?;
                eprintln!(
                    "{variant}/{name}: n={} m={} threads={threads} {seconds:.3}s \
                     (order {:.3}s, relabel {:.3}s, search {:.3}s, flatten {:.3}s; \
                     {labels_per_vertex:.2} labels/vertex)",
                    vg.num_vertices(),
                    vg.num_edges(),
                    stats.order_seconds,
                    stats.relabel_seconds,
                    stats.search_seconds(),
                    stats.flatten_seconds,
                );
                runs.push((threads, seconds, labels_per_vertex, stats));
            }
            let baseline = runs
                .iter()
                .find(|&&(t, _, _, _)| t == 1)
                .map(|&(_, s, _, _)| s);
            for (threads, seconds, labels_per_vertex, stats) in runs {
                let speedup =
                    baseline.map_or("null".to_string(), |b| format!("{:.4}", b / seconds));
                records.push(format!(
                    "  {{\"variant\": \"{variant}\", \"graph\": \"{name}\", \"n\": {}, \
                     \"m\": {}, \"threads\": {threads}, \"seconds\": {seconds:.6}, \
                     \"order_secs\": {:.6}, \"relabel_secs\": {:.6}, \
                     \"search_secs\": {:.6}, \"flatten_secs\": {:.6}, \
                     \"labels_per_vertex\": {labels_per_vertex:.4}, \
                     \"speedup_vs_1\": {speedup}}}",
                    vg.num_vertices(),
                    vg.num_edges(),
                    stats.order_seconds,
                    stats.relabel_seconds,
                    stats.search_seconds(),
                    stats.flatten_seconds,
                ));
            }
        }
    }

    let json = format!("[\n{}\n]\n", records.join(",\n"));
    let mut f = std::fs::File::create(&opts.out)
        .map_err(|e| Fatal::new(format!("cannot create {}: {e}", opts.out)))?;
    f.write_all(json.as_bytes())
        .map_err(|e| Fatal::new(format!("cannot write {}: {e}", opts.out)))?;
    eprintln!("wrote {}", opts.out);
    Ok(())
}
