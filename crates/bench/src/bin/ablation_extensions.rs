//! §8 extensions ablation — index-size reduction techniques the paper
//! lists as future work, measured against the plain index:
//!
//! * degree-1 fringe peeling (`pll_core::reduction`): label only the core;
//! * delta-varint label compression (`pll_core::compact`).
//!
//! For each dataset stand-in: core fraction, index bytes for
//! plain/reduced/compact, and query time for each representation (all
//! three answer identically; spot-checked here).
//!
//! ```text
//! cargo run --release -p pll-bench --bin ablation_extensions [-- --scale-mult k]
//! ```

use pll_bench::{
    fmt_bytes, fmt_query_time, load_dataset, measure_avg_query_seconds, random_pairs, HarnessConfig,
};
use pll_core::{CompactIndex, IndexBuilder, ReducedPllIndex};

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "{:<11} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "Dataset", "core%", "plain IS", "reduced", "compact", "QT plain", "QT red.", "QT comp."
    );
    for name in ["Gnutella", "Epinions", "WikiTalk", "Indo"] {
        let spec = pll_datasets::by_name(name).unwrap();
        if !cfg.selected(spec) {
            continue;
        }
        let g = load_dataset(spec, cfg.scale_for(spec));
        let builder = IndexBuilder::new().bit_parallel_roots(spec.bp_roots.min(16));

        let plain = builder.build(&g).expect("plain index");
        let reduced = ReducedPllIndex::build(&g, &builder).expect("reduced index");
        let compact = CompactIndex::from_index(&plain);

        let pairs = random_pairs(g.num_vertices(), cfg.queries.min(50_000), spec.seed);
        // All three representations must answer identically.
        for &(s, t) in pairs.iter().take(500) {
            let d = plain.distance(s, t);
            assert_eq!(reduced.distance(s, t), d, "reduced mismatch ({s},{t})");
            assert_eq!(compact.distance(s, t), d, "compact mismatch ({s},{t})");
        }
        let (qt_plain, _) = measure_avg_query_seconds(&pairs, |s, t| plain.distance(s, t));
        let (qt_red, _) = measure_avg_query_seconds(&pairs, |s, t| reduced.distance(s, t));
        let (qt_comp, _) = measure_avg_query_seconds(&pairs, |s, t| compact.distance(s, t));

        let core_frac =
            100.0 * reduced.peeling().core().num_vertices() as f64 / g.num_vertices().max(1) as f64;
        println!(
            "{:<11} {:>6.1}% {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
            spec.name,
            core_frac,
            fmt_bytes(plain.memory_bytes()),
            fmt_bytes(reduced.memory_bytes()),
            fmt_bytes(compact.memory_bytes()),
            fmt_query_time(qt_plain),
            fmt_query_time(qt_red),
            fmt_query_time(qt_comp),
        );
    }
    println!();
    println!(
        "shape: fringe peeling shrinks the labeled core on fringe-heavy graphs \
         and compression roughly halves normal-label bytes, both at a modest \
         query-time cost (§8's index-size reduction directions)."
    );
}
