//! Query-throughput harness: measures ns/query for the weighted index
//! across storage backends × merge kernels × distance-arena widths, and
//! emits one JSON record per combination so successive PRs have a query
//! perf trajectory (see `scripts/bench_query.sh`), the complement of the
//! construction trajectory in `BENCH_construction.json`.
//!
//! ```text
//! bench_query [--n N] [--pairs P] [--iters I] [--out FILE]
//! ```
//!
//! Dimensions:
//! * backend — `owned` (in-memory index), `zero-copy` (v2 file loaded
//!   with one `read` and queried in place) and, when built with the
//!   `mmap` feature, `mmap` (the same v2 file mapped instead of read);
//! * kernel — `scalar`, `branchless`, `unrolled` (the runtime-selected
//!   merge kernels, `PLL_KERNEL`);
//! * dist — `u32` (plain weighted arena) vs `u8` (the Dist8 narrowed
//!   arena + escape sidecar).
//!
//! Output: a JSON array of `{backend, dist, kernel, n, m, queries,
//! ns_per_query, labels_per_vertex, escapes}`. Every combination answers
//! the same pair sample, and a checksum over all answers is asserted
//! identical across the whole matrix — a run that measured kernels that
//! disagree refuses to write the file.
//!
//! All failures exit nonzero through a typed [`Fatal`] error instead of
//! panicking (panic-hygiene audit).

use pll_bench::{derive_weighted, random_pairs, time};
use pll_core::v2::{open_v2_bytes, save_v2_weighted_index_with};
use pll_core::{set_kernel, AnyIndex, KernelKind, WeightedDist8Index, WeightedIndexBuilder};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

/// A fatal harness failure: message plus exit code (2 = usage).
struct Fatal {
    message: String,
    code: u8,
}

impl Fatal {
    fn new(message: impl Into<String>) -> Fatal {
        Fatal {
            message: message.into(),
            code: 1,
        }
    }

    fn usage(message: impl Into<String>) -> Fatal {
        Fatal {
            message: message.into(),
            code: 2,
        }
    }
}

struct Options {
    n: usize,
    pairs: usize,
    iters: usize,
    out: String,
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, Fatal> {
    value
        .parse()
        .map_err(|_| Fatal::usage(format!("{flag} expects a number, got {value:?}")))
}

fn parse_args() -> Result<Options, Fatal> {
    let mut opts = Options {
        n: 50_000,
        pairs: 1024,
        iters: 200_000,
        out: "BENCH_query.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Fatal> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| Fatal::usage(format!("missing value after {}", args[*i - 1])))
        };
        match args[i].as_str() {
            "--n" => opts.n = parse_num("--n", &value(&mut i)?)?,
            "--pairs" => opts.pairs = parse_num("--pairs", &value(&mut i)?)?,
            "--iters" => opts.iters = parse_num("--iters", &value(&mut i)?)?,
            "--out" => opts.out = value(&mut i)?,
            "--help" | "-h" => {
                eprintln!("bench_query [--n N] [--pairs P] [--iters I] [--out FILE]");
                std::process::exit(0);
            }
            other => return Err(Fatal::usage(format!("unknown option {other}"))),
        }
        i += 1;
    }
    Ok(opts)
}

/// Measures one (index, kernel) cell: `iters` queries cycling through
/// the pair sample. Returns (ns/query, answer checksum).
fn measure(
    distance: &dyn Fn(u32, u32) -> Option<u64>,
    pairs: &[(u32, u32)],
    iters: usize,
) -> (f64, u64) {
    // Warm-up pass: touch every label once so the first measured
    // iteration is not a cold-cache outlier.
    let mut checksum = 0u64;
    for &(s, t) in pairs {
        checksum = checksum.wrapping_add(distance(s, t).unwrap_or(u64::MAX));
    }
    let (sum, seconds) = time(|| {
        let mut sum = 0u64;
        for i in 0..iters {
            let (s, t) = pairs[i % pairs.len()];
            sum = sum.wrapping_add(std::hint::black_box(distance(s, t)).unwrap_or(u64::MAX));
        }
        sum
    });
    std::hint::black_box(sum);
    (seconds * 1e9 / iters as f64, checksum)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message);
            ExitCode::from(f.code)
        }
    }
}

fn run() -> Result<(), Fatal> {
    let opts = parse_args()?;
    let g = pll_graph::gen::barabasi_albert(opts.n, 5, 42)
        .map_err(|e| Fatal::new(format!("cannot generate the benchmark graph: {e}")))?;
    // Weights up to 256 push a minority of label distances past 255, so
    // the Dist8 cells exercise the escape sidecar, not just the narrow
    // fast path — while staying under the profitability bound.
    let wg = derive_weighted(&g, 7, 256);
    let pairs = random_pairs(opts.n, opts.pairs, 7);

    eprintln!("building weighted index on BA n={} ...", opts.n);
    let owned_u32 = WeightedIndexBuilder::new()
        .build(&wg)
        .map_err(|e| Fatal::new(format!("index construction failed: {e}")))?;
    let labels_per_vertex = owned_u32.avg_label_size();
    let m = wg.num_edges();
    let owned_u8 = WeightedDist8Index::from_weighted(&owned_u32).ok_or_else(|| {
        Fatal::new("Dist8 narrowing unprofitable on the benchmark index (too many escapes)")
    })?;
    let escapes = owned_u8.escape_count();
    eprintln!(
        "{labels_per_vertex:.1} labels/vertex, {escapes} escaped entries in the Dist8 sidecar"
    );

    // The two v2 files: narrowed (FLAG_DIST8) and forced-u32.
    let dir = std::env::temp_dir().join(format!("pll-bench-query-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| Fatal::new(format!("cannot create {}: {e}", dir.display())))?;
    let mut files: Vec<(&str, std::path::PathBuf)> = Vec::new();
    for (dist, narrow) in [("u32", false), ("u8", true)] {
        let path = dir.join(format!("index-{dist}.pll2"));
        let f = std::fs::File::create(&path)
            .map_err(|e| Fatal::new(format!("cannot create {}: {e}", path.display())))?;
        save_v2_weighted_index_with(&owned_u32, std::io::BufWriter::new(f), narrow)
            .map_err(|e| Fatal::new(format!("cannot save {}: {e}", path.display())))?;
        files.push((dist, path));
    }

    let mut loaded: Vec<AnyIndex> = Vec::new();
    for (dist, path) in &files {
        // "zero-copy": one read into an aligned heap buffer, queried in
        // place (what a registry-less `AlignedBytes::from_file` does
        // without the mmap feature).
        let bytes = std::fs::read(path)
            .map_err(|e| Fatal::new(format!("cannot read {}: {e}", path.display())))?;
        let any = open_v2_bytes(Arc::new(pll_core::AlignedBytes::from_bytes(&bytes)))
            .map_err(|e| Fatal::new(format!("cannot open {}: {e}", path.display())))?;
        match (*dist, &any) {
            ("u8", AnyIndex::WeightedDist8View(_)) | ("u32", AnyIndex::WeightedView(_)) => {}
            _ => {
                return Err(Fatal::new(format!(
                    "{dist} file opened to an unexpected variant"
                )))
            }
        }
        loaded.push(any);
    }
    #[cfg(feature = "mmap")]
    for (_dist, path) in &files {
        loaded.push(
            AnyIndex::open(path)
                .map_err(|e| Fatal::new(format!("cannot mmap {}: {e}", path.display())))?,
        );
    }

    // backend × dist → a distance closure over an index kept alive above.
    type DistanceFn<'a> = Box<dyn Fn(u32, u32) -> Option<u64> + 'a>;
    let mut cells: Vec<(&str, &str, DistanceFn<'_>)> = Vec::new();
    cells.push(("owned", "u32", {
        let idx = &owned_u32;
        Box::new(move |s, t| idx.distance(s, t))
    }));
    cells.push(("owned", "u8", {
        let idx = &owned_u8;
        Box::new(move |s, t| idx.distance(s, t))
    }));
    let dists = ["u32", "u8"];
    for (k, any) in loaded.iter().enumerate() {
        let backend = if k < 2 { "zero-copy" } else { "mmap" };
        cells.push((
            backend,
            dists[k % 2],
            Box::new(move |s, t| any.distance(s, t)),
        ));
    }

    let kernels = [
        KernelKind::Scalar,
        KernelKind::Branchless,
        KernelKind::Unrolled,
    ];
    let mut records: Vec<String> = Vec::new();
    let mut reference: Option<u64> = None;
    for (backend, dist, distance) in &cells {
        for kind in kernels {
            set_kernel(kind);
            let (ns_per_query, checksum) = measure(distance.as_ref(), &pairs, opts.iters);
            // Every cell must answer the whole sample identically —
            // the equivalence suite in miniature, run on every bench.
            match reference {
                None => reference = Some(checksum),
                Some(r) => {
                    if r != checksum {
                        return Err(Fatal::new(format!(
                            "{backend}/{dist}/{} disagrees with the reference answers \
                             (checksum {checksum:#x}, expected {r:#x}); refusing to \
                             write {}",
                            kind.name(),
                            opts.out
                        )));
                    }
                }
            }
            eprintln!(
                "{backend:>9}/{dist}/{:<10} {ns_per_query:8.1} ns/query",
                kind.name()
            );
            records.push(format!(
                "  {{\"backend\": \"{backend}\", \"dist\": \"{dist}\", \"kernel\": \"{}\", \
                 \"n\": {}, \"m\": {m}, \"queries\": {}, \"ns_per_query\": {ns_per_query:.2}, \
                 \"labels_per_vertex\": {labels_per_vertex:.4}, \"escapes\": {escapes}}}",
                kind.name(),
                opts.n,
                opts.iters,
            ));
        }
    }
    set_kernel(KernelKind::Branchless);

    let json = format!("[\n{}\n]\n", records.join(",\n"));
    let mut f = std::fs::File::create(&opts.out)
        .map_err(|e| Fatal::new(format!("cannot create {}: {e}", opts.out)))?;
    f.write_all(json.as_bytes())
        .map_err(|e| Fatal::new(format!("cannot write {}: {e}", opts.out)))?;
    drop(cells);
    drop(loaded);
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("wrote {}", opts.out);
    Ok(())
}
