//! Table 4 — "Datasets": network class, |V| and |E| for the eleven
//! evaluation networks, alongside the synthetic stand-in actually
//! generated at the active scale.
//!
//! ```text
//! cargo run --release -p pll-bench --bin table04 [-- --scale-mult k]
//! ```

use pll_bench::{fmt_count, load_dataset, HarnessConfig};
use pll_datasets::DATASETS;

fn main() {
    let cfg = HarnessConfig::from_env();
    println!("Table 4: Datasets (paper scale vs generated stand-in)");
    println!(
        "{:<11} {:<9} {:>9} {:>9}   {:>6} {:>9} {:>9} {:>8}",
        "Dataset", "Network", "paper|V|", "paper|E|", "scale", "gen|V|", "gen|E|", "avg deg"
    );
    for spec in DATASETS.iter().filter(|d| cfg.selected(d)) {
        let scale = cfg.scale_for(spec);
        let g = load_dataset(spec, scale);
        println!(
            "{:<11} {:<9} {:>9} {:>9}   1/{:<4} {:>9} {:>9} {:>8.1}",
            spec.name,
            spec.class.label(),
            fmt_count(spec.paper_vertices),
            fmt_count(spec.paper_edges),
            scale,
            fmt_count(g.num_vertices()),
            fmt_count(g.num_edges()),
            g.avg_degree(),
        );
    }
    println!();
    println!(
        "note: stand-ins are synthetic models matched by class and density \
         (DESIGN.md §6); scale divides |V| while preserving average degree."
    );
}
