//! Figure 2 — dataset properties: (a, b) log-log degree complementary
//! cumulative distributions; (c, d) distance distributions over sampled
//! random pairs, for the smaller five and larger six datasets.
//!
//! The distance distribution is sampled through a PLL index (exact, and
//! about six orders of magnitude faster than per-pair BFS at this sample
//! count — the paper itself samples 1,000,000 pairs).
//!
//! Series are printed as tab-separated columns ready for plotting.
//!
//! ```text
//! cargo run --release -p pll-bench --bin fig02 [-- --scale-mult k --queries q]
//! ```

use pll_bench::{fmt_secs, load_dataset, random_pairs, time, HarnessConfig};
use pll_core::IndexBuilder;
use pll_datasets::{large_six, small_five, DatasetSpec};
use pll_graph::stats;

fn run_group(title: &str, specs: &[&DatasetSpec], cfg: &HarnessConfig) {
    println!("== {title} ==");
    for spec in specs {
        let g = load_dataset(spec, cfg.scale_for(spec));

        println!(
            "# Fig 2a/2b: degree CCDF of {} (degree, count >= degree)",
            spec.name
        );
        let ccdf = stats::degree_ccdf(&g);
        // Thin very long series to ~40 points for readability.
        let step = (ccdf.len() / 40).max(1);
        for (i, (deg, cnt)) in ccdf.iter().enumerate() {
            if i % step == 0 || i + 1 == ccdf.len() {
                println!("{}\tdeg\t{deg}\t{cnt}", spec.name);
            }
        }

        println!(
            "# Fig 2c/2d: distance distribution of {} (distance, fraction)",
            spec.name
        );
        let (index, secs) = time(|| {
            IndexBuilder::new()
                .bit_parallel_roots(spec.bp_roots)
                .build(&g)
                .expect("construction")
        });
        eprintln!(
            "[{}] index for sampling built in {}",
            spec.name,
            fmt_secs(secs)
        );
        let samples = cfg.queries.clamp(10_000, 1_000_000);
        let pairs = random_pairs(g.num_vertices(), samples, spec.seed ^ 0xF16);
        let mut counts: Vec<usize> = Vec::new();
        let mut connected = 0usize;
        for (s, t) in pairs {
            if let Some(d) = index.distance(s, t) {
                let d = d as usize;
                if counts.len() <= d {
                    counts.resize(d + 1, 0);
                }
                counts[d] += 1;
                connected += 1;
            }
        }
        let mut mean = 0.0;
        for (d, &c) in counts.iter().enumerate() {
            let frac = c as f64 / connected.max(1) as f64;
            mean += d as f64 * frac;
            if c > 0 {
                println!("{}\tdist\t{d}\t{frac:.4}", spec.name);
            }
        }
        println!("{}\tmean-distance\t{mean:.2}", spec.name);
        println!(
            "{}\tconnected-fraction\t{:.4}",
            spec.name,
            connected as f64 / samples as f64
        );
        println!();
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let small: Vec<&DatasetSpec> = small_five().filter(|d| cfg.selected(d)).collect();
    let large: Vec<&DatasetSpec> = large_six().filter(|d| cfg.selected(d)).collect();
    run_group("Figure 2a/2c: smaller five datasets", &small, &cfg);
    run_group("Figure 2b/2d: larger six datasets", &large, &cfg);
    println!(
        "paper shape: CCDFs are straight lines on log-log axes (power laws); \
         distance distributions concentrate on 2-8 (small-world)."
    );
}
