//! Shared harness utilities for the table/figure binaries.
//!
//! Every binary in this crate regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the full index). Common knobs:
//!
//! * `--scale-mult <k>` — multiply every dataset's default scale divisor by
//!   `k` (larger ⇒ smaller graphs ⇒ faster runs);
//! * `--queries <q>` — number of random query pairs for timing (default
//!   100 000; the paper uses 1 000 000);
//! * `--datasets a,b,c` — restrict to named datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pll_datasets::DatasetSpec;
use pll_graph::{CsrGraph, Vertex, Xoshiro256pp};
use std::time::Instant;

/// Parsed command-line options shared by the harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Multiplier on each dataset's default scale divisor.
    pub scale_mult: u32,
    /// Number of random query pairs for query-time measurement.
    pub queries: usize,
    /// Restrict to these dataset names (empty = all the binary covers).
    pub datasets: Vec<String>,
    /// Run expensive baselines even past their cost caps.
    pub full: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale_mult: 1,
            queries: 100_000,
            datasets: Vec::new(),
            full: false,
        }
    }
}

impl HarnessConfig {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn from_env() -> HarnessConfig {
        let mut cfg = HarnessConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value after {}", args[*i - 1]);
                        std::process::exit(2);
                    })
                    .clone()
            };
            match args[i].as_str() {
                "--scale-mult" => {
                    cfg.scale_mult = take_value(&mut i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --scale-mult: {e}");
                        std::process::exit(2);
                    });
                }
                "--queries" => {
                    cfg.queries = take_value(&mut i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --queries: {e}");
                        std::process::exit(2);
                    });
                }
                "--datasets" => {
                    cfg.datasets = take_value(&mut i)
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "--full" => cfg.full = true,
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--scale-mult k] [--queries q] [--datasets a,b,c] [--full]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }

    /// Effective scale divisor for a dataset.
    pub fn scale_for(&self, spec: &DatasetSpec) -> u32 {
        spec.default_scale.saturating_mul(self.scale_mult).max(1)
    }

    /// Whether the dataset is selected by `--datasets` (empty = all).
    pub fn selected(&self, spec: &DatasetSpec) -> bool {
        self.datasets.is_empty()
            || self
                .datasets
                .iter()
                .any(|d| d.eq_ignore_ascii_case(spec.name))
    }
}

/// Wall-clock timing of a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// `count` random vertex pairs over `n` vertices.
pub fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(Vertex, Vertex)> {
    assert!(n > 0, "graph must have vertices");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                rng.next_below(n as u64) as Vertex,
                rng.next_below(n as u64) as Vertex,
            )
        })
        .collect()
}

/// Average seconds per query of `f` over the pairs. A checksum of the
/// answers is accumulated and returned to keep the optimiser honest.
pub fn measure_avg_query_seconds(
    pairs: &[(Vertex, Vertex)],
    mut f: impl FnMut(Vertex, Vertex) -> Option<u32>,
) -> (f64, u64) {
    let start = Instant::now();
    let mut sink = 0u64;
    for &(s, t) in pairs {
        sink = sink.wrapping_add(f(s, t).map_or(u32::MAX, |d| d) as u64);
    }
    let total = start.elapsed().as_secs_f64();
    (total / pairs.len().max(1) as f64, sink)
}

/// Formats a duration like the paper ("61 s", "0.5 s", "15,164 s").
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{} s", group_thousands(secs.round() as u64))
    } else if secs >= 1.0 {
        format!("{secs:.1} s")
    } else if secs >= 1e-3 {
        format!("{:.0} ms", secs * 1e3)
    } else {
        format!("{:.2} ms", secs * 1e3)
    }
}

/// Formats a per-query time like the paper ("0.6 µs", "15.6 µs", "1.2 s").
pub fn fmt_query_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.1} s")
    } else if secs >= 1e-3 {
        format!("{:.1} ms", secs * 1e3)
    } else {
        format!("{:.1} µs", secs * 1e6)
    }
}

/// Formats byte counts ("209 MB", "12 GB").
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.1} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.0} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats counts like Table 4 ("63 K", "2.4 M", "194 M").
pub fn fmt_count(x: usize) -> String {
    if x >= 10_000_000 {
        format!("{:.0} M", x as f64 / 1e6)
    } else if x >= 1_000_000 {
        format!("{:.1} M", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.0} K", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

fn group_thousands(mut x: u64) -> String {
    let mut parts = Vec::new();
    loop {
        if x < 1000 {
            parts.push(x.to_string());
            break;
        }
        parts.push(format!("{:03}", x % 1000));
        x /= 1000;
    }
    parts.reverse();
    parts.join(",")
}

/// Answers a batch of distance queries on `threads` scoped threads (the
/// index is `Sync`; queries are read-only). §4.5 notes that thread-level
/// parallelism composes with the labeling — this utility demonstrates it on
/// the query side and backs the throughput numbers in EXPERIMENTS.md.
pub fn par_distances(
    index: &pll_core::PllIndex,
    pairs: &[(Vertex, Vertex)],
    threads: usize,
) -> Vec<Option<u32>> {
    let threads = threads.max(1);
    let chunk = pairs.len().div_ceil(threads);
    if threads == 1 || pairs.len() < 2 * threads {
        return pairs.iter().map(|&(s, t)| index.distance(s, t)).collect();
    }
    let mut out: Vec<Option<u32>> = vec![None; pairs.len()];
    std::thread::scope(|scope| {
        for (pair_chunk, out_chunk) in pairs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, &(s, t)) in out_chunk.iter_mut().zip(pair_chunk.iter()) {
                    *slot = index.distance(s, t);
                }
            });
        }
    });
    out
}

/// Generates a dataset, printing progress to stderr.
pub fn load_dataset(spec: &DatasetSpec, scale: u32) -> CsrGraph {
    eprintln!(
        "[gen] {} at scale 1/{scale} ({} vertices)…",
        spec.name,
        fmt_count(spec.scaled_vertices(scale))
    );
    let (g, secs) = time(|| spec.generate(scale).expect("dataset generation"));
    eprintln!(
        "[gen] {}: |V| = {}, |E| = {} ({})",
        spec.name,
        fmt_count(g.num_vertices()),
        fmt_count(g.num_edges()),
        fmt_secs(secs)
    );
    g
}

/// The construction-benchmark reference graphs: one scale-free
/// (Barabási–Albert, n vertices, degree 3, seed 42) and one
/// heavy-tailed-but-diffuse (R-MAT at the nearest power-of-two scale at
/// or above `n`, GRAPH500 parameters, seed 42), so both pruning regimes
/// (hub-dominated and diffuse) are exercised. Shared by the perf
/// harness and the CI determinism matrix so the matrix always proves
/// determinism on the graphs the bench measures.
pub fn reference_graphs(n: usize) -> Vec<(String, CsrGraph)> {
    let rmat_scale = (n.max(2) as f64).log2().ceil() as u32;
    vec![
        (
            format!("barabasi_albert(n={n})"),
            pll_graph::gen::barabasi_albert(n, 3, 42).expect("BA generator"),
        ),
        (
            format!("rmat(scale={rmat_scale})"),
            pll_graph::gen::rmat(rmat_scale, 8, pll_graph::gen::RmatParams::GRAPH500, 42)
                .expect("R-MAT generator"),
        ),
    ]
}

/// Derives a simple digraph from an undirected graph by keeping every
/// edge as a forward arc `u -> v` (with `u < v` as the generator emits
/// them) and adding the reverse arc for roughly one edge in four, seeded
/// — the asymmetry makes reachability genuinely directional, which is
/// what the directed index variants must get right. Deterministic in
/// `(g, seed)`.
pub fn derive_digraph(g: &CsrGraph, seed: u64) -> pll_graph::CsrDigraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut arcs: Vec<(Vertex, Vertex)> = Vec::new();
    for (u, v) in g.edges() {
        arcs.push((u, v));
        if rng.next_below(4) == 0 {
            arcs.push((v, u));
        }
    }
    arcs.sort_unstable();
    pll_graph::CsrDigraph::from_edges(g.num_vertices(), &arcs).expect("derived digraph")
}

/// Attaches seeded integer weights in `1..=max_w` to an undirected
/// graph's edges. Deterministic in `(g, seed, max_w)`.
pub fn derive_weighted(g: &CsrGraph, seed: u64, max_w: u32) -> pll_graph::wgraph::WeightedGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let edges: Vec<(Vertex, Vertex, u32)> = g
        .edges()
        .map(|(u, v)| (u, v, rng.next_below(max_w as u64) as u32 + 1))
        .collect();
    pll_graph::wgraph::WeightedGraph::from_edges(g.num_vertices(), &edges)
        .expect("derived weighted graph")
}

/// Combines [`derive_digraph`] and [`derive_weighted`]: directional arcs
/// with seeded weights in `1..=max_w`. Deterministic in
/// `(g, seed, max_w)`.
pub fn derive_weighted_digraph(
    g: &CsrGraph,
    seed: u64,
    max_w: u32,
) -> pll_graph::wdigraph::WeightedDigraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let d = derive_digraph(g, seed);
    let arcs: Vec<(Vertex, Vertex, u32)> = d
        .arcs()
        .map(|(u, v)| (u, v, rng.next_below(max_w as u64) as u32 + 1))
        .collect();
    pll_graph::wdigraph::WeightedDigraph::from_edges(g.num_vertices(), &arcs)
        .expect("derived weighted digraph")
}

/// Log-spaced checkpoints `1, 2, 4, …` up to `max` (inclusive), always
/// ending with `max`.
pub fn log_checkpoints(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut k = 1usize;
    while k < max {
        out.push(k);
        k *= 2;
    }
    if max > 0 {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(15164.0), "15,164 s");
        assert_eq!(fmt_secs(61.4), "61.4 s");
        assert_eq!(fmt_secs(0.5), "500 ms");
        assert_eq!(fmt_query_time(15.6e-6), "15.6 µs");
        assert_eq!(fmt_query_time(1.2), "1.2 s");
        assert_eq!(fmt_bytes(209 * 1024 * 1024), "209 MB");
        assert_eq!(fmt_bytes(12 * 1024 * 1024 * 1024), "12.0 GB");
        assert_eq!(fmt_count(63_000), "63 K");
        assert_eq!(fmt_count(2_400_000), "2.4 M");
        assert_eq!(fmt_count(194_000_000), "194 M");
        assert_eq!(fmt_count(512), "512");
    }

    #[test]
    fn pairs_and_checkpoints() {
        let pairs = random_pairs(100, 50, 3);
        assert_eq!(pairs.len(), 50);
        assert!(pairs.iter().all(|&(s, t)| s < 100 && t < 100));
        assert_eq!(log_checkpoints(10), vec![1, 2, 4, 8, 10]);
        assert_eq!(log_checkpoints(8), vec![1, 2, 4, 8]);
        assert_eq!(log_checkpoints(1), vec![1]);
    }

    #[test]
    fn measure_runs_all_pairs() {
        let pairs = random_pairs(10, 100, 1);
        let (avg, sink) = measure_avg_query_seconds(&pairs, |s, t| Some(s + t));
        assert!(avg >= 0.0);
        assert!(sink > 0);
    }

    #[test]
    fn par_distances_matches_sequential() {
        let g = pll_graph::gen::barabasi_albert(400, 3, 5).unwrap();
        let index = pll_core::IndexBuilder::new()
            .bit_parallel_roots(4)
            .build(&g)
            .unwrap();
        let pairs = random_pairs(400, 500, 9);
        let seq: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| index.distance(s, t)).collect();
        for threads in [1, 2, 4] {
            assert_eq!(par_distances(&index, &pairs, threads), seq);
        }
        // Tiny batch falls back to sequential.
        assert_eq!(par_distances(&index, &pairs[..3], 8), seq[..3].to_vec());
    }

    #[test]
    fn derived_variant_graphs_are_deterministic() {
        let g = pll_graph::gen::barabasi_albert(120, 2, 3).unwrap();
        let d1 = derive_digraph(&g, 7);
        let d2 = derive_digraph(&g, 7);
        assert_eq!(d1.num_edges(), d2.num_edges());
        assert!(d1.num_edges() >= g.num_edges()); // forward arcs all kept
        let w1 = derive_weighted(&g, 7, 16);
        let w2 = derive_weighted(&g, 7, 16);
        for (u, v, w) in w1.edges() {
            assert_eq!(w2.edge_weight(u, v), Some(w));
            assert!((1..=16).contains(&w));
        }
        let wd = derive_weighted_digraph(&g, 7, 16);
        assert_eq!(wd.num_edges(), d1.num_edges());
    }

    #[test]
    fn config_scale() {
        let cfg = HarnessConfig::default();
        let spec = pll_datasets::by_name("Gnutella").unwrap();
        assert_eq!(cfg.scale_for(spec), 8);
        let mut cfg2 = cfg.clone();
        cfg2.scale_mult = 4;
        assert_eq!(cfg2.scale_for(spec), 32);
        assert!(cfg.selected(spec));
        cfg2.datasets = vec!["epinions".into()];
        assert!(!cfg2.selected(spec));
    }
}
