//! Criterion micro-benchmark: index construction time per ordering
//! strategy and against the unpruned canonical construction (the "IT"
//! column of Table 3 in micro form).

use criterion::{criterion_group, criterion_main, Criterion};
use pll_baselines::CanonicalHubLabeling;
use pll_core::{order::compute_order, IndexBuilder, OrderingStrategy};

fn bench_construction(c: &mut Criterion) {
    let spec = pll_datasets::by_name("Epinions").unwrap();
    let g = spec.generate(32).expect("dataset");

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for (label, strategy) in [
        ("degree", OrderingStrategy::Degree),
        ("random", OrderingStrategy::Random),
        ("closeness", OrderingStrategy::Closeness { samples: 16 }),
    ] {
        group.bench_function(format!("pll_{label}"), |b| {
            b.iter(|| {
                let builder = IndexBuilder::new()
                    .ordering(strategy.clone())
                    .bit_parallel_roots(0);
                std::hint::black_box(builder.build(&g).expect("build"))
            })
        });
    }
    group.bench_function("pll_degree_bp16", |b| {
        b.iter(|| {
            let builder = IndexBuilder::new().bit_parallel_roots(16);
            std::hint::black_box(builder.build(&g).expect("build"))
        })
    });
    // The unpruned-search baseline pays the full O(n·m) sweep cost.
    group.bench_function("canonical_hub_degree", |b| {
        let order = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        b.iter(|| std::hint::black_box(CanonicalHubLabeling::build(&g, &order)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_construction
}
criterion_main!(benches);
