//! Criterion micro-benchmark: the merge-join query kernels in isolation
//! (scalar vs branchless vs unrolled, and the Dist8 escape-sidecar
//! variants), plus the end-to-end `distance` path under each runtime
//! kernel selection. The committed trajectory lives in
//! `BENCH_query.json` (see `scripts/bench_query.sh`); this bench is for
//! interactive kernel work.

use criterion::{criterion_group, criterion_main, Criterion};
use pll_core::kernel::{
    merge_query_branchless, merge_query_scalar, merge_query_unrolled,
    merge_query_weighted_branchless, merge_query_weighted_dist8_branchless,
    merge_query_weighted_dist8_scalar, merge_query_weighted_scalar, merge_query_weighted_unrolled,
};
use pll_core::{set_kernel, IndexBuilder, KernelKind};
use pll_graph::Xoshiro256pp;

const RANK_SENTINEL: u32 = u32::MAX;

/// One synthetic sentinel-terminated label: `len` sorted distinct ranks
/// drawn from a space 4× the length (so two labels share ~1/4 of their
/// hubs, like real PLL labels share landmarks).
fn make_label(len: usize, rng: &mut Xoshiro256pp) -> (Vec<u32>, Vec<u8>) {
    let mut ranks: Vec<u32> = Vec::with_capacity(len + 1);
    let mut r = 0u32;
    for _ in 0..len {
        r += 1 + rng.next_below(7) as u32;
        ranks.push(r);
    }
    ranks.push(RANK_SENTINEL);
    let mut dists: Vec<u8> = (0..len).map(|_| 1 + rng.next_below(20) as u8).collect();
    dists.push(u8::MAX);
    (ranks, dists)
}

type LabelPair = ((Vec<u32>, Vec<u8>), (Vec<u32>, Vec<u8>));
type UnweightedKernel = fn(&[u32], &[u8], &[u32], &[u8]) -> u32;
type WeightedKernel = fn(&[u32], &[u32], &[u32], &[u32]) -> u64;

fn label_pairs(count: usize, len: usize, seed: u64) -> Vec<LabelPair> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..count)
        .map(|_| (make_label(len, &mut rng), make_label(len, &mut rng)))
        .collect()
}

fn bench_unweighted_kernels(c: &mut Criterion) {
    let pairs = label_pairs(64, 64, 11);
    let mut group = c.benchmark_group("kernel_unweighted");
    let kernels: [(&str, UnweightedKernel); 3] = [
        ("scalar", merge_query_scalar),
        ("branchless", merge_query_branchless),
        ("unrolled", merge_query_unrolled),
    ];
    for (name, kernel) in kernels {
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let ((ur, ud), (vr, vd)) = &pairs[i % pairs.len()];
                i += 1;
                std::hint::black_box(kernel(ur, ud, vr, vd))
            })
        });
    }
    group.finish();
}

fn bench_weighted_kernels(c: &mut Criterion) {
    let pairs = label_pairs(64, 64, 13);
    // Widen the u8 fixture dists to the weighted u32 arena.
    let widen = |(r, d): &(Vec<u32>, Vec<u8>)| -> (Vec<u32>, Vec<u32>) {
        let mut wd: Vec<u32> = d.iter().map(|&x| x as u32 * 37).collect();
        *wd.last_mut().unwrap() = u32::MAX;
        (r.clone(), wd)
    };
    let pairs: Vec<_> = pairs.iter().map(|(a, b)| (widen(a), widen(b))).collect();
    let mut group = c.benchmark_group("kernel_weighted");
    let kernels: [(&str, WeightedKernel); 3] = [
        ("scalar", merge_query_weighted_scalar),
        ("branchless", merge_query_weighted_branchless),
        ("unrolled", merge_query_weighted_unrolled),
    ];
    for (name, kernel) in kernels {
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let ((ar, ad), (br, bd)) = &pairs[i % pairs.len()];
                i += 1;
                std::hint::black_box(kernel(ar, ad, br, bd))
            })
        });
    }
    group.finish();
}

fn bench_dist8_kernels(c: &mut Criterion) {
    // Two labels over one shared arena, a few entries escaped, so the
    // cold sidecar path is exercised but rare — as on real graphs.
    let pairs = label_pairs(64, 64, 17);
    let mut arena: Vec<u8> = Vec::new();
    let mut flat: Vec<(Vec<u32>, u32, Vec<u32>, u32)> = Vec::new();
    let mut esc_pos: Vec<u32> = Vec::new();
    let mut esc_val: Vec<u32> = Vec::new();
    for (k, ((ar, ad), (br, bd))) in pairs.iter().enumerate() {
        let mut push = |d: &[u8]| -> u32 {
            let base = arena.len() as u32;
            arena.extend_from_slice(d);
            // Escape one mid-label entry per 4th label.
            if k % 4 == 0 && d.len() > 2 {
                let p = base + (d.len() / 2) as u32;
                arena[p as usize] = u8::MAX;
                esc_pos.push(p);
                esc_val.push(300 + k as u32);
            }
            base
        };
        let a_base = push(ad);
        let b_base = push(bd);
        flat.push((ar.clone(), a_base, br.clone(), b_base));
    }
    let mut group = c.benchmark_group("kernel_dist8");
    type Dist8Fn = fn(&[u32], &[u8], u32, &[u32], &[u8], u32, &[u32], &[u32]) -> u64;
    let kernels: [(&str, Dist8Fn); 2] = [
        ("scalar", merge_query_weighted_dist8_scalar),
        ("branchless", merge_query_weighted_dist8_branchless),
    ];
    for (name, kernel) in kernels {
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let (ar, a_base, br, b_base) = &flat[i % flat.len()];
                let ad = &arena[*a_base as usize..*a_base as usize + ar.len()];
                let bd = &arena[*b_base as usize..*b_base as usize + br.len()];
                i += 1;
                std::hint::black_box(kernel(ar, ad, *a_base, br, bd, *b_base, &esc_pos, &esc_val))
            })
        });
    }
    group.finish();
}

fn bench_index_distance(c: &mut Criterion) {
    let spec = pll_datasets::by_name("Epinions").unwrap();
    let g = spec.generate(32).expect("dataset");
    let n = g.num_vertices();
    let pairs = pll_bench::random_pairs(n, 1024, 7);
    let index = IndexBuilder::new()
        .bit_parallel_roots(16)
        .build(&g)
        .expect("pll");
    let mut group = c.benchmark_group("index_distance");
    for kind in [
        KernelKind::Scalar,
        KernelKind::Branchless,
        KernelKind::Unrolled,
    ] {
        set_kernel(kind);
        group.bench_function(kind.name(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                std::hint::black_box(index.distance(s, t))
            })
        });
    }
    set_kernel(KernelKind::Branchless);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_unweighted_kernels, bench_weighted_kernels, bench_dist8_kernels,
              bench_index_distance
}
criterion_main!(benches);
