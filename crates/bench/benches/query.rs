//! Criterion micro-benchmark: query latency of PLL against the baselines
//! on the Epinions stand-in (the paper's Table 3 "QT" column in micro
//! form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pll_baselines::ContractionHierarchy;
use pll_bench::random_pairs;
use pll_core::IndexBuilder;
use pll_graph::traversal::bfs::{BfsEngine, BidirBfsEngine};

fn bench_query(c: &mut Criterion) {
    let spec = pll_datasets::by_name("Epinions").unwrap();
    let g = spec.generate(32).expect("dataset"); // ~2.4k vertices: quick
    let n = g.num_vertices();
    let pairs = random_pairs(n, 1024, 7);

    let index = IndexBuilder::new()
        .bit_parallel_roots(16)
        .build(&g)
        .expect("pll");
    let ch = ContractionHierarchy::build(&g, usize::MAX).expect("ch");

    let mut group = c.benchmark_group("query");
    group.bench_function(BenchmarkId::new("pll", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(index.distance(s, t))
        })
    });
    group.bench_function(BenchmarkId::new("bidir_bfs", n), |b| {
        let mut engine = BidirBfsEngine::new(n);
        let mut i = 0usize;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(engine.distance(&g, s, t))
        })
    });
    group.bench_function(BenchmarkId::new("bfs", n), |b| {
        let mut engine = BfsEngine::new(n);
        let mut i = 0usize;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(engine.distance(&g, s, t))
        })
    });
    group.bench_function(BenchmarkId::new("contraction_hierarchy", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(ch.distance(s, t))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_query
}
criterion_main!(benches);
