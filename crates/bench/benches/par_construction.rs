//! Criterion micro-benchmark: batch-parallel index construction
//! (`IndexBuilder::threads`) against the sequential path, sweeping the
//! thread count on the two synthetic families the acceptance criteria
//! name — Barabási–Albert (scale-free, the paper's social-network shape)
//! and R-MAT (skewed Graph500 shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pll_core::IndexBuilder;
use pll_graph::gen::{self, RmatParams};

fn bench_par_construction(c: &mut Criterion) {
    let ba = gen::barabasi_albert(50_000, 3, 42).expect("BA generator");
    let rmat = gen::rmat(15, 8, RmatParams::GRAPH500, 42).expect("R-MAT generator");

    for (family, g) in [("ba_50k", &ba), ("rmat_s15", &rmat)] {
        let mut group = c.benchmark_group(format!("par_construction/{family}"));
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new("threads", threads), |b| {
                b.iter(|| {
                    let builder = IndexBuilder::new().bit_parallel_roots(16).threads(threads);
                    std::hint::black_box(builder.build(g).expect("build"))
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_par_construction
}
criterion_main!(benches);
