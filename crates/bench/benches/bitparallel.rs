//! Criterion micro-benchmark for the bit-parallel technique (§5): how much
//! of the construction does a bit-parallel phase save, and what do BP
//! labels cost at query time.

use criterion::{criterion_group, criterion_main, Criterion};
use pll_bench::random_pairs;
use pll_core::IndexBuilder;

fn bench_bitparallel(c: &mut Criterion) {
    let spec = pll_datasets::by_name("Slashdot").unwrap();
    let g = spec.generate(32).expect("dataset");
    let n = g.num_vertices();

    let mut group = c.benchmark_group("bitparallel");
    group.sample_size(10);
    // Construction with and without the BP phase: §5.4's claim is that a
    // moderate t accelerates preprocessing by covering the un-prunable
    // early roots 65 sources at a time.
    for t in [0usize, 4, 16, 64] {
        group.bench_function(format!("construct_t{t}"), |b| {
            b.iter(|| {
                let builder = IndexBuilder::new().bit_parallel_roots(t);
                std::hint::black_box(builder.build(&g).expect("build"))
            })
        });
    }
    group.finish();

    // Query cost with small vs large t.
    let pairs = random_pairs(n, 1024, 3);
    let idx0 = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    let idx64 = IndexBuilder::new()
        .bit_parallel_roots(64)
        .build(&g)
        .unwrap();
    let mut group = c.benchmark_group("bitparallel_query");
    group.bench_function("query_t0", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(idx0.distance(s, t))
        })
    });
    group.bench_function("query_t64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(idx64.distance(s, t))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_bitparallel
}
criterion_main!(benches);
