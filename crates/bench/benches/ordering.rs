//! Criterion micro-benchmark: cost of computing the vertex orders of §4.4
//! (the pre-phase of every construction).

use criterion::{criterion_group, criterion_main, Criterion};
use pll_core::{order::compute_order, OrderingStrategy};
use pll_treedecomp::{centroid_order, min_degree_order, TreeDecomposition};

fn bench_ordering(c: &mut Criterion) {
    let spec = pll_datasets::by_name("Flickr").unwrap();
    let g = spec.generate(256).expect("dataset");

    let mut group = c.benchmark_group("ordering");
    group.sample_size(20);
    group.bench_function("degree", |b| {
        b.iter(|| compute_order(&g, &OrderingStrategy::Degree, 0).unwrap())
    });
    group.bench_function("random", |b| {
        b.iter(|| compute_order(&g, &OrderingStrategy::Random, 0).unwrap())
    });
    group.bench_function("closeness_16", |b| {
        b.iter(|| compute_order(&g, &OrderingStrategy::Closeness { samples: 16 }, 0).unwrap())
    });
    group.finish();

    // Centroid ordering on a structured graph (Theorem 4.4 machinery).
    let grid = pll_graph::gen::grid(40, 40).unwrap();
    let mut group = c.benchmark_group("ordering_treewidth");
    group.sample_size(10);
    group.bench_function("min_degree_elimination_grid40", |b| {
        b.iter(|| min_degree_order(&grid))
    });
    group.bench_function("centroid_order_grid40", |b| {
        let elim = min_degree_order(&grid);
        let td = TreeDecomposition::from_elimination(&elim);
        b.iter(|| centroid_order(&td))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_ordering
}
criterion_main!(benches);
