//! Pruned landmark labeling: fast exact shortest-path distance queries on
//! large networks.
//!
//! This crate implements the indexing method of Akiba, Iwata & Yoshida,
//! *"Fast Exact Shortest-Path Distance Queries on Large Networks by Pruned
//! Landmark Labeling"* (SIGMOD 2013):
//!
//! * [`IndexBuilder`] / [`PllIndex`] — the undirected, unweighted index:
//!   pruned BFS labeling (§4) combined with bit-parallel labels (§5);
//! * [`OrderingStrategy`] — the Degree / Random / Closeness vertex orders of
//!   §4.4;
//! * [`paths`] — shortest-*path* reconstruction via parent pointers (§6);
//! * [`directed`] — the directed variant with IN/OUT labels (§6);
//! * [`weighted`] — the weighted variant via pruned Dijkstra (§6);
//! * [`weighted_directed`] — the combined variant for weighted digraphs;
//! * [`serialize`] / [`disk`] — a versioned binary index format and
//!   disk-resident query answering with two reads per query (§6);
//! * [`verify`] — exhaustive/sampled correctness checking against BFS.
//!
//! # Example
//!
//! ```
//! use pll_core::{IndexBuilder, OrderingStrategy};
//! use pll_graph::gen;
//!
//! let g = gen::barabasi_albert(2_000, 3, 42).unwrap();
//! let index = IndexBuilder::new()
//!     .ordering(OrderingStrategy::Degree)
//!     .bit_parallel_roots(16)
//!     .build(&g)
//!     .unwrap();
//!
//! // Exact distance; `None` means disconnected.
//! let d = index.distance(0, 1999);
//! assert!(d.unwrap() <= 10);
//! ```

#![deny(unsafe_code)] // allowed only in `storage` for the zero-copy casts
#![deny(missing_docs)]

pub mod bp;
pub mod build;
pub mod compact;
pub mod directed;
pub mod disk;
pub mod dynamic;
pub mod error;
pub mod fail;
pub mod index;
pub mod kernel;
pub mod label;
pub mod order;
pub mod par;
pub mod paths;
pub mod reduction;
pub mod serialize;
pub mod stats;
pub mod storage;
pub mod types;
pub mod v2;
pub mod verify;
pub mod wal;
pub mod weighted;
pub mod weighted_directed;
pub mod weighted_dist8;

pub use build::{BuildObserver, IndexBuilder, PartialIndex};
pub use compact::CompactIndex;
pub use directed::{DirectedIndexBuilder, DirectedPllIndex, DirectedPllIndexView};
pub use dynamic::{DynamicIndex, OverlaySnapshot, UpdateStats};
pub use error::{PllError, Result};
pub use index::{PllIndex, PllIndexView};
pub use kernel::{active_kernel, set_kernel, KernelKind};
pub use label::{LabelSet, LabelSetView};
pub use order::OrderingStrategy;
pub use par::{run_batched, PrunedSearch, RootCommit};
pub use reduction::{Peeling, ReducedPllIndex};
pub use serialize::{FormatVersion, IndexFormat};
pub use stats::{ConstructionStats, LabelSizeStats, RootStats};
pub use storage::{AlignedBytes, BpStorage, LabelStorage, SectionSlice};
pub use types::{Dist, Rank, Vertex, WDist};
pub use v2::AnyIndex;
pub use weighted::{WeightedIndexBuilder, WeightedPllIndex, WeightedPllIndexView};
pub use weighted_directed::{
    WeightedDirectedIndexBuilder, WeightedDirectedPllIndex, WeightedDirectedPllIndexView,
};
pub use weighted_dist8::{WeightedDist8Index, WeightedDist8IndexView};
