//! Construction and label statistics (§7.3 of the paper).

/// Per-root instrumentation of one pruned BFS, recorded when
/// `IndexBuilder::record_root_stats(true)` is set. Figures 3a/3b plot
/// `labeled` against the root's position in the order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootStats {
    /// Rank of the BFS root.
    pub rank: u32,
    /// Vertices dequeued (visited) by this pruned BFS.
    pub visited: u32,
    /// Vertices that received a label (visited and not pruned).
    pub labeled: u32,
    /// Vertices visited but pruned.
    pub pruned: u32,
}

/// Timing and volume statistics of one index construction.
///
/// The construction pipeline is timed phase by phase so the Amdahl
/// accounting of the parallel path is visible end to end (builder → CLI →
/// `BENCH_construction.json`): ordering (§4.4), relabelling into rank
/// space (§4.5 "Sorting Labels"), the searches (bit-parallel §5.4 +
/// pruned §4.2), and the final label flatten into the sentinel-terminated
/// arena (§4.5 "Sentinel").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConstructionStats {
    /// Seconds spent computing the vertex order (§4.4).
    pub order_seconds: f64,
    /// Seconds spent relabelling the graph into rank space (§4.5 "Sorting
    /// Labels").
    pub relabel_seconds: f64,
    /// Seconds spent in the bit-parallel phase (§5.4).
    pub bp_seconds: f64,
    /// Seconds spent in the pruned BFS phase.
    pub pruned_seconds: f64,
    /// Seconds spent flattening per-vertex labels into the arena (§4.5
    /// "Sentinel").
    pub flatten_seconds: f64,
    /// Bit-parallel roots actually used (≤ the configured `t`; fewer when
    /// the graph runs out of unused vertices).
    pub bp_roots_used: usize,
    /// Number of pruned BFSs performed (vertices not consumed by the BP
    /// phase).
    pub pruned_roots: usize,
    /// Total vertices dequeued over all pruned BFSs.
    pub total_visited: u64,
    /// Total label entries created.
    pub total_labeled: u64,
    /// Total visits pruned.
    pub total_pruned: u64,
    /// Worker threads used for construction (1 = the sequential path; the
    /// per-thread visit/label/prune counters are merged into the totals
    /// above at each batch barrier).
    pub threads: usize,
    /// Number of root batches the parallel path processed (0 for the
    /// sequential path).
    pub parallel_batches: usize,
    /// Label entries buffered by in-batch BFSs and then removed by the
    /// commit-time re-prune pass (0 for the sequential path; counted inside
    /// `total_pruned` as well, so `visited = labeled + pruned` still holds).
    pub repruned: u64,
    /// Per-root breakdown, present iff `record_root_stats(true)`.
    pub per_root: Option<Vec<RootStats>>,
}

impl ConstructionStats {
    /// Total construction seconds (ordering + relabelling + BP + pruned +
    /// flatten phases).
    pub fn total_seconds(&self) -> f64 {
        self.order_seconds
            + self.relabel_seconds
            + self.bp_seconds
            + self.pruned_seconds
            + self.flatten_seconds
    }

    /// Seconds spent in the search phases (bit-parallel + pruned) — the
    /// `search_secs` column of the bench records.
    pub fn search_seconds(&self) -> f64 {
        self.bp_seconds + self.pruned_seconds
    }

    /// Fraction of visits that were pruned (0 if nothing was visited).
    pub fn prune_rate(&self) -> f64 {
        if self.total_visited == 0 {
            0.0
        } else {
            self.total_pruned as f64 / self.total_visited as f64
        }
    }
}

/// Distribution summary of per-vertex label sizes (Figure 3c).
#[derive(Clone, Debug, PartialEq)]
pub struct LabelSizeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Total label entries (excluding sentinels).
    pub total_entries: usize,
    /// Mean entries per vertex (the "LN" column of Table 3, normal part).
    pub mean: f64,
    /// Minimum label size.
    pub min: usize,
    /// Maximum label size.
    pub max: usize,
    /// Label size percentiles at 1%, 10%, 25%, 50%, 75%, 90%, 99%.
    pub percentiles: [usize; 7],
}

impl LabelSizeStats {
    /// Computes the distribution from raw per-vertex sizes.
    pub fn from_sizes(mut sizes: Vec<usize>) -> LabelSizeStats {
        let n = sizes.len();
        if n == 0 {
            return LabelSizeStats {
                num_vertices: 0,
                total_entries: 0,
                mean: 0.0,
                min: 0,
                max: 0,
                percentiles: [0; 7],
            };
        }
        sizes.sort_unstable();
        let total: usize = sizes.iter().sum();
        let pct = |p: f64| -> usize {
            let idx = ((n as f64 * p).ceil() as usize)
                .saturating_sub(1)
                .min(n - 1);
            sizes[idx]
        };
        LabelSizeStats {
            num_vertices: n,
            total_entries: total,
            mean: total as f64 / n as f64,
            min: sizes[0],
            max: sizes[n - 1],
            percentiles: [
                pct(0.01),
                pct(0.10),
                pct(0.25),
                pct(0.50),
                pct(0.75),
                pct(0.90),
                pct(0.99),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_stats_totals() {
        let s = ConstructionStats {
            order_seconds: 1.0,
            relabel_seconds: 0.5,
            bp_seconds: 2.0,
            pruned_seconds: 3.0,
            flatten_seconds: 0.25,
            total_visited: 10,
            total_pruned: 4,
            ..Default::default()
        };
        assert!((s.total_seconds() - 6.75).abs() < 1e-12);
        assert!((s.search_seconds() - 5.0).abs() < 1e-12);
        assert!((s.prune_rate() - 0.4).abs() < 1e-12);
        assert_eq!(ConstructionStats::default().prune_rate(), 0.0);
    }

    #[test]
    fn label_size_stats_basic() {
        let s = LabelSizeStats::from_sizes(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.total_entries, 55);
        assert!((s.mean - 5.5).abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.percentiles[3], 5); // median
        assert_eq!(s.percentiles[6], 10); // p99
    }

    #[test]
    fn label_size_stats_empty_and_uniform() {
        let e = LabelSizeStats::from_sizes(vec![]);
        assert_eq!(e.num_vertices, 0);
        assert_eq!(e.mean, 0.0);

        let u = LabelSizeStats::from_sizes(vec![4; 100]);
        assert_eq!(u.min, 4);
        assert_eq!(u.max, 4);
        assert_eq!(u.percentiles, [4; 7]);
    }
}
