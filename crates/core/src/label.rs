//! Flat label storage and the merge-join query kernel.
//!
//! Labels are the index of §3.3: for each vertex `v`, a sorted sequence of
//! `(hub rank, distance)` pairs. Following §4.5 the store is laid out as
//! * one `offsets` array (`n + 1` entries),
//! * one contiguous `ranks` array and one contiguous `dists` array —
//!   vertices and distances split, because "distances are only used when
//!   vertices match",
//! * a sentinel entry `(RANK_SENTINEL, INF8)` terminating every label so the
//!   merge loop needs no bounds checks,
//! * optional parent pointers (rank space) for shortest-path reconstruction
//!   (§6).

use crate::types::{Dist, Rank, INF8, INF_QUERY, RANK_SENTINEL};

/// Immutable flat label store, keyed by *rank* (not original vertex id).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelSet {
    offsets: Vec<u32>,
    ranks: Vec<Rank>,
    dists: Vec<Dist>,
    /// Parent (rank space) of this vertex in the hub's pruned BFS tree;
    /// `RANK_SENTINEL` for the hub itself and for sentinel entries.
    parents: Option<Vec<Rank>>,
}

impl LabelSet {
    /// Flattens per-vertex label vectors into the arena, appending the
    /// sentinel to each label.
    ///
    /// `per_vertex_parents` must be `Some` iff parent tracking was enabled,
    /// and parallel in shape to the labels.
    pub(crate) fn from_vecs(
        ranks: &[Vec<Rank>],
        dists: &[Vec<Dist>],
        parents: Option<&[Vec<Rank>]>,
    ) -> LabelSet {
        let n = ranks.len();
        debug_assert_eq!(dists.len(), n);
        let total: usize = ranks.iter().map(|r| r.len() + 1).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut flat_ranks = Vec::with_capacity(total);
        let mut flat_dists = Vec::with_capacity(total);
        let mut flat_parents = parents.map(|_| Vec::with_capacity(total));
        offsets.push(0u32);
        for v in 0..n {
            debug_assert_eq!(ranks[v].len(), dists[v].len());
            debug_assert!(
                ranks[v].windows(2).all(|w| w[0] < w[1]),
                "label of vertex {v} must be strictly sorted by rank"
            );
            flat_ranks.extend_from_slice(&ranks[v]);
            flat_dists.extend_from_slice(&dists[v]);
            flat_ranks.push(RANK_SENTINEL);
            flat_dists.push(INF8);
            if let (Some(fp), Some(pv)) = (&mut flat_parents, parents) {
                fp.extend_from_slice(&pv[v]);
                fp.push(RANK_SENTINEL);
            }
            offsets.push(flat_ranks.len() as u32);
        }
        LabelSet {
            offsets,
            ranks: flat_ranks,
            dists: flat_dists,
            parents: flat_parents,
        }
    }

    /// Reassembles a label set from raw arena arrays (deserialisation).
    pub(crate) fn from_raw(
        offsets: Vec<u32>,
        ranks: Vec<Rank>,
        dists: Vec<Dist>,
        parents: Option<Vec<Rank>>,
    ) -> LabelSet {
        LabelSet {
            offsets,
            ranks,
            dists,
            parents,
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Label of rank-space vertex `v`: parallel `(ranks, dists)` slices
    /// *including* the trailing sentinel.
    #[inline]
    pub fn label(&self, v: Rank) -> (&[Rank], &[Dist]) {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        (&self.ranks[s..e], &self.dists[s..e])
    }

    /// Number of label entries of `v`, excluding the sentinel.
    #[inline]
    pub fn label_len(&self, v: Rank) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize - 1
    }

    /// Parent slice of `v` (including sentinel) if parents are stored.
    pub fn parents(&self, v: Rank) -> Option<&[Rank]> {
        self.parents.as_ref().map(|p| {
            let s = self.offsets[v as usize] as usize;
            let e = self.offsets[v as usize + 1] as usize;
            &p[s..e]
        })
    }

    /// Whether parent pointers are stored.
    pub fn has_parents(&self) -> bool {
        self.parents.is_some()
    }

    /// The 2-hop query of §3.3 over rank-space vertices `u` and `v`:
    /// `min { d(w,u) + d(w,v) }` over hubs `w` common to both labels, or
    /// [`INF_QUERY`] if the labels share no hub. `O(|L(u)| + |L(v)|)`
    /// merge-join; the sentinel guarantees termination.
    #[inline]
    pub fn query(&self, u: Rank, v: Rank) -> u32 {
        let (ur, ud) = self.label(u);
        let (vr, vd) = self.label(v);
        merge_query(ur, ud, vr, vd)
    }

    /// Like [`LabelSet::query`], also returning the minimising hub rank.
    pub fn query_with_hub(&self, u: Rank, v: Rank) -> Option<(u32, Rank)> {
        let (ur, ud) = self.label(u);
        let (vr, vd) = self.label(v);
        let mut i = 0usize;
        let mut j = 0usize;
        let mut best = INF_QUERY;
        let mut hub = RANK_SENTINEL;
        loop {
            let (ru, rv) = (ur[i], vr[j]);
            if ru == rv {
                if ru == RANK_SENTINEL {
                    break;
                }
                let d = ud[i] as u32 + vd[j] as u32;
                if d < best {
                    best = d;
                    hub = ru;
                }
                i += 1;
                j += 1;
            } else if ru < rv {
                i += 1;
            } else {
                j += 1;
            }
        }
        (best != INF_QUERY).then_some((best, hub))
    }

    /// Distance from `v` to hub `w` if `w` labels `v` (binary search over
    /// the sorted label).
    pub fn hub_distance(&self, v: Rank, w: Rank) -> Option<Dist> {
        let (vr, vd) = self.label(v);
        let body = &vr[..vr.len() - 1]; // exclude sentinel
        body.binary_search(&w).ok().map(|i| vd[i])
    }

    /// Parent of `v` in the BFS tree of hub `w`, if stored and present.
    pub fn hub_parent(&self, v: Rank, w: Rank) -> Option<Rank> {
        let parents = self.parents.as_ref()?;
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        let body = &self.ranks[s..e - 1];
        body.binary_search(&w).ok().map(|i| parents[s + i])
    }

    /// Total number of label entries (excluding sentinels).
    pub fn total_entries(&self) -> usize {
        self.ranks.len() - self.num_vertices()
    }

    /// Average label size per vertex (the paper's "LN" metric).
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_entries() as f64 / self.num_vertices() as f64
        }
    }

    /// Heap bytes used by the arena (the paper's "IS" contribution from
    /// normal labels).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.ranks.len() * 4
            + self.dists.len()
            + self.parents.as_ref().map_or(0, |p| p.len() * 4)
    }

    /// Raw arena views for serialisation:
    /// `(offsets, ranks, dists, parents)`.
    pub(crate) fn as_raw(&self) -> RawLabelParts<'_> {
        (
            &self.offsets,
            &self.ranks,
            &self.dists,
            self.parents.as_deref(),
        )
    }
}

/// Raw arena views `(offsets, ranks, dists, parents)` used by
/// serialisation.
pub(crate) type RawLabelParts<'a> = (&'a [u32], &'a [Rank], &'a [Dist], Option<&'a [Rank]>);

/// Merge-join over two sentinel-terminated labels.
#[inline]
pub(crate) fn merge_query(ur: &[Rank], ud: &[Dist], vr: &[Rank], vd: &[Dist]) -> u32 {
    debug_assert_eq!(*ur.last().unwrap(), RANK_SENTINEL);
    debug_assert_eq!(*vr.last().unwrap(), RANK_SENTINEL);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = INF_QUERY;
    loop {
        let (ru, rv) = (ur[i], vr[j]);
        if ru == rv {
            if ru == RANK_SENTINEL {
                break;
            }
            let d = ud[i] as u32 + vd[j] as u32;
            if d < best {
                best = d;
            }
            i += 1;
            j += 1;
        } else if ru < rv {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> LabelSet {
        // vertex 0: hubs {0:0, 2:3}; vertex 1: hubs {0:1}; vertex 2: {}.
        LabelSet::from_vecs(
            &[vec![0, 2], vec![0], vec![]],
            &[vec![0, 3], vec![1], vec![]],
            None,
        )
    }

    #[test]
    fn label_slices_end_with_sentinel() {
        let ls = small_set();
        let (r, d) = ls.label(0);
        assert_eq!(r, &[0, 2, RANK_SENTINEL]);
        assert_eq!(d, &[0, 3, INF8]);
        assert_eq!(ls.label_len(0), 2);
        assert_eq!(ls.label_len(2), 0);
    }

    #[test]
    fn query_merges_common_hubs() {
        let ls = small_set();
        assert_eq!(ls.query(0, 1), 1); // via hub 0: 0 + 1
        assert_eq!(ls.query(1, 1), 2); // via hub 0: 1 + 1
        assert_eq!(ls.query(0, 2), INF_QUERY); // no common hub
        assert_eq!(ls.query(2, 2), INF_QUERY); // empty labels
    }

    #[test]
    fn query_with_hub_reports_minimiser() {
        let ls = LabelSet::from_vecs(&[vec![0, 1], vec![0, 1]], &[vec![5, 1], vec![5, 1]], None);
        assert_eq!(ls.query_with_hub(0, 1), Some((2, 1)));
        let empty = small_set();
        assert_eq!(empty.query_with_hub(0, 2), None);
    }

    #[test]
    fn hub_distance_lookup() {
        let ls = small_set();
        assert_eq!(ls.hub_distance(0, 2), Some(3));
        assert_eq!(ls.hub_distance(0, 1), None);
        assert_eq!(ls.hub_distance(2, 0), None);
    }

    #[test]
    fn parents_roundtrip() {
        let ls = LabelSet::from_vecs(
            &[vec![0], vec![0]],
            &[vec![0], vec![1]],
            Some(&[vec![RANK_SENTINEL], vec![0]]),
        );
        assert!(ls.has_parents());
        assert_eq!(ls.hub_parent(1, 0), Some(0));
        assert_eq!(ls.hub_parent(0, 0), Some(RANK_SENTINEL));
        assert_eq!(ls.parents(0).unwrap().len(), 2);
    }

    #[test]
    fn stats() {
        let ls = small_set();
        assert_eq!(ls.total_entries(), 3);
        assert!((ls.avg_label_size() - 1.0).abs() < 1e-12);
        // offsets 4*4 + ranks 6*4 + dists 6
        assert_eq!(ls.memory_bytes(), 16 + 24 + 6);
    }

    #[test]
    fn merge_query_tie_handling() {
        // Two common hubs with equal sums.
        let ls = LabelSet::from_vecs(&[vec![0, 3], vec![0, 3]], &[vec![2, 1], vec![2, 1]], None);
        assert_eq!(ls.query(0, 1), 2);
    }
}
