//! Flat label storage and the merge-join query kernel.
//!
//! Labels are the index of §3.3: for each vertex `v`, a sorted sequence of
//! `(hub rank, distance)` pairs. Following §4.5 the store is laid out as
//! * one `offsets` array (`n + 1` entries),
//! * one contiguous `ranks` array and one contiguous `dists` array —
//!   vertices and distances split, because "distances are only used when
//!   vertices match",
//! * a sentinel entry `(RANK_SENTINEL, INF8)` terminating every label so the
//!   merge loop needs no bounds checks,
//! * optional parent pointers (rank space) for shortest-path reconstruction
//!   (§6).

use crate::error::{PllError, Result};
use crate::storage::{LabelStorage, OwnedLabels, ViewLabels};
use crate::types::{Dist, Rank, INF8, INF_QUERY, RANK_SENTINEL};

/// Computes the sentinel-terminated arena offsets for per-vertex label
/// lengths: entry `v` is the arena start of vertex `v`'s label, each label
/// contributing `len + 1` entries (the `+1` is the sentinel). The prefix
/// sum runs in `u64` and every offset is checked against the 32-bit arena
/// representation — a label set past 2^32 entries used to wrap silently
/// and corrupt the offsets; now it surfaces as [`PllError::TooLarge`].
pub(crate) fn checked_offsets(lens: impl Iterator<Item = usize>) -> Result<Vec<u32>> {
    let mut offsets = Vec::with_capacity(lens.size_hint().0 + 1);
    offsets.push(0u32);
    let mut acc = 0u64;
    for len in lens {
        acc = (len as u64)
            .checked_add(1)
            .and_then(|entries| acc.checked_add(entries))
            .filter(|&total| total <= u32::MAX as u64)
            .ok_or(PllError::TooLarge {
                what: "label arena entries (including sentinels)",
            })?;
        offsets.push(acc as u32);
    }
    Ok(offsets)
}

/// Minimum arena entries for the parallel scatter; below this the
/// spawn/join overhead exceeds the copy itself. Purely a performance
/// knob — both paths produce identical output.
const PARALLEL_FLATTEN_MIN_ENTRIES: usize = 4096;

/// Copies per-vertex label vectors into their arena slots (`offsets`
/// delimits them) and writes `sentinel` after each, fanning contiguous
/// vertex chunks out over `threads` scoped workers. The chunks' arena
/// spans are disjoint by construction, so the output is identical at any
/// thread count.
pub(crate) fn scatter_with_sentinel<T: Copy + Send + Sync>(
    per_vertex: &[Vec<T>],
    sentinel: T,
    offsets: &[u32],
    out: &mut [T],
    threads: usize,
) {
    let n = per_vertex.len();
    let copy_range = |range: std::ops::Range<usize>, chunk_out: &mut [T]| {
        let base = offsets[range.start] as usize;
        for v in range {
            let s = offsets[v] as usize - base;
            let len = per_vertex[v].len();
            chunk_out[s..s + len].copy_from_slice(&per_vertex[v]);
            chunk_out[s + len] = sentinel;
        }
    };
    if threads <= 1 || out.len() < PARALLEL_FLATTEN_MIN_ENTRIES {
        copy_range(0..n, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let len = (offsets[end] - offsets[start]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let copy_range = &copy_range;
            scope.spawn(move || copy_range(start..end, head));
            start = end;
        }
    });
}

/// Immutable flat label store, keyed by *rank* (not original vertex id).
///
/// Generic over its [`LabelStorage`] backend: the default `S` is the
/// heap-owned arena the builders produce; [`LabelSetView`] borrows the
/// arenas zero-copy from a v2 index buffer ([`crate::v2`]). Every query
/// method is implemented once, on the generic type, so both backends run
/// the identical merge-join.
#[derive(Clone, Debug)]
pub struct LabelSet<S = OwnedLabels<Dist>> {
    store: S,
}

/// Zero-copy [`LabelSet`]: sentinel-terminated arenas viewed in place
/// inside one [`crate::storage::AlignedBytes`] buffer.
pub type LabelSetView = LabelSet<ViewLabels<Dist>>;

/// Backends compare equal iff they hold the same arenas, so a zero-copy
/// view can be checked against the owned index it was written from.
impl<S1, S2> PartialEq<LabelSet<S2>> for LabelSet<S1>
where
    S1: LabelStorage<Dist = Dist>,
    S2: LabelStorage<Dist = Dist>,
{
    fn eq(&self, other: &LabelSet<S2>) -> bool {
        self.store.offsets() == other.store.offsets()
            && self.store.ranks() == other.store.ranks()
            && self.store.dists() == other.store.dists()
            && self.store.parents() == other.store.parents()
    }
}

impl<S: LabelStorage<Dist = Dist>> Eq for LabelSet<S> {}

impl LabelSet {
    /// Flattens per-vertex label vectors into the arena, appending the
    /// sentinel to each label. Offsets are a checked `u64` prefix sum
    /// ([`checked_offsets`]); the label chunks are then copied into the
    /// arena from `threads` scoped workers over disjoint slices
    /// ([`scatter_with_sentinel`]), so the result is byte-identical at any
    /// thread count.
    ///
    /// `parents` must be `Some` iff parent tracking was enabled, and
    /// parallel in shape to the labels.
    ///
    /// # Errors
    ///
    /// Returns [`PllError::TooLarge`] when the arena (sentinels included)
    /// would exceed `u32::MAX` entries.
    pub(crate) fn from_vecs(
        ranks: &[Vec<Rank>],
        dists: &[Vec<Dist>],
        parents: Option<&[Vec<Rank>]>,
        threads: usize,
    ) -> Result<LabelSet> {
        let n = ranks.len();
        debug_assert_eq!(dists.len(), n);
        #[cfg(debug_assertions)]
        for v in 0..n {
            debug_assert_eq!(ranks[v].len(), dists[v].len());
            debug_assert!(
                ranks[v].windows(2).all(|w| w[0] < w[1]),
                "label of vertex {v} must be strictly sorted by rank"
            );
        }
        let offsets = checked_offsets(ranks.iter().map(Vec::len))?;
        let total = *offsets.last().unwrap() as usize;
        let mut flat_ranks = vec![0 as Rank; total];
        let mut flat_dists = vec![0 as Dist; total];
        scatter_with_sentinel(ranks, RANK_SENTINEL, &offsets, &mut flat_ranks, threads);
        scatter_with_sentinel(dists, INF8, &offsets, &mut flat_dists, threads);
        let flat_parents = parents.map(|pv| {
            let mut fp = vec![0 as Rank; total];
            scatter_with_sentinel(pv, RANK_SENTINEL, &offsets, &mut fp, threads);
            fp
        });
        Ok(LabelSet {
            store: OwnedLabels {
                offsets,
                ranks: flat_ranks,
                dists: flat_dists,
                parents: flat_parents,
            },
        })
    }

    /// Reassembles a label set from raw arena arrays (deserialisation).
    pub(crate) fn from_raw(
        offsets: Vec<u32>,
        ranks: Vec<Rank>,
        dists: Vec<Dist>,
        parents: Option<Vec<Rank>>,
    ) -> LabelSet {
        LabelSet {
            store: OwnedLabels {
                offsets,
                ranks,
                dists,
                parents,
            },
        }
    }
}

impl<S: LabelStorage<Dist = Dist>> LabelSet<S> {
    /// Wraps a storage backend (used by the zero-copy v2 opener).
    pub(crate) fn from_store(store: S) -> LabelSet<S> {
        LabelSet { store }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.store.offsets().len() - 1
    }

    /// Label of rank-space vertex `v`: parallel `(ranks, dists)` slices
    /// *including* the trailing sentinel.
    #[inline]
    pub fn label(&self, v: Rank) -> (&[Rank], &[Dist]) {
        let offsets = self.store.offsets();
        let s = offsets[v as usize] as usize;
        let e = offsets[v as usize + 1] as usize;
        (&self.store.ranks()[s..e], &self.store.dists()[s..e])
    }

    /// Number of label entries of `v`, excluding the sentinel.
    #[inline]
    pub fn label_len(&self, v: Rank) -> usize {
        let offsets = self.store.offsets();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize - 1
    }

    /// Parent slice of `v` (including sentinel) if parents are stored.
    pub fn parents(&self, v: Rank) -> Option<&[Rank]> {
        self.store.parents().map(|p| {
            let offsets = self.store.offsets();
            let s = offsets[v as usize] as usize;
            let e = offsets[v as usize + 1] as usize;
            &p[s..e]
        })
    }

    /// Whether parent pointers are stored.
    pub fn has_parents(&self) -> bool {
        self.store.parents().is_some()
    }

    /// The 2-hop query of §3.3 over rank-space vertices `u` and `v`:
    /// `min { d(w,u) + d(w,v) }` over hubs `w` common to both labels, or
    /// [`INF_QUERY`] if the labels share no hub. `O(|L(u)| + |L(v)|)`
    /// merge-join; the sentinel guarantees termination.
    ///
    /// Note `query` works in *rank* space; translate original vertex
    /// ids through the index first. With bit-parallel roots the plain
    /// labels are pruned against the BP oracle and may overestimate on
    /// their own — ask the index, not the label set, for final
    /// distances.
    ///
    /// ```
    /// use pll_core::types::INF_QUERY;
    /// use pll_core::IndexBuilder;
    /// use pll_graph::CsrGraph;
    ///
    /// // A path 0–1–2–3 plus the isolated vertex 4; no BP roots, so
    /// // the plain labels answer everything by themselves.
    /// let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
    /// let index = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
    ///
    /// let labels = index.labels();
    /// assert_eq!(labels.query(index.rank_of(0), index.rank_of(3)), 3);
    /// assert_eq!(labels.query(index.rank_of(0), index.rank_of(4)), INF_QUERY);
    /// ```
    #[inline]
    pub fn query(&self, u: Rank, v: Rank) -> u32 {
        let (ur, ud) = self.label(u);
        let (vr, vd) = self.label(v);
        merge_query(ur, ud, vr, vd)
    }

    /// Like [`LabelSet::query`], also returning the minimising hub rank.
    pub fn query_with_hub(&self, u: Rank, v: Rank) -> Option<(u32, Rank)> {
        let (ur, ud) = self.label(u);
        let (vr, vd) = self.label(v);
        let mut i = 0usize;
        let mut j = 0usize;
        let mut best = INF_QUERY;
        let mut hub = RANK_SENTINEL;
        loop {
            let (ru, rv) = (ur[i], vr[j]);
            if ru == rv {
                if ru == RANK_SENTINEL {
                    break;
                }
                let d = ud[i] as u32 + vd[j] as u32;
                if d < best {
                    best = d;
                    hub = ru;
                }
                i += 1;
                j += 1;
            } else if ru < rv {
                i += 1;
            } else {
                j += 1;
            }
        }
        (best != INF_QUERY).then_some((best, hub))
    }

    /// Whether the labels of `u` and `v` share at least one hub — the
    /// same merge as [`LabelSet::query`] but returning at the *first*
    /// common hub (or the shared sentinel), without summing distances.
    /// Hub labelings put a common hub on every connected pair, so this
    /// is the label half of a same-component test at a fraction of a
    /// distance query's work.
    #[inline]
    pub fn shares_hub(&self, u: Rank, v: Rank) -> bool {
        let (ur, _) = self.label(u);
        let (vr, _) = self.label(v);
        let mut i = 0usize;
        let mut j = 0usize;
        loop {
            let (ru, rv) = (ur[i], vr[j]);
            if ru == rv {
                return ru != RANK_SENTINEL;
            } else if ru < rv {
                i += 1;
            } else {
                j += 1;
            }
        }
    }

    /// Distance from `v` to hub `w` if `w` labels `v` (binary search over
    /// the sorted label).
    pub fn hub_distance(&self, v: Rank, w: Rank) -> Option<Dist> {
        let (vr, vd) = self.label(v);
        let body = &vr[..vr.len() - 1]; // exclude sentinel
        body.binary_search(&w).ok().map(|i| vd[i])
    }

    /// Parent of `v` in the BFS tree of hub `w`, if stored and present.
    pub fn hub_parent(&self, v: Rank, w: Rank) -> Option<Rank> {
        let parents = self.store.parents()?;
        let offsets = self.store.offsets();
        let s = offsets[v as usize] as usize;
        let e = offsets[v as usize + 1] as usize;
        let body = &self.store.ranks()[s..e - 1];
        body.binary_search(&w).ok().map(|i| parents[s + i])
    }

    /// Total number of label entries (excluding sentinels).
    pub fn total_entries(&self) -> usize {
        self.store.ranks().len() - self.num_vertices()
    }

    /// Average label size per vertex (the paper's "LN" metric).
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_entries() as f64 / self.num_vertices() as f64
        }
    }

    /// Bytes used by the arena (the paper's "IS" contribution from normal
    /// labels) — heap bytes for the owned backend, mapped/section bytes
    /// for a view.
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    /// Raw arena views for serialisation:
    /// `(offsets, ranks, dists, parents)`.
    pub(crate) fn as_raw(&self) -> RawLabelParts<'_> {
        (
            self.store.offsets(),
            self.store.ranks(),
            self.store.dists(),
            self.store.parents(),
        )
    }
}

/// Raw arena views `(offsets, ranks, dists, parents)` used by
/// serialisation.
pub(crate) type RawLabelParts<'a> = (&'a [u32], &'a [Rank], &'a [Dist], Option<&'a [Rank]>);

// The merge-join kernels moved to `crate::kernel` (runtime-selectable
// scalar/branchless variants); these re-exports keep the historical
// call sites unchanged.
pub(crate) use crate::kernel::{merge_query, merge_query_weighted};

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> LabelSet {
        // vertex 0: hubs {0:0, 2:3}; vertex 1: hubs {0:1}; vertex 2: {}.
        LabelSet::from_vecs(
            &[vec![0, 2], vec![0], vec![]],
            &[vec![0, 3], vec![1], vec![]],
            None,
            1,
        )
        .unwrap()
    }

    #[test]
    fn label_slices_end_with_sentinel() {
        let ls = small_set();
        let (r, d) = ls.label(0);
        assert_eq!(r, &[0, 2, RANK_SENTINEL]);
        assert_eq!(d, &[0, 3, INF8]);
        assert_eq!(ls.label_len(0), 2);
        assert_eq!(ls.label_len(2), 0);
    }

    #[test]
    fn query_merges_common_hubs() {
        let ls = small_set();
        assert_eq!(ls.query(0, 1), 1); // via hub 0: 0 + 1
        assert_eq!(ls.query(1, 1), 2); // via hub 0: 1 + 1
        assert_eq!(ls.query(0, 2), INF_QUERY); // no common hub
        assert_eq!(ls.query(2, 2), INF_QUERY); // empty labels
    }

    #[test]
    fn query_with_hub_reports_minimiser() {
        let ls = LabelSet::from_vecs(
            &[vec![0, 1], vec![0, 1]],
            &[vec![5, 1], vec![5, 1]],
            None,
            1,
        )
        .unwrap();
        assert_eq!(ls.query_with_hub(0, 1), Some((2, 1)));
        let empty = small_set();
        assert_eq!(empty.query_with_hub(0, 2), None);
    }

    #[test]
    fn shares_hub_matches_query_reachability() {
        let ls = small_set();
        for u in 0..3 as Rank {
            for v in 0..3 as Rank {
                assert_eq!(
                    ls.shares_hub(u, v),
                    ls.query(u, v) != INF_QUERY,
                    "pair ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn hub_distance_lookup() {
        let ls = small_set();
        assert_eq!(ls.hub_distance(0, 2), Some(3));
        assert_eq!(ls.hub_distance(0, 1), None);
        assert_eq!(ls.hub_distance(2, 0), None);
    }

    #[test]
    fn parents_roundtrip() {
        let ls = LabelSet::from_vecs(
            &[vec![0], vec![0]],
            &[vec![0], vec![1]],
            Some(&[vec![RANK_SENTINEL], vec![0]]),
            1,
        )
        .unwrap();
        assert!(ls.has_parents());
        assert_eq!(ls.hub_parent(1, 0), Some(0));
        assert_eq!(ls.hub_parent(0, 0), Some(RANK_SENTINEL));
        assert_eq!(ls.parents(0).unwrap().len(), 2);
    }

    #[test]
    fn stats() {
        let ls = small_set();
        assert_eq!(ls.total_entries(), 3);
        assert!((ls.avg_label_size() - 1.0).abs() < 1e-12);
        // offsets 4*4 + ranks 6*4 + dists 6
        assert_eq!(ls.memory_bytes(), 16 + 24 + 6);
    }

    #[test]
    fn merge_query_tie_handling() {
        // Two common hubs with equal sums.
        let ls = LabelSet::from_vecs(
            &[vec![0, 3], vec![0, 3]],
            &[vec![2, 1], vec![2, 1]],
            None,
            1,
        )
        .unwrap();
        assert_eq!(ls.query(0, 1), 2);
    }

    #[test]
    fn from_vecs_parallel_flatten_is_identical() {
        // Deterministic, irregular label shapes: the parallel scatter must
        // reproduce the sequential arena byte for byte at every thread
        // count. n is large enough that the arena passes
        // PARALLEL_FLATTEN_MIN_ENTRIES and the chunked path engages.
        let n = 2048usize;
        let mut ranks: Vec<Vec<Rank>> = Vec::with_capacity(n);
        let mut dists: Vec<Vec<Dist>> = Vec::with_capacity(n);
        let mut parents: Vec<Vec<Rank>> = Vec::with_capacity(n);
        for v in 0..n {
            let len = (v * 7) % 13;
            ranks.push((0..len as Rank).map(|i| i * 3 + 1).collect());
            dists.push((0..len).map(|i| (i % 200) as Dist).collect());
            parents.push((0..len as Rank).collect());
        }
        let seq = LabelSet::from_vecs(&ranks, &dists, Some(&parents), 1).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let par = LabelSet::from_vecs(&ranks, &dists, Some(&parents), threads).unwrap();
            assert_eq!(seq, par, "flatten diverged at threads={threads}");
        }
    }

    #[test]
    fn from_vecs_offset_overflow_errors() {
        // `from_vecs` computes its offsets through `checked_offsets`; the
        // error path is exercised with synthetic lengths (actually
        // materialising > 2^32 label entries would need 16 GiB+).
        let just_fits = [(u32::MAX - 1) as usize];
        assert_eq!(
            *checked_offsets(just_fits.iter().copied())
                .unwrap()
                .last()
                .unwrap(),
            u32::MAX
        );
        let overflows = [u32::MAX as usize];
        assert!(matches!(
            checked_offsets(overflows.iter().copied()),
            Err(PllError::TooLarge { .. })
        ));
        // Accumulated overflow across vertices, not just a single huge one.
        let accumulated = [u32::MAX as usize / 2; 3];
        assert!(matches!(
            checked_offsets(accumulated.iter().copied()),
            Err(PllError::TooLarge { .. })
        ));
        // u64-level overflow must not wrap either.
        let huge = [usize::MAX];
        assert!(matches!(
            checked_offsets(huge.iter().copied()),
            Err(PllError::TooLarge { .. })
        ));
    }
}
