//! Compressed label storage (§8: "compressing labels").
//!
//! The flat label arena spends 4 bytes per hub rank. Within one label the
//! ranks are strictly ascending, so they compress well as LEB128 varints
//! of the gaps; distances stay raw 8-bit. Typical complex-network labels
//! shrink to 40–60 % of the flat size at roughly 2× the query cost — the
//! trade the paper's future-work section anticipates for indices that
//! outgrow memory.
//!
//! [`CompactIndex`] is a read-only re-encoding of a built [`PllIndex`]; the
//! bit-parallel labels are kept verbatim (they are fixed-width and already
//! dense).

use crate::bp::BitParallelLabels;
use crate::index::PllIndex;
use crate::types::{Dist, Rank, Vertex, INF_QUERY};

/// A read-only, delta-varint-compressed 2-hop index.
#[derive(Clone, Debug)]
pub struct CompactIndex {
    /// `inv[vertex] = rank`.
    inv: Vec<Rank>,
    /// Byte offset of each rank's compressed label.
    offsets: Vec<u32>,
    /// Interleaved stream per label: varint(gap) then u8 distance per
    /// entry; the first entry's "gap" is the absolute rank.
    stream: Vec<u8>,
    /// Entry count per label (needed to drive decoding).
    counts: Vec<u32>,
    /// Bit-parallel labels, shared layout with the flat index.
    bp: BitParallelLabels,
}

fn push_varint(stream: &mut Vec<u8>, mut x: u32) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            stream.push(byte);
            return;
        }
        stream.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(stream: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0;
    loop {
        let byte = stream[*pos];
        *pos += 1;
        x |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Decoding cursor over one compressed label.
struct LabelCursor<'a> {
    stream: &'a [u8],
    pos: usize,
    remaining: u32,
    rank: u32,
    first: bool,
}

impl LabelCursor<'_> {
    /// Advances to the next `(rank, dist)` entry, or `None` at the end.
    #[inline]
    fn next(&mut self) -> Option<(Rank, Dist)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = read_varint(self.stream, &mut self.pos);
        // Gaps between strictly ascending ranks are stored off by one;
        // the first value is absolute.
        self.rank = if self.first {
            self.first = false;
            gap
        } else {
            self.rank + gap + 1
        };
        let dist = self.stream[self.pos];
        self.pos += 1;
        Some((self.rank, dist))
    }
}

impl CompactIndex {
    /// Re-encodes a built index. The original index is unchanged.
    pub fn from_index(index: &PllIndex) -> CompactIndex {
        let (order, inv, labels, bp, _) = index.parts();
        let n = order.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut counts = Vec::with_capacity(n);
        let mut stream = Vec::new();
        offsets.push(0u32);
        for r in 0..n as Rank {
            let (ranks, dists) = labels.label(r);
            let body = &ranks[..ranks.len() - 1]; // strip sentinel
            counts.push(body.len() as u32);
            let mut prev: Option<u32> = None;
            for (i, &hub) in body.iter().enumerate() {
                match prev {
                    None => push_varint(&mut stream, hub),
                    Some(p) => push_varint(&mut stream, hub - p - 1),
                }
                stream.push(dists[i]);
                prev = Some(hub);
            }
            offsets.push(stream.len() as u32);
        }
        CompactIndex {
            inv: inv.to_vec(),
            offsets,
            stream,
            counts,
            bp: bp.clone(),
        }
    }

    fn cursor(&self, r: Rank) -> LabelCursor<'_> {
        LabelCursor {
            stream: &self.stream,
            pos: self.offsets[r as usize] as usize,
            remaining: self.counts[r as usize],
            rank: 0,
            first: true,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.inv.len()
    }

    /// Exact distance between original vertices; `None` when disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        assert!(
            (u as usize) < self.num_vertices(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.num_vertices(),
            "vertex {v} out of range"
        );
        if u == v {
            return Some(0);
        }
        let (ru, rv) = (self.inv[u as usize], self.inv[v as usize]);
        let mut best = self.bp.query(ru, rv);

        // Streaming merge join over the two compressed labels.
        let mut a = self.cursor(ru);
        let mut b = self.cursor(rv);
        let mut ea = a.next();
        let mut eb = b.next();
        while let (Some((ra, da)), Some((rb, db))) = (ea, eb) {
            match ra.cmp(&rb) {
                std::cmp::Ordering::Equal => {
                    let d = da as u32 + db as u32;
                    if d < best {
                        best = d;
                    }
                    ea = a.next();
                    eb = b.next();
                }
                std::cmp::Ordering::Less => ea = a.next(),
                std::cmp::Ordering::Greater => eb = b.next(),
            }
        }
        (best != INF_QUERY).then_some(best)
    }

    /// Compressed bytes of the label stream plus bookkeeping and
    /// bit-parallel labels.
    pub fn memory_bytes(&self) -> usize {
        self.stream.len()
            + self.offsets.len() * 4
            + self.counts.len() * 4
            + self.inv.len() * 4
            + self.bp.memory_bytes()
    }

    /// Compression ratio of the *normal-label* storage against the flat
    /// arena of `index` (smaller is better).
    pub fn label_compression_ratio(&self, index: &PllIndex) -> f64 {
        let flat = index.labels().memory_bytes();
        if flat == 0 {
            return 1.0;
        }
        (self.stream.len() + self.offsets.len() * 4 + self.counts.len() * 4) as f64 / flat as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use pll_graph::gen;

    #[test]
    fn varint_roundtrip() {
        let mut s = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            push_varint(&mut s, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&s, &mut pos), v);
        }
        assert_eq!(pos, s.len());
    }

    #[test]
    fn compact_answers_match_flat_index() {
        for (g, t) in [
            (gen::barabasi_albert(300, 3, 5).unwrap(), 4usize),
            (gen::grid(12, 12).unwrap(), 0),
            (gen::chung_lu(250, 2.3, 8.0, 7).unwrap(), 8),
        ] {
            let idx = IndexBuilder::new().bit_parallel_roots(t).build(&g).unwrap();
            let compact = CompactIndex::from_index(&idx);
            assert_eq!(compact.num_vertices(), idx.num_vertices());
            for s in 0..g.num_vertices() as u32 {
                for u in (0..g.num_vertices() as u32).step_by(7) {
                    assert_eq!(compact.distance(s, u), idx.distance(s, u), "({s}, {u})");
                }
            }
        }
    }

    #[test]
    fn compression_shrinks_labels() {
        let g = gen::chung_lu(2_000, 2.3, 10.0, 3).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let compact = CompactIndex::from_index(&idx);
        let ratio = compact.label_compression_ratio(&idx);
        assert!(
            ratio < 0.8,
            "expected meaningful compression, ratio {ratio:.2}"
        );
    }

    #[test]
    fn disconnected_and_trivial() {
        let g = pll_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
        let compact = CompactIndex::from_index(&idx);
        assert_eq!(compact.distance(0, 2), None);
        assert_eq!(compact.distance(3, 3), Some(0));
        assert_eq!(compact.distance(0, 1), Some(1));
    }

    #[test]
    fn empty_graph() {
        let idx = IndexBuilder::new()
            .build(&pll_graph::CsrGraph::empty(0))
            .unwrap();
        let compact = CompactIndex::from_index(&idx);
        assert_eq!(compact.num_vertices(), 0);
        // Only the offsets sentinel and the (empty) BP root slots remain.
        assert!(compact.memory_bytes() < 256);
    }
}
