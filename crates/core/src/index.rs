//! The queryable pruned landmark labeling index.

use crate::bp::BitParallelLabels;
use crate::error::{PllError, Result};
use crate::label::LabelSet;
use crate::stats::{ConstructionStats, LabelSizeStats};
use crate::storage::{
    BpStorage, LabelStorage, OwnedBp, OwnedLabels, SectionSlice, ViewBp, ViewLabels,
};
use crate::types::{Dist, Rank, Vertex, INF_QUERY};

/// An exact 2-hop distance index over an undirected, unweighted graph,
/// built by [`crate::IndexBuilder`].
///
/// Queries run in `O(|L(s)| + |L(t)| + t)` time: a constant-time check per
/// bit-parallel root followed by a merge-join over the two sorted labels
/// (§3.3, §5.3).
///
/// Generic over its storage backends: with the defaults every array is a
/// heap `Vec` (what the builders produce and the v1 loader materialises);
/// [`PllIndexView`] runs the same query code over zero-copy sections of a
/// v2 index buffer ([`crate::v2`]).
#[derive(Clone, Debug)]
pub struct PllIndex<O = Vec<Vertex>, L = OwnedLabels<Dist>, B = OwnedBp> {
    /// `order[rank] = original vertex`.
    order: O,
    /// `inv[original vertex] = rank`.
    inv: O,
    /// Normal labels, keyed by rank.
    labels: LabelSet<L>,
    /// Bit-parallel labels, keyed by rank.
    bp: BitParallelLabels<B>,
    /// Construction statistics.
    stats: ConstructionStats,
}

/// Zero-copy [`PllIndex`] over one [`crate::storage::AlignedBytes`]
/// buffer holding a v2 index file: opening it is a single read plus
/// pointer casts, and queries run in place.
pub type PllIndexView = PllIndex<SectionSlice<u32>, ViewLabels<Dist>, ViewBp>;

impl PllIndex {
    pub(crate) fn from_parts(
        order: Vec<Vertex>,
        inv: Vec<Rank>,
        labels: LabelSet,
        bp: BitParallelLabels,
        stats: ConstructionStats,
    ) -> Self {
        PllIndex {
            order,
            inv,
            labels,
            bp,
            stats,
        }
    }
}

impl<O, L, B> PllIndex<O, L, B>
where
    O: AsRef<[u32]>,
    L: LabelStorage<Dist = Dist>,
    B: BpStorage,
{
    /// Assembles an index from any pair of backends (used by the zero-copy
    /// v2 opener; the inputs must already be validated).
    pub(crate) fn assemble(
        order: O,
        inv: O,
        labels: LabelSet<L>,
        bp: BitParallelLabels<B>,
        stats: ConstructionStats,
    ) -> Self {
        PllIndex {
            order,
            inv,
            labels,
            bp,
            stats,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.order.as_ref().len()
    }

    /// Exact distance between original vertices `u` and `v`; `None` when
    /// they are disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range (use [`PllIndex::try_distance`]
    /// for a checked variant).
    #[inline]
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        assert!(
            (u as usize) < self.num_vertices(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.num_vertices(),
            "vertex {v} out of range"
        );
        if u == v {
            return Some(0);
        }
        let ru = self.inv.as_ref()[u as usize];
        let rv = self.inv.as_ref()[v as usize];
        let bp_best = self.bp.query(ru, rv);
        let label_best = self.labels.query(ru, rv);
        let best = bp_best.min(label_best);
        (best != INF_QUERY).then_some(best)
    }

    /// Hints the CPU to pull both endpoints' label slices toward cache
    /// ahead of a [`PllIndex::distance`] call for the same pair (e.g.
    /// the *next* pair of a batch). Advisory: out-of-range vertices are
    /// ignored, nothing is computed.
    pub fn prefetch_query(&self, u: Vertex, v: Vertex) {
        let n = self.num_vertices();
        for x in [u, v] {
            if (x as usize) < n {
                let (r, d) = self.labels.label(self.inv.as_ref()[x as usize]);
                crate::kernel::prefetch_read(r);
                crate::kernel::prefetch_read(d);
            }
        }
    }

    /// Checked variant of [`PllIndex::distance`].
    pub fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u32>> {
        let n = self.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(u, v))
    }

    /// Distance plus the minimising *normal-label* hub (as an original
    /// vertex id), when the minimum is realised by a normal label rather
    /// than a bit-parallel entry. Used by path reconstruction.
    pub fn distance_with_hub(&self, u: Vertex, v: Vertex) -> Option<(u32, Option<Vertex>)> {
        assert!((u as usize) < self.num_vertices());
        assert!((v as usize) < self.num_vertices());
        if u == v {
            return Some((0, Some(u)));
        }
        let ru = self.inv.as_ref()[u as usize];
        let rv = self.inv.as_ref()[v as usize];
        let bp_best = self.bp.query(ru, rv);
        match self.labels.query_with_hub(ru, rv) {
            Some((d, hub)) if d <= bp_best => Some((d, Some(self.order.as_ref()[hub as usize]))),
            Some((_, _)) => Some((bp_best, None)),
            None if bp_best != INF_QUERY => Some((bp_best, None)),
            None => None,
        }
    }

    /// Whether `u` and `v` are in the same connected component.
    ///
    /// Equivalent to `distance(u, v).is_some()` but cheaper: the label
    /// merge stops at the *first* shared hub (the intersection
    /// sentinel ends it for disconnected pairs), and the bit-parallel
    /// side only needs a finite-δ̃ pair, no distance math.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        assert!((u as usize) < self.num_vertices());
        assert!((v as usize) < self.num_vertices());
        if u == v {
            return true;
        }
        let ru = self.inv.as_ref()[u as usize];
        let rv = self.inv.as_ref()[v as usize];
        self.bp.co_reachable(ru, rv) || self.labels.shares_hub(ru, rv)
    }

    /// The vertex order used at construction: `order()[rank] = vertex`.
    pub fn order(&self) -> &[Vertex] {
        self.order.as_ref()
    }

    /// Rank of original vertex `v`.
    pub fn rank_of(&self, v: Vertex) -> Rank {
        self.inv.as_ref()[v as usize]
    }

    /// Original vertex at `rank`.
    pub fn vertex_at(&self, rank: Rank) -> Vertex {
        self.order.as_ref()[rank as usize]
    }

    /// The normal-label store (rank-keyed).
    pub fn labels(&self) -> &LabelSet<L> {
        &self.labels
    }

    /// The bit-parallel label store (rank-keyed).
    pub fn bit_parallel(&self) -> &BitParallelLabels<B> {
        &self.bp
    }

    /// Construction statistics.
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// Whether parent pointers are stored (path reconstruction available).
    pub fn has_parents(&self) -> bool {
        self.labels.has_parents()
    }

    /// Average normal-label entries per vertex — the left part of the
    /// paper's "LN" column (e.g. "437+16": 437 normal + 16 bit-parallel).
    pub fn avg_label_size(&self) -> f64 {
        self.labels.avg_label_size()
    }

    /// Distribution of normal-label sizes over vertices (Figure 3c).
    pub fn label_size_stats(&self) -> LabelSizeStats {
        let sizes: Vec<usize> = (0..self.num_vertices() as Rank)
            .map(|r| self.labels.label_len(r))
            .collect();
        LabelSizeStats::from_sizes(sizes)
    }

    /// Total index bytes: labels + bit-parallel labels + the two
    /// permutation arrays (the paper's "IS" column).
    pub fn memory_bytes(&self) -> usize {
        self.labels.memory_bytes()
            + self.bp.memory_bytes()
            + self.order.as_ref().len() * 4
            + self.inv.as_ref().len() * 4
    }
}

impl PllIndex {
    /// Internal accessor for serialisation.
    pub(crate) fn parts(
        &self,
    ) -> (
        &[Vertex],
        &[Rank],
        &LabelSet,
        &BitParallelLabels,
        &ConstructionStats,
    ) {
        (&self.order, &self.inv, &self.labels, &self.bp, &self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use crate::order::OrderingStrategy;
    use pll_graph::gen;

    fn small_index() -> PllIndex {
        let g = gen::barabasi_albert(100, 2, 3).unwrap();
        IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap()
    }

    #[test]
    fn self_distance_is_zero() {
        let idx = small_index();
        for v in [0u32, 17, 99] {
            assert_eq!(idx.distance(v, v), Some(0));
        }
    }

    #[test]
    fn try_distance_checks_range() {
        let idx = small_index();
        assert!(idx.try_distance(0, 99).is_ok());
        assert!(matches!(
            idx.try_distance(0, 100),
            Err(PllError::VertexOutOfRange { vertex: 100, .. })
        ));
        assert!(matches!(
            idx.try_distance(200, 0),
            Err(PllError::VertexOutOfRange { vertex: 200, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distance_panics_out_of_range() {
        small_index().distance(0, 100);
    }

    #[test]
    fn distance_is_symmetric() {
        let idx = small_index();
        for (s, t) in [(0u32, 50u32), (3, 77), (12, 13)] {
            assert_eq!(idx.distance(s, t), idx.distance(t, s));
        }
    }

    #[test]
    fn connected_and_disconnected() {
        let g = pll_graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        assert!(idx.connected(0, 2));
        assert!(!idx.connected(0, 3));
        assert_eq!(idx.distance(0, 4), None);
    }

    #[test]
    fn rank_mappings_are_inverse() {
        let idx = small_index();
        for v in 0..100u32 {
            assert_eq!(idx.vertex_at(idx.rank_of(v)), v);
        }
        assert_eq!(idx.order().len(), 100);
    }

    #[test]
    fn hub_is_on_a_shortest_path() {
        let g = gen::erdos_renyi_gnm(80, 200, 5).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        for (s, t) in [(0u32, 40u32), (5, 60), (11, 70)] {
            if let Some((d, Some(hub))) = idx.distance_with_hub(s, t) {
                let dsh = idx.distance(s, hub).unwrap();
                let dht = idx.distance(hub, t).unwrap();
                assert_eq!(dsh + dht, d, "hub {hub} must lie on a shortest path");
            }
        }
    }

    #[test]
    fn memory_and_label_stats_consistent() {
        let idx = small_index();
        assert!(idx.memory_bytes() > 0);
        let ls = idx.label_size_stats();
        assert_eq!(ls.num_vertices, 100);
        assert!((ls.mean - idx.avg_label_size()).abs() < 1e-9);
        assert!(ls.max >= ls.min);
    }

    #[test]
    fn degree_ordering_puts_small_ranks_in_labels() {
        // With degree ordering, hubs should be dominated by top-ranked
        // vertices: rank 0 must appear in (almost) every label of its
        // component.
        let g = gen::barabasi_albert(200, 3, 1).unwrap();
        let idx = IndexBuilder::new()
            .ordering(OrderingStrategy::Degree)
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        let mut rank0_count = 0usize;
        for r in 0..200u32 {
            let (ranks, _) = idx.labels().label(r);
            if ranks[0] == 0 {
                rank0_count += 1;
            }
        }
        assert!(
            rank0_count > 150,
            "rank 0 labels only {rank0_count}/200 vertices"
        );
    }
}
