//! Vertex ordering strategies (§4.4).
//!
//! The BFS order is "crucial for the performance of this method" (§4.4.1):
//! central vertices must come first so later BFSs prune early. The paper
//! proposes three strategies, compared in Table 5:
//!
//! * [`OrderingStrategy::Degree`] — highest degree first (the default used
//!   throughout the paper's experiments);
//! * [`OrderingStrategy::Closeness`] — approximate closeness centrality via
//!   sampled BFSs;
//! * [`OrderingStrategy::Random`] — the baseline showing how much ordering
//!   matters.

use crate::error::{PllError, Result};
use pll_graph::traversal::bfs::BfsEngine;
use pll_graph::{CsrGraph, Vertex, Xoshiro256pp, INF_U32};

/// How to order vertices for the pruned BFSs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OrderingStrategy {
    /// Descending degree; ties broken by ascending vertex id (deterministic).
    Degree,
    /// Uniformly random permutation seeded by the builder seed.
    Random,
    /// Approximate closeness centrality: BFS from `samples` random vertices,
    /// order by ascending total distance to the samples (most central
    /// first). Vertices unreachable from a sample are penalised by `n` per
    /// miss, pushing fringe components last. Ties broken by descending
    /// degree, then id.
    Closeness {
        /// Number of sampled BFS sources (§4.4.2 approximates closeness by
        /// "randomly sampling a small number of vertices").
        samples: usize,
    },
    /// Reverse degeneracy order: repeatedly strip the minimum-degree
    /// vertex; vertices removed *last* (the innermost core) come first.
    /// Exploits the core–fringe structure directly: the order front-loads
    /// the dense core that most shortest paths traverse, and pushes the
    /// tree-like fringe to the tail where pruning is immediate.
    Degeneracy,
    /// Caller-provided order: `order[rank] = vertex`. Must be a permutation
    /// of `0..n`.
    Custom(Vec<Vertex>),
}

impl OrderingStrategy {
    /// Short human-readable name (used by the Table 5 harness).
    pub fn name(&self) -> &'static str {
        match self {
            OrderingStrategy::Degree => "Degree",
            OrderingStrategy::Random => "Random",
            OrderingStrategy::Closeness { .. } => "Closeness",
            OrderingStrategy::Degeneracy => "Degeneracy",
            OrderingStrategy::Custom(_) => "Custom",
        }
    }
}

/// Computes the vertex order for `g`: `order[rank] = vertex`, rank 0 first.
///
/// # Errors
///
/// Returns [`PllError::InvalidOrder`] if a custom order is not a permutation
/// of `0..n`.
pub fn compute_order(g: &CsrGraph, strategy: &OrderingStrategy, seed: u64) -> Result<Vec<Vertex>> {
    let n = g.num_vertices();
    match strategy {
        OrderingStrategy::Degree => {
            let mut order: Vec<Vertex> = (0..n as Vertex).collect();
            order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
            Ok(order)
        }
        OrderingStrategy::Random => {
            let mut order: Vec<Vertex> = (0..n as Vertex).collect();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            rng.shuffle(&mut order);
            Ok(order)
        }
        OrderingStrategy::Closeness { samples } => {
            if n == 0 {
                return Ok(Vec::new());
            }
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let k = (*samples).max(1).min(n.max(1));
            let mut total = vec![0u64; n];
            let mut engine = BfsEngine::new(n);
            for _ in 0..k {
                let src = rng.next_below(n.max(1) as u64) as Vertex;
                let dist = engine.run(g, src);
                for v in 0..n {
                    total[v] += if dist[v] == INF_U32 {
                        n as u64
                    } else {
                        dist[v] as u64
                    };
                }
            }
            let mut order: Vec<Vertex> = (0..n as Vertex).collect();
            order.sort_by(|&a, &b| {
                total[a as usize]
                    .cmp(&total[b as usize])
                    .then(g.degree(b).cmp(&g.degree(a)))
                    .then(a.cmp(&b))
            });
            Ok(order)
        }
        OrderingStrategy::Degeneracy => {
            let decomp = pll_graph::traversal::kcore::core_decomposition(g);
            let mut order = decomp.degeneracy_order;
            order.reverse();
            // Within the same removal tail, prefer higher degree (mirrors
            // the Degree strategy's treatment of the deepest core).
            order.sort_by(|&a, &b| {
                decomp.core[b as usize]
                    .cmp(&decomp.core[a as usize])
                    .then(g.degree(b).cmp(&g.degree(a)))
                    .then(a.cmp(&b))
            });
            Ok(order)
        }
        OrderingStrategy::Custom(order) => {
            if order.len() != n {
                return Err(PllError::InvalidOrder {
                    message: format!("order has {} entries for {} vertices", order.len(), n),
                });
            }
            let mut seen = vec![false; n];
            for &v in order {
                if (v as usize) >= n {
                    return Err(PllError::InvalidOrder {
                        message: format!("order entry {v} out of range"),
                    });
                }
                if seen[v as usize] {
                    return Err(PllError::InvalidOrder {
                        message: format!("order repeats vertex {v}"),
                    });
                }
                seen[v as usize] = true;
            }
            Ok(order.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;

    #[test]
    fn degree_order_puts_hub_first() {
        let g = gen::star(10).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        assert_eq!(order[0], 0);
        // Leaves tie-break by id.
        assert_eq!(&order[1..], &(1..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn degree_order_is_deterministic() {
        let g = gen::barabasi_albert(200, 3, 1).unwrap();
        let a = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let b = compute_order(&g, &OrderingStrategy::Degree, 99).unwrap();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn random_order_is_seeded_permutation() {
        let g = gen::path(50).unwrap();
        let a = compute_order(&g, &OrderingStrategy::Random, 7).unwrap();
        let b = compute_order(&g, &OrderingStrategy::Random, 7).unwrap();
        let c = compute_order(&g, &OrderingStrategy::Random, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn closeness_order_prefers_center_of_path() {
        let g = gen::path(101).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Closeness { samples: 16 }, 3).unwrap();
        // The path centre minimises total distance; sampled closeness should
        // put some mid-path vertex first, never an endpoint.
        let first = order[0];
        assert!(
            (25..=75).contains(&first),
            "first vertex {first} should be central"
        );
    }

    #[test]
    fn closeness_on_star_prefers_center() {
        let g = gen::star(50).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Closeness { samples: 8 }, 11).unwrap();
        assert_eq!(order[0], 0);
    }

    #[test]
    fn custom_order_validation() {
        let g = gen::path(4).unwrap();
        let ok = OrderingStrategy::Custom(vec![3, 2, 1, 0]);
        assert_eq!(compute_order(&g, &ok, 0).unwrap(), vec![3, 2, 1, 0]);

        let short = OrderingStrategy::Custom(vec![0, 1]);
        assert!(compute_order(&g, &short, 0).is_err());
        let dup = OrderingStrategy::Custom(vec![0, 0, 1, 2]);
        assert!(compute_order(&g, &dup, 0).is_err());
        let oob = OrderingStrategy::Custom(vec![0, 1, 2, 9]);
        assert!(compute_order(&g, &oob, 0).is_err());
    }

    #[test]
    fn degeneracy_order_fronts_the_core() {
        // Triangle core with long pendant paths: core vertices first.
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let mut next = 3u32;
        for anchor in [0u32, 1, 2] {
            let mut prev = anchor;
            for _ in 0..5 {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let g = CsrGraph::from_edges(next as usize, &edges).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Degeneracy, 0).unwrap();
        let first3: Vec<_> = order[..3].to_vec();
        for v in [0u32, 1, 2] {
            assert!(
                first3.contains(&v),
                "core vertex {v} not in front: {first3:?}"
            );
        }
    }

    #[test]
    fn degeneracy_index_is_exact() {
        let g = gen::chung_lu(150, 2.3, 7.0, 3).unwrap();
        let idx = crate::IndexBuilder::new()
            .ordering(OrderingStrategy::Degeneracy)
            .bit_parallel_roots(2)
            .build(&g)
            .unwrap();
        crate::verify::verify_exhaustive(&g, &idx).unwrap();
    }

    #[test]
    fn names() {
        assert_eq!(OrderingStrategy::Degree.name(), "Degree");
        assert_eq!(OrderingStrategy::Random.name(), "Random");
        assert_eq!(
            OrderingStrategy::Closeness { samples: 4 }.name(),
            "Closeness"
        );
        assert_eq!(OrderingStrategy::Degeneracy.name(), "Degeneracy");
        assert_eq!(OrderingStrategy::Custom(vec![]).name(), "Custom");
    }

    #[test]
    fn empty_graph_orders() {
        let g = CsrGraph::empty(0);
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 4 },
            OrderingStrategy::Degeneracy,
            OrderingStrategy::Custom(vec![]),
        ] {
            assert!(compute_order(&g, &strat, 0).unwrap().is_empty());
        }
    }
}
