//! Vertex ordering strategies (§4.4).
//!
//! The BFS order is "crucial for the performance of this method" (§4.4.1):
//! central vertices must come first so later BFSs prune early. The paper
//! proposes three strategies, compared in Table 5:
//!
//! * [`OrderingStrategy::Degree`] — highest degree first (the default used
//!   throughout the paper's experiments);
//! * [`OrderingStrategy::Closeness`] — approximate closeness centrality via
//!   sampled BFSs;
//! * [`OrderingStrategy::Random`] — the baseline showing how much ordering
//!   matters.

use crate::error::{PllError, Result};
use pll_graph::traversal::bfs::BfsEngine;
use pll_graph::{CsrGraph, Vertex, Xoshiro256pp, INF_U32};
use std::cmp::Ordering;
use std::sync::atomic::AtomicUsize;

/// How to order vertices for the pruned BFSs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OrderingStrategy {
    /// Descending degree; ties broken by ascending vertex id (deterministic).
    Degree,
    /// Uniformly random permutation seeded by the builder seed.
    Random,
    /// Approximate closeness centrality: BFS from `samples` random vertices,
    /// order by ascending total distance to the samples (most central
    /// first). Vertices unreachable from a sample are penalised by `n` per
    /// miss, pushing fringe components last. Ties broken by descending
    /// degree, then id.
    Closeness {
        /// Number of sampled BFS sources (§4.4.2 approximates closeness by
        /// "randomly sampling a small number of vertices").
        samples: usize,
    },
    /// Reverse degeneracy order: repeatedly strip the minimum-degree
    /// vertex; vertices removed *last* (the innermost core) come first.
    /// Exploits the core–fringe structure directly: the order front-loads
    /// the dense core that most shortest paths traverse, and pushes the
    /// tree-like fringe to the tail where pruning is immediate.
    Degeneracy,
    /// Caller-provided order: `order[rank] = vertex`. Must be a permutation
    /// of `0..n`.
    Custom(Vec<Vertex>),
}

impl OrderingStrategy {
    /// Short human-readable name (used by the Table 5 harness).
    pub fn name(&self) -> &'static str {
        match self {
            OrderingStrategy::Degree => "Degree",
            OrderingStrategy::Random => "Random",
            OrderingStrategy::Closeness { .. } => "Closeness",
            OrderingStrategy::Degeneracy => "Degeneracy",
            OrderingStrategy::Custom(_) => "Custom",
        }
    }
}

/// Computes the vertex order for `g`: `order[rank] = vertex`, rank 0 first.
/// Sequential shorthand for [`compute_order_threaded`] with one thread.
///
/// # Errors
///
/// Returns [`PllError::InvalidOrder`] if a custom order is not a permutation
/// of `0..n`.
pub fn compute_order(g: &CsrGraph, strategy: &OrderingStrategy, seed: u64) -> Result<Vec<Vertex>> {
    compute_order_threaded(g, strategy, seed, 1)
}

/// Computes the vertex order on up to `threads` worker threads. The result
/// is **identical at any thread count** — the parallel paths only change
/// how the same total order is computed:
///
/// * `Degree` — the degree keys are extracted in parallel chunks, the
///   rank array is chunk-sorted on the workers and k-way merged; the
///   comparator is total (ties fall to the vertex id), so the merged
///   output is unique.
/// * `Closeness` — the sampled BFS sources are drawn up front (distinct,
///   by partial Fisher–Yates, deterministic in `seed`), the BFSs fan out
///   one-per-worker, and each worker reduces into a private `total[]`
///   that is summed at the join; `u64` addition is associative and
///   commutative, so the totals do not depend on the schedule.
/// * `Random`, `Degeneracy`, `Custom` — inherently sequential (a seeded
///   shuffle, the bucket peel, validation) and cheap; they run on the
///   calling thread.
///
/// # Errors
///
/// Returns [`PllError::InvalidOrder`] if a custom order is not a permutation
/// of `0..n`.
pub fn compute_order_threaded(
    g: &CsrGraph,
    strategy: &OrderingStrategy,
    seed: u64,
    threads: usize,
) -> Result<Vec<Vertex>> {
    let n = g.num_vertices();
    match strategy {
        OrderingStrategy::Degree => Ok(order_by_key_desc(n, threads, |v| g.degree(v) as u64)),
        OrderingStrategy::Random => {
            let mut order: Vec<Vertex> = (0..n as Vertex).collect();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            rng.shuffle(&mut order);
            Ok(order)
        }
        OrderingStrategy::Closeness { samples } => {
            if n == 0 {
                return Ok(Vec::new());
            }
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let k = (*samples).max(1).min(n);
            let sources = sample_distinct(n, k, &mut rng);
            let total = closeness_totals(g, &sources, threads);
            let mut order: Vec<Vertex> = (0..n as Vertex).collect();
            sort_by_total_order(&mut order, threads, &|a, b| {
                total[a as usize]
                    .cmp(&total[b as usize])
                    .then(g.degree(b).cmp(&g.degree(a)))
                    .then(a.cmp(&b))
            });
            Ok(order)
        }
        OrderingStrategy::Degeneracy => {
            let decomp = pll_graph::traversal::kcore::core_decomposition(g);
            let mut order = decomp.degeneracy_order;
            order.reverse();
            // Tier by coreness then degree, breaking ties by position in
            // the reversed removal order — vertices peeled *later* (the
            // deeper core) lead their tier. (An earlier revision
            // tie-broke by vertex id, which made the `reverse()` above
            // dead code and silently degraded the strategy to a plain
            // coreness/degree sort.)
            let mut pos = vec![0u32; n];
            for (i, &v) in order.iter().enumerate() {
                pos[v as usize] = i as u32;
            }
            order.sort_by(|&a, &b| {
                decomp.core[b as usize]
                    .cmp(&decomp.core[a as usize])
                    .then(g.degree(b).cmp(&g.degree(a)))
                    .then(pos[a as usize].cmp(&pos[b as usize]))
            });
            Ok(order)
        }
        OrderingStrategy::Custom(order) => {
            if order.len() != n {
                return Err(PllError::InvalidOrder {
                    message: format!("order has {} entries for {} vertices", order.len(), n),
                });
            }
            let mut seen = vec![false; n];
            for &v in order {
                if (v as usize) >= n {
                    return Err(PllError::InvalidOrder {
                        message: format!("order entry {v} out of range"),
                    });
                }
                if seen[v as usize] {
                    return Err(PllError::InvalidOrder {
                        message: format!("order repeats vertex {v}"),
                    });
                }
                seen[v as usize] = true;
            }
            Ok(order.clone())
        }
    }
}

/// Minimum vertex count for the chunk-sort + merge and parallel key
/// extraction paths; below this one thread wins. Purely a performance
/// knob — both paths produce identical output.
const PARALLEL_ORDER_MIN: usize = 1024;

/// Extracts `key(v)` for every vertex, in parallel chunks when
/// `threads > 1` (the chunks write disjoint slices of the key array).
fn extract_keys(n: usize, threads: usize, key: &(impl Fn(Vertex) -> u64 + Sync)) -> Vec<u64> {
    let mut keys = vec![0u64; n];
    if threads <= 1 || n < PARALLEL_ORDER_MIN {
        for (v, slot) in keys.iter_mut().enumerate() {
            *slot = key(v as Vertex);
        }
        return keys;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, part) in keys.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move || {
                for (i, slot) in part.iter_mut().enumerate() {
                    *slot = key((start + i) as Vertex);
                }
            });
        }
    });
    keys
}

/// The descending-key vertex order (ties broken by ascending id) shared
/// by every variant's `Degree` strategy: parallel-chunk key extraction,
/// then the chunk-sort + k-way merge of [`sort_by_total_order`]. The
/// undirected builder keys on degree; the directed builders key on
/// `in + out` degree through their own `key` closure.
pub(crate) fn order_by_key_desc(
    n: usize,
    threads: usize,
    key: impl Fn(Vertex) -> u64 + Sync,
) -> Vec<Vertex> {
    let keys = extract_keys(n, threads, &key);
    let mut order: Vec<Vertex> = (0..n as Vertex).collect();
    sort_by_total_order(&mut order, threads, &|a, b| {
        keys[b as usize].cmp(&keys[a as usize]).then(a.cmp(&b))
    });
    order
}

/// Sorts `order` by the **total** comparator `cmp` (never `Equal` for
/// distinct vertices): chunk-sorts on `threads` scoped workers, then
/// k-way merges on the calling thread. Totality makes the merged output
/// unique, hence identical to a plain sequential `sort_by` at any thread
/// count.
fn sort_by_total_order(
    order: &mut Vec<Vertex>,
    threads: usize,
    cmp: &(impl Fn(Vertex, Vertex) -> Ordering + Sync),
) {
    let n = order.len();
    if threads <= 1 || n < PARALLEL_ORDER_MIN {
        order.sort_by(|&a, &b| cmp(a, b));
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for part in order.chunks_mut(chunk) {
            scope.spawn(move || part.sort_by(|&a, &b| cmp(a, b)));
        }
    });
    let mut cursors: Vec<usize> = (0..n).step_by(chunk).collect();
    let ends: Vec<usize> = cursors.iter().map(|&s| (s + chunk).min(n)).collect();
    let mut merged = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for run in 0..cursors.len() {
            if cursors[run] < ends[run] {
                best = match best {
                    Some(b) if cmp(order[cursors[run]], order[cursors[b]]) != Ordering::Less => {
                        Some(b)
                    }
                    _ => Some(run),
                };
            }
        }
        let b = best.expect("merge consumes exactly n elements");
        merged.push(order[cursors[b]]);
        cursors[b] += 1;
    }
    *order = merged;
}

/// The first `k` entries of a seeded Fisher–Yates shuffle of `0..n`:
/// `k` **distinct** vertices, deterministic in `rng`. (An earlier
/// revision sampled the closeness BFS sources with replacement, so a
/// repeated source silently halved the effective sample size.)
fn sample_distinct(n: usize, k: usize, rng: &mut Xoshiro256pp) -> Vec<Vertex> {
    debug_assert!(k <= n);
    let mut pool: Vec<Vertex> = (0..n as Vertex).collect();
    for i in 0..k {
        let j = i + rng.next_below((n - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Sums every vertex's BFS distance to the sampled `sources`
/// (unreachable pairs are penalised by `n`), fanning the BFSs out
/// one-per-worker. Each worker reduces into a private `total[]`; the
/// partials are summed at the join, and `u64` addition makes the result
/// schedule-independent.
fn closeness_totals(g: &CsrGraph, sources: &[Vertex], threads: usize) -> Vec<u64> {
    let n = g.num_vertices();
    let accumulate = |total: &mut [u64], dist: &[u32]| {
        for v in 0..n {
            total[v] += if dist[v] == INF_U32 {
                n as u64
            } else {
                dist[v] as u64
            };
        }
    };
    let workers = threads.min(sources.len()).max(1);
    if workers <= 1 {
        let mut engine = BfsEngine::new(n);
        let mut total = vec![0u64; n];
        for &src in sources {
            accumulate(&mut total, engine.run(g, src));
        }
        return total;
    }
    let cursor = AtomicUsize::new(0);
    let partials: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let accumulate = &accumulate;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut engine = BfsEngine::new(n);
                    let mut local = vec![0u64; n];
                    loop {
                        // ORDERING: Relaxed — work-stealing cursor; the
                        // scope join orders the per-thread accumulators.
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= sources.len() {
                            break;
                        }
                        accumulate(&mut local, engine.run(g, sources[i]));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("closeness BFS worker panicked"))
            .collect()
    });
    let mut total = vec![0u64; n];
    for partial in partials {
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;

    #[test]
    fn degree_order_puts_hub_first() {
        let g = gen::star(10).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        assert_eq!(order[0], 0);
        // Leaves tie-break by id.
        assert_eq!(&order[1..], &(1..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn degree_order_is_deterministic() {
        let g = gen::barabasi_albert(200, 3, 1).unwrap();
        let a = compute_order(&g, &OrderingStrategy::Degree, 0).unwrap();
        let b = compute_order(&g, &OrderingStrategy::Degree, 99).unwrap();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn random_order_is_seeded_permutation() {
        let g = gen::path(50).unwrap();
        let a = compute_order(&g, &OrderingStrategy::Random, 7).unwrap();
        let b = compute_order(&g, &OrderingStrategy::Random, 7).unwrap();
        let c = compute_order(&g, &OrderingStrategy::Random, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn closeness_order_prefers_center_of_path() {
        let g = gen::path(101).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Closeness { samples: 16 }, 3).unwrap();
        // The path centre minimises total distance; sampled closeness should
        // put some mid-path vertex first, never an endpoint.
        let first = order[0];
        assert!(
            (25..=75).contains(&first),
            "first vertex {first} should be central"
        );
    }

    #[test]
    fn closeness_on_star_prefers_center() {
        let g = gen::star(50).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Closeness { samples: 8 }, 11).unwrap();
        assert_eq!(order[0], 0);
    }

    #[test]
    fn custom_order_validation() {
        let g = gen::path(4).unwrap();
        let ok = OrderingStrategy::Custom(vec![3, 2, 1, 0]);
        assert_eq!(compute_order(&g, &ok, 0).unwrap(), vec![3, 2, 1, 0]);

        let short = OrderingStrategy::Custom(vec![0, 1]);
        assert!(compute_order(&g, &short, 0).is_err());
        let dup = OrderingStrategy::Custom(vec![0, 0, 1, 2]);
        assert!(compute_order(&g, &dup, 0).is_err());
        let oob = OrderingStrategy::Custom(vec![0, 1, 2, 9]);
        assert!(compute_order(&g, &oob, 0).is_err());
    }

    #[test]
    fn degeneracy_order_fronts_the_core() {
        // Triangle core with long pendant paths: core vertices first.
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let mut next = 3u32;
        for anchor in [0u32, 1, 2] {
            let mut prev = anchor;
            for _ in 0..5 {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let g = CsrGraph::from_edges(next as usize, &edges).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Degeneracy, 0).unwrap();
        let first3: Vec<_> = order[..3].to_vec();
        for v in [0u32, 1, 2] {
            assert!(
                first3.contains(&v),
                "core vertex {v} not in front: {first3:?}"
            );
        }
    }

    #[test]
    fn degeneracy_index_is_exact() {
        let g = gen::chung_lu(150, 2.3, 7.0, 3).unwrap();
        let idx = crate::IndexBuilder::new()
            .ordering(OrderingStrategy::Degeneracy)
            .bit_parallel_roots(2)
            .build(&g)
            .unwrap();
        crate::verify::verify_exhaustive(&g, &idx).unwrap();
    }

    #[test]
    fn degeneracy_tiebreak_respects_removal_order() {
        // Asymmetric core–fringe graph: a K4 core {0,1,2,3} with the
        // pendant path 0–6–5–4. Vertices 5 and 6 tie on coreness (1) and
        // degree (2), but the peel removes 4, then 5, then 6 — so the
        // reverse degeneracy order puts 6 (removed later, nearer the
        // core) before 5. A coreness/degree sort with an id tiebreak
        // (the old, buggy comparator) would order 5 first.
        let edges = [
            (0u32, 1u32),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (0, 6),
            (6, 5),
            (5, 4),
        ];
        let g = CsrGraph::from_edges(7, &edges).unwrap();
        let order = compute_order(&g, &OrderingStrategy::Degeneracy, 0).unwrap();
        let rank_of = |v: Vertex| order.iter().position(|&x| x == v).unwrap();
        // Core first.
        for v in [0u32, 1, 2, 3] {
            assert!(rank_of(v) < 4, "core vertex {v} not in front: {order:?}");
        }
        // Equal (core, degree) tier {5, 6}: later-removed 6 leads.
        assert!(
            rank_of(6) < rank_of(5),
            "removal-order tiebreak ignored: {order:?}"
        );
        // Degree still dominates within the core-1 tier: 4 (degree 1) last.
        assert_eq!(*order.last().unwrap(), 4);
    }

    #[test]
    fn closeness_samples_are_distinct_and_seeded() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let s = sample_distinct(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "sources must be distinct: {s:?}");
        // Same seed, same sample; k = n is a full permutation.
        let mut rng2 = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(s, sample_distinct(50, 20, &mut rng2));
        let mut rng3 = Xoshiro256pp::seed_from_u64(7);
        let mut perm = sample_distinct(10, 10, &mut rng3);
        perm.sort_unstable();
        assert_eq!(perm, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn order_by_key_desc_parallel_matches_sequential() {
        // 97 distinct keys over 5000 vertices: heavy ties stress the
        // k-way merge's id tiebreak. This is the helper the variant
        // builders (directed/weighted/weighted-directed) key their
        // Degree sort through.
        let n = 5000usize;
        let key = |v: Vertex| (v as u64).wrapping_mul(2_654_435_761) % 97;
        let seq = order_by_key_desc(n, 1, key);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                seq,
                order_by_key_desc(n, threads, key),
                "key order diverged at threads={threads}"
            );
        }
        for w in seq.windows(2) {
            let (ka, kb) = (key(w[0]), key(w[1]));
            assert!(
                ka > kb || (ka == kb && w[0] < w[1]),
                "not a descending key order with id tiebreak: {w:?}"
            );
        }
    }

    #[test]
    fn threaded_order_matches_sequential() {
        // n is above PARALLEL_ORDER_MIN so the chunk-sort + merge and the
        // BFS fan-out actually engage.
        let g = gen::barabasi_albert(3000, 3, 5).unwrap();
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Closeness { samples: 8 },
            OrderingStrategy::Random,
            OrderingStrategy::Degeneracy,
        ] {
            let seq = compute_order(&g, &strat, 9).unwrap();
            for threads in [2usize, 3, 4, 8] {
                assert_eq!(
                    seq,
                    compute_order_threaded(&g, &strat, 9, threads).unwrap(),
                    "{} order diverged at threads={threads}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(OrderingStrategy::Degree.name(), "Degree");
        assert_eq!(OrderingStrategy::Random.name(), "Random");
        assert_eq!(
            OrderingStrategy::Closeness { samples: 4 }.name(),
            "Closeness"
        );
        assert_eq!(OrderingStrategy::Degeneracy.name(), "Degeneracy");
        assert_eq!(OrderingStrategy::Custom(vec![]).name(), "Custom");
    }

    #[test]
    fn empty_graph_orders() {
        let g = CsrGraph::empty(0);
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 4 },
            OrderingStrategy::Degeneracy,
            OrderingStrategy::Custom(vec![]),
        ] {
            assert!(compute_order(&g, &strat, 0).unwrap().is_empty());
        }
    }
}
